#include "tlrwse/fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/tsan.hpp"

namespace tlrwse::fft {

namespace {

constexpr double kPi = std::numbers::pi_v<double>;

[[nodiscard]] bool is_power_of_two(index_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

[[nodiscard]] index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// In-place iterative radix-2 DIT FFT of length n (power of two).
/// `tw` holds n/2 forward twiddles exp(-2*pi*i*k/n); inverse conjugates.
void fft_pow2(std::span<cf64> x, std::span<const cf64> tw, bool inv) {
  const index_t n = static_cast<index_t>(x.size());
  // Bit-reversal permutation.
  for (index_t i = 1, j = 0; i < n; ++i) {
    index_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(j)]);
  }
  for (index_t len = 2; len <= n; len <<= 1) {
    const index_t half = len >> 1;
    const index_t stride = n / len;
    for (index_t i = 0; i < n; i += len) {
      for (index_t k = 0; k < half; ++k) {
        cf64 w = tw[static_cast<std::size_t>(k * stride)];
        if (inv) w = std::conj(w);
        cf64& a = x[static_cast<std::size_t>(i + k)];
        cf64& b = x[static_cast<std::size_t>(i + k + half)];
        const cf64 t = b * w;
        b = a - t;
        a += t;
      }
    }
  }
}

}  // namespace

FftPlan::FftPlan(index_t n) : n_(n) {
  TLRWSE_REQUIRE(n >= 1, "FFT length must be positive");
  is_pow2_ = is_power_of_two(n);
  pow2_n_ = is_pow2_ ? n : next_pow2(2 * n - 1);
  twiddle_.resize(static_cast<std::size_t>(pow2_n_ / 2));
  for (index_t k = 0; k < pow2_n_ / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(pow2_n_);
    twiddle_[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
  }
  if (!is_pow2_) {
    // Bluestein: x_hat[k] = conj(a_k) * sum_t (x_t a_t) * b_{k-t},
    // with a_t = exp(-i*pi*t^2/n) and b_t = conj(a_t) extended cyclically.
    chirp_.resize(static_cast<std::size_t>(n));
    for (index_t t = 0; t < n; ++t) {
      // t^2 mod 2n keeps the argument small for large n.
      const index_t t2 = (t * t) % (2 * n);
      const double ang = -kPi * static_cast<double>(t2) / static_cast<double>(n);
      chirp_[static_cast<std::size_t>(t)] = {std::cos(ang), std::sin(ang)};
    }
    std::vector<cf64> b(static_cast<std::size_t>(pow2_n_), cf64{});
    b[0] = std::conj(chirp_[0]);
    for (index_t t = 1; t < n; ++t) {
      const cf64 v = std::conj(chirp_[static_cast<std::size_t>(t)]);
      b[static_cast<std::size_t>(t)] = v;
      b[static_cast<std::size_t>(pow2_n_ - t)] = v;
    }
    fft_pow2(b, twiddle_, /*inv=*/false);
    chirp_fft_ = std::move(b);
  }
}

void FftPlan::pow2_transform(std::span<cf64> x, bool inv) const {
  fft_pow2(x, twiddle_, inv);
}

void FftPlan::bluestein(std::span<cf64> x, bool inv) const {
  // Inverse via conjugation: IDFT(x) = conj(DFT(conj(x))) / n.
  std::vector<cf64> a(static_cast<std::size_t>(pow2_n_), cf64{});
  for (index_t t = 0; t < n_; ++t) {
    cf64 v = x[static_cast<std::size_t>(t)];
    if (inv) v = std::conj(v);
    a[static_cast<std::size_t>(t)] = v * chirp_[static_cast<std::size_t>(t)];
  }
  fft_pow2(a, twiddle_, /*inv=*/false);
  for (index_t t = 0; t < pow2_n_; ++t) {
    a[static_cast<std::size_t>(t)] *= chirp_fft_[static_cast<std::size_t>(t)];
  }
  fft_pow2(a, twiddle_, /*inv=*/true);
  const double scale = 1.0 / static_cast<double>(pow2_n_);
  for (index_t k = 0; k < n_; ++k) {
    cf64 v = a[static_cast<std::size_t>(k)] * scale *
             chirp_[static_cast<std::size_t>(k)];
    if (inv) v = std::conj(v);
    x[static_cast<std::size_t>(k)] = v;
  }
}

void FftPlan::forward(std::span<cf64> x) const {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == n_, "FFT size mismatch");
  if (n_ == 1) return;
  if (is_pow2_) {
    pow2_transform(x, false);
  } else {
    bluestein(x, false);
  }
}

void FftPlan::inverse(std::span<cf64> x) const {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == n_, "FFT size mismatch");
  if (n_ == 1) return;
  if (is_pow2_) {
    pow2_transform(x, true);
  } else {
    bluestein(x, true);
  }
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& v : x) v *= scale;
}

void FftPlan::forward(std::span<cf32> x) const {
  std::vector<cf64> tmp(x.begin(), x.end());
  forward(std::span<cf64>(tmp));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<cf32>(tmp[i]);
}

void FftPlan::inverse(std::span<cf32> x) const {
  std::vector<cf64> tmp(x.begin(), x.end());
  inverse(std::span<cf64>(tmp));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<cf32>(tmp[i]);
}

std::vector<double> rfft_frequencies(index_t nt, double dt) {
  TLRWSE_REQUIRE(nt >= 1 && dt > 0.0, "bad rfft frequency grid");
  const index_t nf = nt / 2 + 1;
  std::vector<double> f(static_cast<std::size_t>(nf));
  for (index_t k = 0; k < nf; ++k) {
    f[static_cast<std::size_t>(k)] =
        static_cast<double>(k) / (static_cast<double>(nt) * dt);
  }
  return f;
}

std::vector<cf64> rfft(std::span<const double> x) {
  const index_t nt = static_cast<index_t>(x.size());
  FftPlan plan(nt);
  std::vector<cf64> buf(x.begin(), x.end());
  plan.forward(std::span<cf64>(buf));
  buf.resize(static_cast<std::size_t>(nt / 2 + 1));
  return buf;
}

std::vector<double> irfft(std::span<const cf64> spec, index_t nt) {
  TLRWSE_REQUIRE(static_cast<index_t>(spec.size()) == nt / 2 + 1,
                 "irfft: spectrum length mismatch");
  FftPlan plan(nt);
  std::vector<cf64> buf(static_cast<std::size_t>(nt));
  for (index_t k = 0; k <= nt / 2; ++k) {
    buf[static_cast<std::size_t>(k)] = spec[static_cast<std::size_t>(k)];
  }
  for (index_t k = nt / 2 + 1; k < nt; ++k) {
    buf[static_cast<std::size_t>(k)] =
        std::conj(spec[static_cast<std::size_t>(nt - k)]);
  }
  plan.inverse(std::span<cf64>(buf));
  std::vector<double> out(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t) {
    out[static_cast<std::size_t>(t)] = buf[static_cast<std::size_t>(t)].real();
  }
  return out;
}

namespace {

/// Ensures one nt-length cf64 buffer per OpenMP thread, sized serially so
/// the parallel region itself stays allocation-free once warm.
void prepare_batch_workspace(BatchWorkspace& ws, index_t nt) {
  std::size_t threads = 1;
#ifdef _OPENMP
  threads = static_cast<std::size_t>(std::max(omp_get_max_threads(), 1));
#endif
  if (ws.trace_buf.size() < threads) ws.trace_buf.resize(threads);
  for (auto& buf : ws.trace_buf) {
    if (buf.size() < static_cast<std::size_t>(nt)) {
      buf.resize(static_cast<std::size_t>(nt));
    }
  }
}

std::vector<cf64>& thread_trace_buf(BatchWorkspace& ws) {
  std::size_t i = 0;
#ifdef _OPENMP
  i = static_cast<std::size_t>(omp_get_thread_num());
#endif
  return ws.trace_buf[i < ws.trace_buf.size() ? i : 0];
}

}  // namespace

void rfft_batch(const FftPlan& plan, std::span<const float> time_page,
                index_t ntraces, std::span<cf32> freq_page,
                BatchWorkspace& ws) {
  const index_t nt = plan.size();
  const index_t nf = nt / 2 + 1;
  TLRWSE_REQUIRE(static_cast<index_t>(time_page.size()) == nt * ntraces,
                 "rfft_batch: input size");
  TLRWSE_REQUIRE(static_cast<index_t>(freq_page.size()) == nf * ntraces,
                 "rfft_batch: output size");
  prepare_batch_workspace(ws, nt);
  TLRWSE_TSAN_RELEASE(&ws);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&ws);
    std::vector<cf64>& buf = thread_trace_buf(ws);
#pragma omp for schedule(static)
    for (index_t tr = 0; tr < ntraces; ++tr) {
      const float* in = time_page.data() + tr * nt;
      for (index_t t = 0; t < nt; ++t) {
        buf[static_cast<std::size_t>(t)] = cf64{static_cast<double>(in[t]), 0.0};
      }
      plan.forward(std::span<cf64>(buf.data(), static_cast<std::size_t>(nt)));
      cf32* out = freq_page.data() + tr * nf;
      for (index_t k = 0; k < nf; ++k) {
        out[k] = static_cast<cf32>(buf[static_cast<std::size_t>(k)]);
      }
    }
    TLRWSE_TSAN_RELEASE(&ws);
  }
  TLRWSE_TSAN_ACQUIRE(&ws);
}

void irfft_batch(const FftPlan& plan, std::span<const cf32> freq_page,
                 index_t ntraces, std::span<float> time_page,
                 BatchWorkspace& ws) {
  const index_t nt = plan.size();
  const index_t nf = nt / 2 + 1;
  TLRWSE_REQUIRE(static_cast<index_t>(freq_page.size()) == nf * ntraces,
                 "irfft_batch: input size");
  TLRWSE_REQUIRE(static_cast<index_t>(time_page.size()) == nt * ntraces,
                 "irfft_batch: output size");
  prepare_batch_workspace(ws, nt);
  TLRWSE_TSAN_RELEASE(&ws);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&ws);
    std::vector<cf64>& buf = thread_trace_buf(ws);
#pragma omp for schedule(static)
    for (index_t tr = 0; tr < ntraces; ++tr) {
      const cf32* in = freq_page.data() + tr * nf;
      for (index_t k = 0; k < nf; ++k) {
        buf[static_cast<std::size_t>(k)] = static_cast<cf64>(in[k]);
      }
      for (index_t k = nf; k < nt; ++k) {
        buf[static_cast<std::size_t>(k)] =
            std::conj(static_cast<cf64>(in[nt - k]));
      }
      plan.inverse(std::span<cf64>(buf.data(), static_cast<std::size_t>(nt)));
      float* out = time_page.data() + tr * nt;
      for (index_t t = 0; t < nt; ++t) {
        out[t] = static_cast<float>(buf[static_cast<std::size_t>(t)].real());
      }
    }
    TLRWSE_TSAN_RELEASE(&ws);
  }
  TLRWSE_TSAN_ACQUIRE(&ws);
}

void rfft_batch(std::span<const float> time_page, index_t nt, index_t ntraces,
                std::span<cf32> freq_page) {
  const FftPlan plan(nt);
  BatchWorkspace ws;
  rfft_batch(plan, time_page, ntraces, freq_page, ws);
}

void irfft_batch(std::span<const cf32> freq_page, index_t nt, index_t ntraces,
                 std::span<float> time_page) {
  const FftPlan plan(nt);
  BatchWorkspace ws;
  irfft_batch(plan, freq_page, ntraces, time_page, ws);
}

}  // namespace tlrwse::fft
