// Full MDD pipeline on an Overthrust-style synthetic ocean-bottom dataset:
// model the wavefields, compress the downgoing kernels with TLR, build the
// MDC operator, and invert for the local reflectivity with LSQR —
// the paper's Sec. 6.2 workflow at a laptop-feasible scale.
#include <cstdio>

#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

int main() {
  using namespace tlrwse;

  std::printf("== Multi-Dimensional Deconvolution on a synthetic Overthrust "
              "survey ==\n");
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
  cfg.nt = 256;
  cfg.f_min = 3.0;
  cfg.f_max = 30.0;
  WallTimer t_model;
  const auto data = seismic::build_dataset(cfg);
  std::printf("dataset: %lld sources, %lld receivers, %lld frequencies "
              "(%.1fs)\n",
              static_cast<long long>(data.num_sources()),
              static_cast<long long>(data.num_receivers()),
              static_cast<long long>(data.num_freqs()), t_model.seconds());

  // Compress the downgoing kernels (this is the pre-processing the paper
  // performs on the host before shipping bases to the CS-2s).
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  WallTimer t_comp;
  const auto stats = mdd::kernel_compression_stats(data, cc);
  std::printf("TLR compression: %s -> %s (%.2fx) in %.1fs\n",
              format_bytes(stats.dense_bytes).c_str(),
              format_bytes(stats.compressed_bytes).c_str(), stats.ratio(),
              t_comp.seconds());

  const auto op =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);

  // Invert for a single virtual source on the seafloor (the paper's first
  // experiment uses one at y=1620 m, x=2460 m).
  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);

  const auto adj = mdd::adjoint_reflectivity(*op, rhs);
  std::printf("adjoint (cross-correlation) correlation with truth: %.3f\n",
              mdd::correlation(adj, truth));

  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;
  lsqr.verbose = false;
  WallTimer t_inv;
  const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
  std::printf("LSQR: %d iterations, |r| = %.3e (%.1fs)\n", sol.iterations,
              sol.residual_norm, t_inv.seconds());
  std::printf("inversion NMSE vs truth: %.4f, correlation: %.3f\n",
              mdd::nmse(sol.x, truth), mdd::correlation(sol.x, truth));
  std::printf("(the inversion deconvolves the source wavelet and strips the "
              "free-surface multiples that contaminate the adjoint)\n");
  return 0;
}
