// Multi-shot processing: a line of virtual sources deconvolved in parallel
// (paper Sec. 6.4: 177 virtual sources on 708 GPUs), the batched TLR-MMM
// kernel from the Sec. 8 outlook, and NMO stacking of the zero-offset
// traces (the post-processing of Fig. 13's last panel).
#include <cstdio>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/mdd/multi_source.hpp"
#include "tlrwse/mdd/nmo.hpp"
#include "tlrwse/tlr/tlr_mmm.hpp"

int main() {
  using namespace tlrwse;
  std::printf("== Multi-shot MDD: a crossline of virtual sources ==\n");
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(14, 10, 12, 9);
  cfg.nt = 256;
  cfg.f_min = 4.0;
  cfg.f_max = 30.0;
  const auto data = seismic::build_dataset(cfg);

  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  const auto op = mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);

  const auto line =
      mdd::virtual_source_line(data, data.num_receivers() / 2, 8);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;
  WallTimer t_line;
  const auto res = mdd::solve_mdd_multi(data, *op, line, lsqr);
  std::printf("solved %zu virtual sources in %.1fs: mean NMSE %.4f, worst "
              "%.4f\n",
              res.sources.size(), t_line.seconds(), res.mean_nmse,
              res.worst_nmse);

  // Batched TLR-MMM: all shots against one frequency kernel at once.
  const auto tlr_mat = tlr::compress_tlr(
      data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)], cc);
  tlr::StackedTlr<cf32> stacks(tlr_mat);
  const auto s = static_cast<index_t>(line.size());
  la::MatrixCF X(data.num_receivers(), s);
  Rng rng(7);
  fill_normal(rng, X.data(), static_cast<std::size_t>(X.size()));
  la::MatrixCF Y(data.num_sources(), s);
  WallTimer t_mmm;
  tlr::tlr_mmm_fused(stacks, X, Y);
  const auto traffic = tlr::tlr_mmm_traffic(stacks, s);
  std::printf("TLR-MMM over %lld shots: %.2f ms, modelled traffic saving "
              "%.2fx vs %lld MVMs\n",
              static_cast<long long>(s), t_mmm.millis(), traffic.saving(),
              static_cast<long long>(s));

  // NMO-stack the solved reflectivities of the line into one image trace
  // (each solution's zero-offset vicinity forms a midpoint gather).
  std::vector<std::vector<float>> gather;
  std::vector<double> offsets;
  const index_t nt = data.config.nt;
  for (std::size_t k = 0; k < res.sources.size(); ++k) {
    const index_t v = res.sources[k];
    const auto& pos_v = data.receiver_pos[static_cast<std::size_t>(v)];
    // Use the trace at the virtual source itself and its line neighbours.
    const auto& x = res.solutions[k].x;
    std::vector<float> tr(static_cast<std::size_t>(nt));
    std::copy_n(x.begin() + static_cast<std::ptrdiff_t>(v * nt), nt,
                tr.begin());
    gather.push_back(std::move(tr));
    offsets.push_back(seismic::horizontal_distance(
        pos_v, data.receiver_pos[static_cast<std::size_t>(res.sources[0])]));
  }
  mdd::NmoConfig nmo;
  nmo.velocity = data.config.model.sediment_velocity;
  nmo.dt = data.config.dt;
  const auto stack = mdd::nmo_stack(gather, offsets, nmo);
  std::printf("NMO stack of %zu zero-offset traces: peak amplitude %.3e "
              "(single-trace noise averaged down ~sqrt(n))\n",
              gather.size(),
              *std::max_element(stack.begin(), stack.end(),
                                [](float a, float b) {
                                  return std::abs(a) < std::abs(b);
                                }));
  return 0;
}
