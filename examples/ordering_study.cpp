// Station-ordering study: how the space-filling-curve reordering of
// sources/receivers changes tile ranks and compression — the paper's
// Hilbert pre-processing step in isolation.
#include <cstdio>

#include "tlrwse/common/units.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

int main() {
  using namespace tlrwse;
  std::printf("== Station ordering vs TLR compression ==\n");
  std::printf("%-22s %12s %10s %12s %12s\n", "ordering", "compressed",
              "ratio", "mean rank", "max rank");

  for (const auto& [name, ordering] :
       {std::pair{"natural (acquisition)", reorder::Ordering::kNatural},
        std::pair{"Morton (Z-order)", reorder::Ordering::kMorton},
        std::pair{"Hilbert curve", reorder::Ordering::kHilbert}}) {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
    cfg.f_min = 3.0;
    cfg.f_max = 25.0;
    cfg.ordering = ordering;
    const auto data = seismic::build_dataset(cfg);

    tlr::CompressionConfig cc;
    cc.nb = 24;
    cc.acc = 1e-4;
    double comp = 0.0, dense = 0.0, mean = 0.0;
    index_t max_rank = 0, nmat = 0;
    for (index_t q = 0; q < data.num_freqs(); q += 3) {
      const auto t =
          tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc);
      comp += t.compressed_bytes();
      dense += t.dense_bytes();
      const auto s = t.rank_stats();
      mean += s.mean;
      max_rank = std::max(max_rank, s.max);
      ++nmat;
    }
    std::printf("%-22s %12s %9.2fx %12.1f %12lld\n", name,
                format_bytes(comp).c_str(), dense / comp,
                mean / static_cast<double>(nmat),
                static_cast<long long>(max_rank));
  }
  std::printf("(the paper: Hilbert sorting gathers energy near the diagonal "
              "and delivers the 7x dataset compression)\n");
  return 0;
}
