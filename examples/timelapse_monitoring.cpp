// Time-lapse CO2 monitoring with MDD — the paper's headline motivation
// ("carbon capture and storage", Secs. 1/3: overburden-free local
// reflectivity matters most "when the times of certain multiple arrivals
// overlap with that of primaries from the target of interest — e.g., a CO2
// storage site to be monitored over time").
//
// Baseline and monitor surveys are modelled over the same overthrust-style
// geology with the storage reflector weakened by the injected plume. MDD
// is run on both; the 4D difference of the deconvolved local reflectivities
// isolates the reservoir change, while the raw upgoing data difference is
// contaminated by the free-surface multiples of the (unchanged!)
// overburden re-scattering the changed target response.
#include <cmath>
#include <cstdio>

#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace {

using namespace tlrwse;

seismic::DatasetConfig survey(const seismic::SubsurfaceModel& model) {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(14, 10, 12, 9);
  cfg.model = model;
  cfg.nt = 512;
  cfg.f_min = 4.0;
  cfg.f_max = 30.0;
  cfg.water_multiples = 2;
  return cfg;
}

/// RMS of a window of trace samples around two-way time t0.
double window_rms(const std::vector<float>& traces, index_t nt, double dt,
                  double t0, double half_width) {
  const auto lo = static_cast<index_t>(std::max((t0 - half_width) / dt, 0.0));
  const auto hi =
      std::min<index_t>(static_cast<index_t>((t0 + half_width) / dt), nt - 1);
  const auto ntr = static_cast<index_t>(traces.size()) / nt;
  double sum = 0.0;
  index_t count = 0;
  for (index_t tr = 0; tr < ntr; ++tr) {
    for (index_t t = lo; t <= hi; ++t) {
      const double v = traces[static_cast<std::size_t>(tr * nt + t)];
      sum += v * v;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sum / count) : 0.0;
}

}  // namespace

int main() {
  std::printf("== Time-lapse CO2 monitoring with MDD ==\n");
  const auto base_model = seismic::SubsurfaceModel::overthrust_like();
  const auto monitor_model = seismic::SubsurfaceModel::co2_monitor(0.8);
  std::printf("target reflectivity: baseline %.3f -> monitor %.3f\n",
              base_model.interfaces.back().reflectivity,
              monitor_model.interfaces.back().reflectivity);

  const auto base = seismic::build_dataset(survey(base_model));
  const auto monitor = seismic::build_dataset(survey(monitor_model));

  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  const auto op_base =
      mdd::make_mdc_operator(base, mdd::KernelBackend::kTlrFused, cc);
  const auto op_mon =
      mdd::make_mdc_operator(monitor, mdd::KernelBackend::kTlrFused, cc);

  const index_t v = base.num_receivers() / 2;
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;
  const auto rhs_base = mdd::virtual_source_rhs(base, v);
  const auto rhs_mon = mdd::virtual_source_rhs(monitor, v);
  const auto r_base = mdd::solve_mdd(*op_base, rhs_base, lsqr);
  const auto r_mon = mdd::solve_mdd(*op_mon, rhs_mon, lsqr);

  // 4D differences.
  std::vector<float> d_mdd(r_base.x.size());
  for (std::size_t i = 0; i < d_mdd.size(); ++i) {
    d_mdd[i] = r_mon.x[i] - r_base.x[i];
  }
  std::vector<float> d_raw(rhs_base.size());
  for (std::size_t i = 0; i < d_raw.size(); ++i) {
    d_raw[i] = rhs_mon[i] - rhs_base[i];
  }

  // Where should the change live? At the target's two-way time below the
  // datum (zero-offset): t_tgt = 2 (z_tgt - wd) / c_sed.
  const auto& model = base.config.model;
  const double z_tgt =
      model.interfaces.back().depth - model.water_depth;
  const double t_tgt = 2.0 * z_tgt / model.sediment_velocity;
  const index_t nt = base.config.nt;
  const double dt = base.config.dt;

  const double mdd_in = window_rms(d_mdd, nt, dt, t_tgt, 0.12);
  const double mdd_out = window_rms(d_mdd, nt, dt, t_tgt / 2.0, 0.12);
  const double raw_in = window_rms(d_raw, nt, dt, t_tgt + 0.25, 0.12);
  const double raw_late = window_rms(d_raw, nt, dt, t_tgt + 0.8, 0.12);

  std::printf("\nMDD 4D difference (local reflectivity):\n");
  std::printf("  RMS at the target time (%.2fs):   %.3e\n", t_tgt, mdd_in);
  std::printf("  RMS away from the target (%.2fs): %.3e  (focus ratio "
              "%.1fx)\n",
              t_tgt / 2.0, mdd_out, mdd_in / std::max(mdd_out, 1e-30));
  std::printf("\nraw upgoing 4D difference:\n");
  std::printf("  RMS near the target arrival:      %.3e\n", raw_in);
  std::printf("  RMS in the multiple coda (+0.8s): %.3e  (leakage ratio "
              "%.2fx)\n",
              raw_late, raw_late / std::max(raw_in, 1e-30));
  std::printf("\nThe deconvolved difference is confined to the reservoir "
              "time; the raw data difference re-scatters the change through "
              "the free-surface multiples of the overburden.\n");
  return 0;
}
