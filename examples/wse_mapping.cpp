// Mapping a TLR-compressed dataset onto simulated Cerebras CS-2 systems:
// compress real (small-scale) frequency matrices, choose a stack width,
// inspect occupancy/bandwidth, and verify the mapped execution computes
// the exact MVM. Then rerun the mapping at the paper's full 26040 x 15930
// scale through the calibrated rank model.
#include <cstdio>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"
#include "tlrwse/wse/functional.hpp"
#include "tlrwse/wse/machine.hpp"

namespace {

/// Adapter over the paper-scale rank model.
class ModelSource final : public tlrwse::wse::RankSource {
 public:
  explicit ModelSource(const tlrwse::seismic::RankModelConfig& cfg)
      : model_(cfg) {}
  [[nodiscard]] tlrwse::index_t num_freqs() const override {
    return model_.config().num_freqs;
  }
  [[nodiscard]] const tlrwse::tlr::TileGrid& grid() const override {
    return model_.grid();
  }
  [[nodiscard]] std::vector<tlrwse::index_t> tile_ranks(
      tlrwse::index_t q) const override {
    return model_.tile_ranks(q);
  }

 private:
  tlrwse::seismic::RankModel model_;
};

}  // namespace

int main() {
  using namespace tlrwse;

  std::printf("== Part 1: small dataset, functional WSE execution ==\n");
  seismic::DatasetConfig dcfg;
  dcfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
  dcfg.f_min = 3.0;
  dcfg.f_max = 25.0;
  const auto data = seismic::build_dataset(dcfg);

  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  std::vector<tlr::TlrMatrix<cf32>> mats;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    mats.push_back(
        tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc));
  }
  wse::TlrRankSource source(mats);

  wse::ClusterConfig mcfg;
  mcfg.stack_width = 16;
  const auto rep = wse::simulate_cluster(source, mcfg);
  std::printf("chunks (PEs): %lld on %lld CS-2(s), occupancy %.1f%%\n",
              static_cast<long long>(rep.chunks),
              static_cast<long long>(rep.systems), 100.0 * rep.occupancy);
  std::printf("worst cycles %.0f -> %.3f us; relative bw %s, absolute %s\n",
              rep.worst_cycles, rep.time_us,
              format_bandwidth(rep.relative_bw).c_str(),
              format_bandwidth(rep.absolute_bw).c_str());
  std::printf("max SRAM per PE: %s of %s (%s)\n",
              format_bytes(rep.max_sram_bytes).c_str(),
              format_bytes(static_cast<double>(mcfg.spec.sram_bytes_per_pe))
                  .c_str(),
              rep.fits_sram ? "fits" : "OVERFLOW");

  // Verify the mapped execution against the reference kernel.
  tlr::StackedTlr<cf32> stacks(mats[mats.size() / 2]);
  Rng rng(3);
  std::vector<cf32> x(static_cast<std::size_t>(data.num_receivers()));
  fill_normal(rng, x.data(), x.size());
  const auto y_wse =
      wse::functional_wse_mvm(stacks, mcfg.stack_width, std::span<const cf32>(x));
  const auto y_ref = tlr::tlr_mvm_fused(stacks, std::span<const cf32>(x));
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    num += std::norm(static_cast<cf64>(y_wse[i]) - static_cast<cf64>(y_ref[i]));
    den += std::norm(static_cast<cf64>(y_ref[i]));
  }
  std::printf("functional check vs reference TLR-MVM: rel err %.2e\n\n",
              std::sqrt(num / den));

  std::printf("== Part 2: paper-scale mapping (26040 x 15930, 230 freqs) ==\n");
  seismic::RankModelConfig rcfg;
  rcfg.nb = 70;
  rcfg.acc = 1e-4;
  ModelSource paper_source(rcfg);
  wse::ClusterConfig pcfg;
  pcfg.stack_width = 23;  // Table 1 choice for nb = 70
  pcfg.systems = 6;
  const auto prep = wse::simulate_cluster(paper_source, pcfg);
  std::printf("six CS-2 systems: %lld PEs used (%.0f%% occupancy)\n",
              static_cast<long long>(prep.pes_used), 100.0 * prep.occupancy);
  std::printf("relative bw %s (paper: 11.92 PB/s), absolute %s (paper: "
              "31.62 PB/s)\n",
              format_bandwidth(prep.relative_bw).c_str(),
              format_bandwidth(prep.absolute_bw).c_str());

  pcfg.strategy = wse::Strategy::kScatterRealMvms;
  pcfg.systems = 0;
  const auto prep48 = wse::simulate_cluster(paper_source, pcfg);
  std::printf("strategy 2: %lld PEs over %lld systems -> relative bw %s "
              "(paper: 92.58 PB/s)\n",
              static_cast<long long>(prep48.pes_used),
              static_cast<long long>(prep48.systems),
              format_bandwidth(prep48.relative_bw).c_str());
  return 0;
}
