// Quickstart: compress a seismic frequency matrix with TLR, run the
// communication-avoiding TLR-MVM, and compare against the dense product.
//
//   1. Synthesise one Hilbert-ordered frequency matrix.
//   2. Compress it to a tile-wise accuracy (the paper's `acc`).
//   3. Apply both the dense MVM and the TLR-MVM kernels.
//   4. Report compression ratio and MVM accuracy.
#include <cstdio>
#include <span>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

int main() {
  using namespace tlrwse;

  // 1. One frequency slice of a small ocean-bottom survey (stations are
  //    Hilbert-ordered inside build_dataset, as in the paper's
  //    pre-processing).
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
  cfg.f_min = 3.0;
  cfg.f_max = 25.0;
  const auto data = seismic::build_dataset(cfg);
  const auto& K = data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)];
  std::printf("frequency matrix: %lld x %lld (%s dense)\n",
              static_cast<long long>(K.rows()),
              static_cast<long long>(K.cols()),
              format_bytes(static_cast<double>(K.rows() * K.cols()) *
                           sizeof(cf32))
                  .c_str());

  // 2. TLR compression, nb-sized tiles, per-tile Frobenius accuracy.
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  const auto tlr_mat = tlr::compress_tlr(K, cc);
  const auto stats = tlr_mat.rank_stats();
  std::printf("TLR (nb=%lld, acc=%.0e): %s, ratio %.2fx, ranks %lld..%lld "
              "(mean %.1f)\n",
              static_cast<long long>(cc.nb), cc.acc,
              format_bytes(tlr_mat.compressed_bytes()).c_str(),
              tlr_mat.compression_ratio(), static_cast<long long>(stats.min),
              static_cast<long long>(stats.max), stats.mean);

  // 3. Dense vs communication-avoiding TLR-MVM.
  Rng rng(1);
  std::vector<cf32> x(static_cast<std::size_t>(K.cols()));
  fill_normal(rng, x.data(), x.size());
  std::vector<cf32> y_dense(static_cast<std::size_t>(K.rows()));
  la::gemv(K, std::span<const cf32>(x), std::span<cf32>(y_dense));

  tlr::StackedTlr<cf32> stacks(tlr_mat);
  const auto y_tlr = tlr::tlr_mvm_fused(stacks, std::span<const cf32>(x));

  // 4. Relative error of the compressed MVM.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < y_dense.size(); ++i) {
    num += std::norm(static_cast<cf64>(y_tlr[i]) - static_cast<cf64>(y_dense[i]));
    den += std::norm(static_cast<cf64>(y_dense[i]));
  }
  std::printf("TLR-MVM relative error vs dense: %.2e (target ~ acc = %.0e)\n",
              std::sqrt(num / den), cc.acc);
  return 0;
}
