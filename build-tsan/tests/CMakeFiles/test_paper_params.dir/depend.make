# Empty dependencies file for test_paper_params.
# This may be replaced when dependencies are built.
