file(REMOVE_RECURSE
  "CMakeFiles/test_paper_params.dir/test_paper_params.cpp.o"
  "CMakeFiles/test_paper_params.dir/test_paper_params.cpp.o.d"
  "test_paper_params"
  "test_paper_params.pdb"
  "test_paper_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
