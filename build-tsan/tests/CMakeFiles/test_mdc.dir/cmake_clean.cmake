file(REMOVE_RECURSE
  "CMakeFiles/test_mdc.dir/test_mdc.cpp.o"
  "CMakeFiles/test_mdc.dir/test_mdc.cpp.o.d"
  "test_mdc"
  "test_mdc.pdb"
  "test_mdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
