# Empty compiler generated dependencies file for test_mdc.
# This may be replaced when dependencies are built.
