file(REMOVE_RECURSE
  "CMakeFiles/test_mixed.dir/test_mixed.cpp.o"
  "CMakeFiles/test_mixed.dir/test_mixed.cpp.o.d"
  "test_mixed"
  "test_mixed.pdb"
  "test_mixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
