# Empty dependencies file for test_mixed.
# This may be replaced when dependencies are built.
