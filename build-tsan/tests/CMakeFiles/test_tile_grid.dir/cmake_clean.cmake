file(REMOVE_RECURSE
  "CMakeFiles/test_tile_grid.dir/test_tile_grid.cpp.o"
  "CMakeFiles/test_tile_grid.dir/test_tile_grid.cpp.o.d"
  "test_tile_grid"
  "test_tile_grid.pdb"
  "test_tile_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
