# Empty compiler generated dependencies file for test_tile_grid.
# This may be replaced when dependencies are built.
