# Empty compiler generated dependencies file for test_lsqr.
# This may be replaced when dependencies are built.
