file(REMOVE_RECURSE
  "CMakeFiles/test_lsqr.dir/test_lsqr.cpp.o"
  "CMakeFiles/test_lsqr.dir/test_lsqr.cpp.o.d"
  "test_lsqr"
  "test_lsqr.pdb"
  "test_lsqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
