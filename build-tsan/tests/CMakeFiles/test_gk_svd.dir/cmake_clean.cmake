file(REMOVE_RECURSE
  "CMakeFiles/test_gk_svd.dir/test_gk_svd.cpp.o"
  "CMakeFiles/test_gk_svd.dir/test_gk_svd.cpp.o.d"
  "test_gk_svd"
  "test_gk_svd.pdb"
  "test_gk_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gk_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
