file(REMOVE_RECURSE
  "CMakeFiles/test_tlr_matrix.dir/test_tlr_matrix.cpp.o"
  "CMakeFiles/test_tlr_matrix.dir/test_tlr_matrix.cpp.o.d"
  "test_tlr_matrix"
  "test_tlr_matrix.pdb"
  "test_tlr_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlr_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
