# Empty compiler generated dependencies file for test_solvers_extra.
# This may be replaced when dependencies are built.
