file(REMOVE_RECURSE
  "CMakeFiles/test_solvers_extra.dir/test_solvers_extra.cpp.o"
  "CMakeFiles/test_solvers_extra.dir/test_solvers_extra.cpp.o.d"
  "test_solvers_extra"
  "test_solvers_extra.pdb"
  "test_solvers_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solvers_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
