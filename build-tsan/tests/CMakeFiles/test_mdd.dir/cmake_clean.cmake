file(REMOVE_RECURSE
  "CMakeFiles/test_mdd.dir/test_mdd.cpp.o"
  "CMakeFiles/test_mdd.dir/test_mdd.cpp.o.d"
  "test_mdd"
  "test_mdd.pdb"
  "test_mdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
