# Empty compiler generated dependencies file for test_mdd.
# This may be replaced when dependencies are built.
