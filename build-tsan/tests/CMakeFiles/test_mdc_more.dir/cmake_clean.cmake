file(REMOVE_RECURSE
  "CMakeFiles/test_mdc_more.dir/test_mdc_more.cpp.o"
  "CMakeFiles/test_mdc_more.dir/test_mdc_more.cpp.o.d"
  "test_mdc_more"
  "test_mdc_more.pdb"
  "test_mdc_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdc_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
