# Empty dependencies file for test_mdc_more.
# This may be replaced when dependencies are built.
