file(REMOVE_RECURSE
  "CMakeFiles/test_mdc_parallel.dir/test_mdc_parallel.cpp.o"
  "CMakeFiles/test_mdc_parallel.dir/test_mdc_parallel.cpp.o.d"
  "test_mdc_parallel"
  "test_mdc_parallel.pdb"
  "test_mdc_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
