# Empty dependencies file for test_mdc_parallel.
# This may be replaced when dependencies are built.
