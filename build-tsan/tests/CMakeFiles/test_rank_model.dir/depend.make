# Empty dependencies file for test_rank_model.
# This may be replaced when dependencies are built.
