file(REMOVE_RECURSE
  "CMakeFiles/test_rank_model.dir/test_rank_model.cpp.o"
  "CMakeFiles/test_rank_model.dir/test_rank_model.cpp.o.d"
  "test_rank_model"
  "test_rank_model.pdb"
  "test_rank_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
