file(REMOVE_RECURSE
  "CMakeFiles/test_wse_machine.dir/test_wse_machine.cpp.o"
  "CMakeFiles/test_wse_machine.dir/test_wse_machine.cpp.o.d"
  "test_wse_machine"
  "test_wse_machine.pdb"
  "test_wse_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
