file(REMOVE_RECURSE
  "CMakeFiles/test_tlr_mmm.dir/test_tlr_mmm.cpp.o"
  "CMakeFiles/test_tlr_mmm.dir/test_tlr_mmm.cpp.o.d"
  "test_tlr_mmm"
  "test_tlr_mmm.pdb"
  "test_tlr_mmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlr_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
