# Empty compiler generated dependencies file for test_tlr_mmm.
# This may be replaced when dependencies are built.
