# Empty dependencies file for test_wse_functional.
# This may be replaced when dependencies are built.
