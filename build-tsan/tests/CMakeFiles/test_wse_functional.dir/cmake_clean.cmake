file(REMOVE_RECURSE
  "CMakeFiles/test_wse_functional.dir/test_wse_functional.cpp.o"
  "CMakeFiles/test_wse_functional.dir/test_wse_functional.cpp.o.d"
  "test_wse_functional"
  "test_wse_functional.pdb"
  "test_wse_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
