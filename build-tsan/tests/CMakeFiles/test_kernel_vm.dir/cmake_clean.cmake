file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_vm.dir/test_kernel_vm.cpp.o"
  "CMakeFiles/test_kernel_vm.dir/test_kernel_vm.cpp.o.d"
  "test_kernel_vm"
  "test_kernel_vm.pdb"
  "test_kernel_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
