# Empty dependencies file for test_wse_properties.
# This may be replaced when dependencies are built.
