file(REMOVE_RECURSE
  "CMakeFiles/test_wse_properties.dir/test_wse_properties.cpp.o"
  "CMakeFiles/test_wse_properties.dir/test_wse_properties.cpp.o.d"
  "test_wse_properties"
  "test_wse_properties.pdb"
  "test_wse_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
