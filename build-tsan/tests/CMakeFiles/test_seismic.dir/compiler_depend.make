# Empty compiler generated dependencies file for test_seismic.
# This may be replaced when dependencies are built.
