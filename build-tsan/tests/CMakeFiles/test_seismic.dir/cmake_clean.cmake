file(REMOVE_RECURSE
  "CMakeFiles/test_seismic.dir/test_seismic.cpp.o"
  "CMakeFiles/test_seismic.dir/test_seismic.cpp.o.d"
  "test_seismic"
  "test_seismic.pdb"
  "test_seismic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seismic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
