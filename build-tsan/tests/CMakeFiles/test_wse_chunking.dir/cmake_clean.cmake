file(REMOVE_RECURSE
  "CMakeFiles/test_wse_chunking.dir/test_wse_chunking.cpp.o"
  "CMakeFiles/test_wse_chunking.dir/test_wse_chunking.cpp.o.d"
  "test_wse_chunking"
  "test_wse_chunking.pdb"
  "test_wse_chunking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
