# Empty compiler generated dependencies file for test_wse_chunking.
# This may be replaced when dependencies are built.
