# Empty compiler generated dependencies file for test_combinators.
# This may be replaced when dependencies are built.
