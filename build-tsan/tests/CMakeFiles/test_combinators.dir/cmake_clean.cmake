file(REMOVE_RECURSE
  "CMakeFiles/test_combinators.dir/test_combinators.cpp.o"
  "CMakeFiles/test_combinators.dir/test_combinators.cpp.o.d"
  "test_combinators"
  "test_combinators.pdb"
  "test_combinators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combinators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
