file(REMOVE_RECURSE
  "CMakeFiles/test_roofline.dir/test_roofline.cpp.o"
  "CMakeFiles/test_roofline.dir/test_roofline.cpp.o.d"
  "test_roofline"
  "test_roofline.pdb"
  "test_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
