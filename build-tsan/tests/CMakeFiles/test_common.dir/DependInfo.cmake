
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/test_common.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/tlrwse_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/reorder/CMakeFiles/tlrwse_reorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tlr/CMakeFiles/tlrwse_tlr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seismic/CMakeFiles/tlrwse_seismic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mdc/CMakeFiles/tlrwse_mdc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mdd/CMakeFiles/tlrwse_mdd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wse/CMakeFiles/tlrwse_wse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/roofline/CMakeFiles/tlrwse_roofline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/tlrwse_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
