file(REMOVE_RECURSE
  "CMakeFiles/test_tlr_mvm.dir/test_tlr_mvm.cpp.o"
  "CMakeFiles/test_tlr_mvm.dir/test_tlr_mvm.cpp.o.d"
  "test_tlr_mvm"
  "test_tlr_mvm.pdb"
  "test_tlr_mvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlr_mvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
