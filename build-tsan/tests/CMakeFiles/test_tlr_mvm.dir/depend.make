# Empty dependencies file for test_tlr_mvm.
# This may be replaced when dependencies are built.
