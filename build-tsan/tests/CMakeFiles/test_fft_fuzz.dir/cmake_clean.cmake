file(REMOVE_RECURSE
  "CMakeFiles/test_fft_fuzz.dir/test_fft_fuzz.cpp.o"
  "CMakeFiles/test_fft_fuzz.dir/test_fft_fuzz.cpp.o.d"
  "test_fft_fuzz"
  "test_fft_fuzz.pdb"
  "test_fft_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
