# Empty dependencies file for test_fft_fuzz.
# This may be replaced when dependencies are built.
