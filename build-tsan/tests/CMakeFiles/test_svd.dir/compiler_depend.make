# Empty compiler generated dependencies file for test_svd.
# This may be replaced when dependencies are built.
