file(REMOVE_RECURSE
  "CMakeFiles/test_svd.dir/test_svd.cpp.o"
  "CMakeFiles/test_svd.dir/test_svd.cpp.o.d"
  "test_svd"
  "test_svd.pdb"
  "test_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
