file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_roundtrip.dir/test_pipeline_roundtrip.cpp.o"
  "CMakeFiles/test_pipeline_roundtrip.dir/test_pipeline_roundtrip.cpp.o.d"
  "test_pipeline_roundtrip"
  "test_pipeline_roundtrip.pdb"
  "test_pipeline_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
