# Empty dependencies file for test_pipeline_roundtrip.
# This may be replaced when dependencies are built.
