file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_wse.dir/src/bsp.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/bsp.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/chunking.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/chunking.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/cost_model.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/cost_model.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/fabric.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/fabric.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/functional.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/functional.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/host_io.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/host_io.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/kernel_vm.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/kernel_vm.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/machine.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/machine.cpp.o.d"
  "CMakeFiles/tlrwse_wse.dir/src/power.cpp.o"
  "CMakeFiles/tlrwse_wse.dir/src/power.cpp.o.d"
  "libtlrwse_wse.a"
  "libtlrwse_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
