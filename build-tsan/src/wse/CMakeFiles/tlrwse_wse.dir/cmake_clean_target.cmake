file(REMOVE_RECURSE
  "libtlrwse_wse.a"
)
