# Empty dependencies file for tlrwse_wse.
# This may be replaced when dependencies are built.
