
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wse/src/bsp.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/bsp.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/bsp.cpp.o.d"
  "/root/repo/src/wse/src/chunking.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/chunking.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/chunking.cpp.o.d"
  "/root/repo/src/wse/src/cost_model.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/cost_model.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/cost_model.cpp.o.d"
  "/root/repo/src/wse/src/fabric.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/fabric.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/fabric.cpp.o.d"
  "/root/repo/src/wse/src/functional.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/functional.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/functional.cpp.o.d"
  "/root/repo/src/wse/src/host_io.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/host_io.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/host_io.cpp.o.d"
  "/root/repo/src/wse/src/kernel_vm.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/kernel_vm.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/kernel_vm.cpp.o.d"
  "/root/repo/src/wse/src/machine.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/machine.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/machine.cpp.o.d"
  "/root/repo/src/wse/src/power.cpp" "src/wse/CMakeFiles/tlrwse_wse.dir/src/power.cpp.o" "gcc" "src/wse/CMakeFiles/tlrwse_wse.dir/src/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tlr/CMakeFiles/tlrwse_tlr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seismic/CMakeFiles/tlrwse_seismic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/tlrwse_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/reorder/CMakeFiles/tlrwse_reorder.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
