
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/src/hilbert.cpp" "src/reorder/CMakeFiles/tlrwse_reorder.dir/src/hilbert.cpp.o" "gcc" "src/reorder/CMakeFiles/tlrwse_reorder.dir/src/hilbert.cpp.o.d"
  "/root/repo/src/reorder/src/permutation.cpp" "src/reorder/CMakeFiles/tlrwse_reorder.dir/src/permutation.cpp.o" "gcc" "src/reorder/CMakeFiles/tlrwse_reorder.dir/src/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
