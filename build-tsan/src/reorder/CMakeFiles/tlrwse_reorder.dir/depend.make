# Empty dependencies file for tlrwse_reorder.
# This may be replaced when dependencies are built.
