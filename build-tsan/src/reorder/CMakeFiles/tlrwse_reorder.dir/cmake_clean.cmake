file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_reorder.dir/src/hilbert.cpp.o"
  "CMakeFiles/tlrwse_reorder.dir/src/hilbert.cpp.o.d"
  "CMakeFiles/tlrwse_reorder.dir/src/permutation.cpp.o"
  "CMakeFiles/tlrwse_reorder.dir/src/permutation.cpp.o.d"
  "libtlrwse_reorder.a"
  "libtlrwse_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
