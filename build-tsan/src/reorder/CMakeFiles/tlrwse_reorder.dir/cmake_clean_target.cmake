file(REMOVE_RECURSE
  "libtlrwse_reorder.a"
)
