# Empty dependencies file for tlrwse_seismic.
# This may be replaced when dependencies are built.
