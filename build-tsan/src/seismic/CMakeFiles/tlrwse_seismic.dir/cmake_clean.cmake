file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_seismic.dir/src/geometry.cpp.o"
  "CMakeFiles/tlrwse_seismic.dir/src/geometry.cpp.o.d"
  "CMakeFiles/tlrwse_seismic.dir/src/model.cpp.o"
  "CMakeFiles/tlrwse_seismic.dir/src/model.cpp.o.d"
  "CMakeFiles/tlrwse_seismic.dir/src/modeling.cpp.o"
  "CMakeFiles/tlrwse_seismic.dir/src/modeling.cpp.o.d"
  "CMakeFiles/tlrwse_seismic.dir/src/rank_model.cpp.o"
  "CMakeFiles/tlrwse_seismic.dir/src/rank_model.cpp.o.d"
  "CMakeFiles/tlrwse_seismic.dir/src/wavelet.cpp.o"
  "CMakeFiles/tlrwse_seismic.dir/src/wavelet.cpp.o.d"
  "libtlrwse_seismic.a"
  "libtlrwse_seismic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_seismic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
