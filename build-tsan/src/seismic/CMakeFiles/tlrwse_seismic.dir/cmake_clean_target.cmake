file(REMOVE_RECURSE
  "libtlrwse_seismic.a"
)
