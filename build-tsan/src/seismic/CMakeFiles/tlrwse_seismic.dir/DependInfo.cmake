
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seismic/src/geometry.cpp" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/geometry.cpp.o" "gcc" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/geometry.cpp.o.d"
  "/root/repo/src/seismic/src/model.cpp" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/model.cpp.o" "gcc" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/model.cpp.o.d"
  "/root/repo/src/seismic/src/modeling.cpp" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/modeling.cpp.o" "gcc" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/modeling.cpp.o.d"
  "/root/repo/src/seismic/src/rank_model.cpp" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/rank_model.cpp.o" "gcc" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/rank_model.cpp.o.d"
  "/root/repo/src/seismic/src/wavelet.cpp" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/wavelet.cpp.o" "gcc" "src/seismic/CMakeFiles/tlrwse_seismic.dir/src/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/tlrwse_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/reorder/CMakeFiles/tlrwse_reorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tlr/CMakeFiles/tlrwse_tlr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
