# Empty dependencies file for tlrwse_mdc.
# This may be replaced when dependencies are built.
