file(REMOVE_RECURSE
  "libtlrwse_mdc.a"
)
