file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_mdc.dir/src/mdc_operator.cpp.o"
  "CMakeFiles/tlrwse_mdc.dir/src/mdc_operator.cpp.o.d"
  "libtlrwse_mdc.a"
  "libtlrwse_mdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_mdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
