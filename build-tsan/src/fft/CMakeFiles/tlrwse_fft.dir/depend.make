# Empty dependencies file for tlrwse_fft.
# This may be replaced when dependencies are built.
