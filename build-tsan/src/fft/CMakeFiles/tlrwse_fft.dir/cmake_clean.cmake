file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_fft.dir/src/fft.cpp.o"
  "CMakeFiles/tlrwse_fft.dir/src/fft.cpp.o.d"
  "libtlrwse_fft.a"
  "libtlrwse_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
