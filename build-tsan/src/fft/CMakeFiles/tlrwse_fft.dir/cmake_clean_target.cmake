file(REMOVE_RECURSE
  "libtlrwse_fft.a"
)
