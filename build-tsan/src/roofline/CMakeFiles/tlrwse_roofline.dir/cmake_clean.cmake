file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_roofline.dir/src/roofline.cpp.o"
  "CMakeFiles/tlrwse_roofline.dir/src/roofline.cpp.o.d"
  "libtlrwse_roofline.a"
  "libtlrwse_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
