file(REMOVE_RECURSE
  "libtlrwse_roofline.a"
)
