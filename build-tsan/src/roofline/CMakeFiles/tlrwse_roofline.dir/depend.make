# Empty dependencies file for tlrwse_roofline.
# This may be replaced when dependencies are built.
