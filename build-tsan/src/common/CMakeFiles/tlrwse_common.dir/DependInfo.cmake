
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/src/rng.cpp" "src/common/CMakeFiles/tlrwse_common.dir/src/rng.cpp.o" "gcc" "src/common/CMakeFiles/tlrwse_common.dir/src/rng.cpp.o.d"
  "/root/repo/src/common/src/table.cpp" "src/common/CMakeFiles/tlrwse_common.dir/src/table.cpp.o" "gcc" "src/common/CMakeFiles/tlrwse_common.dir/src/table.cpp.o.d"
  "/root/repo/src/common/src/units.cpp" "src/common/CMakeFiles/tlrwse_common.dir/src/units.cpp.o" "gcc" "src/common/CMakeFiles/tlrwse_common.dir/src/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
