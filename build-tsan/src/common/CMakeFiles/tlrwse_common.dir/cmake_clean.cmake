file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_common.dir/src/rng.cpp.o"
  "CMakeFiles/tlrwse_common.dir/src/rng.cpp.o.d"
  "CMakeFiles/tlrwse_common.dir/src/table.cpp.o"
  "CMakeFiles/tlrwse_common.dir/src/table.cpp.o.d"
  "CMakeFiles/tlrwse_common.dir/src/units.cpp.o"
  "CMakeFiles/tlrwse_common.dir/src/units.cpp.o.d"
  "libtlrwse_common.a"
  "libtlrwse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
