file(REMOVE_RECURSE
  "libtlrwse_common.a"
)
