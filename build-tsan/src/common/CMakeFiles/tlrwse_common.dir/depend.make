# Empty dependencies file for tlrwse_common.
# This may be replaced when dependencies are built.
