# Empty dependencies file for tlrwse_mdd.
# This may be replaced when dependencies are built.
