file(REMOVE_RECURSE
  "libtlrwse_mdd.a"
)
