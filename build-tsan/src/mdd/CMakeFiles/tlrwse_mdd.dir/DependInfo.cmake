
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdd/src/cgls.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/cgls.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/cgls.cpp.o.d"
  "/root/repo/src/mdd/src/lsqr.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/lsqr.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/lsqr.cpp.o.d"
  "/root/repo/src/mdd/src/mdd_solver.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/mdd_solver.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/mdd_solver.cpp.o.d"
  "/root/repo/src/mdd/src/metrics.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/metrics.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/metrics.cpp.o.d"
  "/root/repo/src/mdd/src/multi_source.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/multi_source.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/multi_source.cpp.o.d"
  "/root/repo/src/mdd/src/nmo.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/nmo.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/nmo.cpp.o.d"
  "/root/repo/src/mdd/src/preconditioner.cpp" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/preconditioner.cpp.o" "gcc" "src/mdd/CMakeFiles/tlrwse_mdd.dir/src/preconditioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mdc/CMakeFiles/tlrwse_mdc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seismic/CMakeFiles/tlrwse_seismic.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/tlrwse_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tlr/CMakeFiles/tlrwse_tlr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/reorder/CMakeFiles/tlrwse_reorder.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
