file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_mdd.dir/src/cgls.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/cgls.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/lsqr.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/lsqr.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/mdd_solver.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/mdd_solver.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/metrics.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/metrics.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/multi_source.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/multi_source.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/nmo.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/nmo.cpp.o.d"
  "CMakeFiles/tlrwse_mdd.dir/src/preconditioner.cpp.o"
  "CMakeFiles/tlrwse_mdd.dir/src/preconditioner.cpp.o.d"
  "libtlrwse_mdd.a"
  "libtlrwse_mdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_mdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
