# Empty dependencies file for tlrwse_la.
# This may be replaced when dependencies are built.
