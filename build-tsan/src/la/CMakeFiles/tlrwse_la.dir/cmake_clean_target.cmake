file(REMOVE_RECURSE
  "libtlrwse_la.a"
)
