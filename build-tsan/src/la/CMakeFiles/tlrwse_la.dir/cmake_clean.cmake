file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_la.dir/src/gk_svd.cpp.o"
  "CMakeFiles/tlrwse_la.dir/src/gk_svd.cpp.o.d"
  "CMakeFiles/tlrwse_la.dir/src/instantiations.cpp.o"
  "CMakeFiles/tlrwse_la.dir/src/instantiations.cpp.o.d"
  "libtlrwse_la.a"
  "libtlrwse_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
