# Empty dependencies file for tlrwse_io.
# This may be replaced when dependencies are built.
