file(REMOVE_RECURSE
  "libtlrwse_io.a"
)
