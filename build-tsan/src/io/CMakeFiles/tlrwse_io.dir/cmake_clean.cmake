file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_io.dir/src/archive.cpp.o"
  "CMakeFiles/tlrwse_io.dir/src/archive.cpp.o.d"
  "CMakeFiles/tlrwse_io.dir/src/csv.cpp.o"
  "CMakeFiles/tlrwse_io.dir/src/csv.cpp.o.d"
  "CMakeFiles/tlrwse_io.dir/src/serialize.cpp.o"
  "CMakeFiles/tlrwse_io.dir/src/serialize.cpp.o.d"
  "libtlrwse_io.a"
  "libtlrwse_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
