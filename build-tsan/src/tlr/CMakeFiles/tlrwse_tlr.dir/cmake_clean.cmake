file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_tlr.dir/src/instantiations.cpp.o"
  "CMakeFiles/tlrwse_tlr.dir/src/instantiations.cpp.o.d"
  "CMakeFiles/tlrwse_tlr.dir/src/mixed.cpp.o"
  "CMakeFiles/tlrwse_tlr.dir/src/mixed.cpp.o.d"
  "libtlrwse_tlr.a"
  "libtlrwse_tlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_tlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
