# Empty dependencies file for tlrwse_tlr.
# This may be replaced when dependencies are built.
