
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlr/src/instantiations.cpp" "src/tlr/CMakeFiles/tlrwse_tlr.dir/src/instantiations.cpp.o" "gcc" "src/tlr/CMakeFiles/tlrwse_tlr.dir/src/instantiations.cpp.o.d"
  "/root/repo/src/tlr/src/mixed.cpp" "src/tlr/CMakeFiles/tlrwse_tlr.dir/src/mixed.cpp.o" "gcc" "src/tlr/CMakeFiles/tlrwse_tlr.dir/src/mixed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/tlrwse_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/tlrwse_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
