file(REMOVE_RECURSE
  "libtlrwse_tlr.a"
)
