# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synth "/root/repo/build-tsan/tools/tlrwse_cli" "synth" "--out" "/root/repo/build-tsan/tools/cli_K.bin" "--nsx" "8" "--nsy" "6" "--nrx" "6" "--nry" "5" "--nt" "128")
set_tests_properties(cli_synth PROPERTIES  FIXTURES_SETUP "cli_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compress "/root/repo/build-tsan/tools/tlrwse_cli" "compress" "--in" "/root/repo/build-tsan/tools/cli_K.bin" "--out" "/root/repo/build-tsan/tools/cli_K.tlr" "--nb" "12" "--acc" "1e-3")
set_tests_properties(cli_compress PROPERTIES  FIXTURES_REQUIRED "cli_data" FIXTURES_SETUP "cli_tlr" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build-tsan/tools/tlrwse_cli" "info" "--in" "/root/repo/build-tsan/tools/cli_K.tlr")
set_tests_properties(cli_info PROPERTIES  FIXTURES_REQUIRED "cli_tlr" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mvm "/root/repo/build-tsan/tools/tlrwse_cli" "mvm" "--in" "/root/repo/build-tsan/tools/cli_K.tlr" "--reps" "5")
set_tests_properties(cli_mvm PROPERTIES  FIXTURES_REQUIRED "cli_tlr" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build-tsan/tools/tlrwse_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_archive "/root/repo/build-tsan/tools/tlrwse_cli" "archive" "--out" "/root/repo/build-tsan/tools/cli.tlra" "--nsx" "8" "--nsy" "6" "--nrx" "6" "--nry" "5" "--nt" "128" "--nb" "12")
set_tests_properties(cli_archive PROPERTIES  FIXTURES_SETUP "cli_archive_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve "/root/repo/build-tsan/tools/tlrwse_cli" "solve" "--archive" "/root/repo/build-tsan/tools/cli.tlra" "--nsx" "8" "--nsy" "6" "--nrx" "6" "--nry" "5" "--nt" "128" "--iters" "10")
set_tests_properties(cli_solve PROPERTIES  FIXTURES_REQUIRED "cli_archive_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
