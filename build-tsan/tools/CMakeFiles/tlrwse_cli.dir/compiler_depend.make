# Empty compiler generated dependencies file for tlrwse_cli.
# This may be replaced when dependencies are built.
