file(REMOVE_RECURSE
  "CMakeFiles/tlrwse_cli.dir/tlrwse_cli.cpp.o"
  "CMakeFiles/tlrwse_cli.dir/tlrwse_cli.cpp.o.d"
  "tlrwse_cli"
  "tlrwse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlrwse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
