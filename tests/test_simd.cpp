// Tests for the SIMD microkernel engine and the precompiled MVM plans:
// elementwise <= 4-ULP parity between every dispatch tier reachable on the
// host and the scalar reference across ragged shapes (including empty,
// width-1, just-past-register-boundary, and padded-lda operands with NaN
// sentinels in the padding), bitwise equality of multi-RHS kernels with
// their single-RHS forms, plan-vs-kernel agreement on compressed matrices
// (including zero-rank tiles), and the batched MdcOperator paths. The
// whole binary is registered twice in ctest: once plain and once with
// TLRWSE_SIMD_LEVEL=scalar, which forces the dispatcher down to the
// reference tier.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "test_helpers.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/tlr/mvm_plan.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse {
namespace {

namespace simd = la::simd;

// ------------------------------------------------------------- helpers --

/// Distance in representable floats (0 = bitwise equal). NaN vs NaN is 0;
/// NaN vs number is huge.
std::int64_t ulp_diff(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  const auto to_ordered = [](float v) -> std::int64_t {
    const auto bits = static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(v));
    return bits >= 0 ? bits : std::numeric_limits<std::int32_t>::min() - bits;
  };
  const std::int64_t d = to_ordered(a) - to_ordered(b);
  return d < 0 ? -d : d;
}

void expect_ulp_close(const std::vector<float>& got,
                      const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_LE(ulp_diff(got[i], want[i]), 4)
        << what << " at " << i << ": " << got[i] << " vs " << want[i];
  }
}

std::vector<float> random_floats(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return v;
}

constexpr float kPadSentinel = std::numeric_limits<float>::quiet_NaN();

/// Column-major m x n panel with lda > m and NaN in the padding rows: any
/// kernel that reads past row m poisons its output and fails the ULP bar.
struct PaddedPanel {
  index_t lda;
  std::vector<float> data;
  PaddedPanel(Rng& rng, index_t m, index_t n, index_t pad)
      : lda(m + pad),
        data(static_cast<std::size_t>(lda) * static_cast<std::size_t>(n),
             kPadSentinel) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        data[static_cast<std::size_t>(j * lda + i)] =
            static_cast<float>(rng.uniform() * 2.0 - 1.0);
      }
    }
  }
};

const std::vector<index_t>& ragged_sizes() {
  static const std::vector<index_t> s = {0, 1, 3, 7, 8, 17, 63, 64, 65, 1000};
  return s;
}

// ------------------------------------------------------------ dispatch --

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  const auto levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  EXPECT_STREQ(simd::table(simd::Level::kScalar).name, "scalar");
}

TEST(SimdDispatch, ResolveClampsDownward) {
  // Whatever is asked for resolves to an available level at or below it.
  for (const simd::Level want :
       {simd::Level::kScalar, simd::Level::kNeon, simd::Level::kAvx2,
        simd::Level::kAvx512}) {
    const simd::Level got = simd::resolve_level(want);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(want));
    bool found = false;
    for (const simd::Level l : simd::available_levels()) found |= (l == got);
    EXPECT_TRUE(found) << simd::level_name(got);
  }
  EXPECT_EQ(simd::resolve_level(simd::Level::kScalar), simd::Level::kScalar);
}

TEST(SimdDispatch, ParseLevelRoundTrips) {
  bool ok = false;
  EXPECT_EQ(simd::parse_level("scalar", ok), simd::Level::kScalar);
  EXPECT_TRUE(ok);
  EXPECT_EQ(simd::parse_level("neon", ok), simd::Level::kNeon);
  EXPECT_TRUE(ok);
  EXPECT_EQ(simd::parse_level("avx2", ok), simd::Level::kAvx2);
  EXPECT_TRUE(ok);
  EXPECT_EQ(simd::parse_level("avx512", ok), simd::Level::kAvx512);
  EXPECT_TRUE(ok);
  (void)simd::parse_level("AVX2", ok);
  EXPECT_FALSE(ok);
  (void)simd::parse_level(nullptr, ok);
  EXPECT_FALSE(ok);
}

TEST(SimdDispatch, ActiveLevelHonoursEnvOverride) {
  // active_level() is resolved once per process; this test asserts it is
  // consistent with whatever TLRWSE_SIMD_LEVEL the ctest registration set
  // (the forced-scalar registration runs this whole binary with the env
  // var set to "scalar").
  const char* env = std::getenv("TLRWSE_SIMD_LEVEL");
  if (env != nullptr) {
    bool ok = false;
    const simd::Level want = simd::parse_level(env, ok);
    if (ok) {
      EXPECT_EQ(simd::active_level(), simd::resolve_level(want));
      return;
    }
  }
  // No (valid) override: active is the best available level.
  EXPECT_EQ(simd::active_level(), simd::available_levels().back());
  EXPECT_STREQ(simd::dispatch().name,
               simd::level_name(simd::active_level()));
}

// -------------------------------------------------- tier parity (fuzz) --

class SimdParity : public ::testing::TestWithParam<simd::Level> {
 protected:
  const simd::KernelTable& tier() const { return simd::table(GetParam()); }
  const simd::KernelTable& ref() const {
    return simd::table(simd::Level::kScalar);
  }
};

TEST_P(SimdParity, SgemvMatchesScalarOnRaggedShapes) {
  Rng rng(101);
  for (const index_t m : ragged_sizes()) {
    for (const index_t n : ragged_sizes()) {
      const PaddedPanel A(rng, m, n, /*pad=*/9);
      const auto x = random_floats(rng, static_cast<std::size_t>(n));
      const auto y0 = random_floats(rng, static_cast<std::size_t>(m));
      for (const bool acc : {false, true}) {
        std::vector<float> ya = y0, yb = y0;
        ref().sgemv(m, n, A.data.data(), A.lda, x.data(), ya.data(), acc);
        tier().sgemv(m, n, A.data.data(), A.lda, x.data(), yb.data(), acc);
        expect_ulp_close(yb, ya, "sgemv");
      }
    }
  }
}

TEST_P(SimdParity, SgemvTMatchesScalarOnRaggedShapes) {
  Rng rng(202);
  for (const index_t m : ragged_sizes()) {
    for (const index_t n : ragged_sizes()) {
      const PaddedPanel A(rng, m, n, /*pad=*/5);
      const auto x = random_floats(rng, static_cast<std::size_t>(m));
      const auto y0 = random_floats(rng, static_cast<std::size_t>(n));
      for (const bool acc : {false, true}) {
        std::vector<float> ya = y0, yb = y0;
        ref().sgemv_t(m, n, A.data.data(), A.lda, x.data(), ya.data(), acc);
        tier().sgemv_t(m, n, A.data.data(), A.lda, x.data(), yb.data(), acc);
        expect_ulp_close(yb, ya, "sgemv_t");
      }
    }
  }
}

TEST_P(SimdParity, SplitKernelsMatchScalarOnRaggedShapes) {
  Rng rng(303);
  for (const index_t m : ragged_sizes()) {
    for (const index_t n : ragged_sizes()) {
      const PaddedPanel Ar(rng, m, n, /*pad=*/7);
      const PaddedPanel Ai(rng, m, n, /*pad=*/7);
      ASSERT_EQ(Ar.lda, Ai.lda);
      const auto xr = random_floats(rng, static_cast<std::size_t>(n));
      const auto xi = random_floats(rng, static_cast<std::size_t>(n));
      const auto wr = random_floats(rng, static_cast<std::size_t>(m));
      const auto wi = random_floats(rng, static_cast<std::size_t>(m));
      for (const bool acc : {false, true}) {
        std::vector<float> yra = wr, yia = wi, yrb = wr, yib = wi;
        ref().sgemv_split(m, n, Ar.data.data(), Ai.data.data(), Ar.lda,
                          xr.data(), xi.data(), yra.data(), yia.data(), acc);
        tier().sgemv_split(m, n, Ar.data.data(), Ai.data.data(), Ar.lda,
                           xr.data(), xi.data(), yrb.data(), yib.data(), acc);
        expect_ulp_close(yrb, yra, "sgemv_split re");
        expect_ulp_close(yib, yia, "sgemv_split im");

        std::vector<float> ara(static_cast<std::size_t>(n)),
            aia(static_cast<std::size_t>(n)),
            arb(static_cast<std::size_t>(n)), aib(static_cast<std::size_t>(n));
        for (index_t j = 0; j < n; ++j) {
          ara[static_cast<std::size_t>(j)] = arb[static_cast<std::size_t>(j)] =
              xr[static_cast<std::size_t>(j)];
          aia[static_cast<std::size_t>(j)] = aib[static_cast<std::size_t>(j)] =
              xi[static_cast<std::size_t>(j)];
        }
        ref().sgemv_split_adjoint(m, n, Ar.data.data(), Ai.data.data(),
                                  Ar.lda, wr.data(), wi.data(), ara.data(),
                                  aia.data(), acc);
        tier().sgemv_split_adjoint(m, n, Ar.data.data(), Ai.data.data(),
                                   Ar.lda, wr.data(), wi.data(), arb.data(),
                                   aib.data(), acc);
        expect_ulp_close(arb, ara, "sgemv_split_adjoint re");
        expect_ulp_close(aib, aia, "sgemv_split_adjoint im");
      }
    }
  }
}

TEST_P(SimdParity, MultiRhsIsBitwiseEqualToSingleRhs) {
  // Every RHS column of the register-blocked multi kernels must equal the
  // single-RHS kernel EXACTLY (same per-element fma order), so batching
  // right-hand sides never changes results.
  Rng rng(404);
  const std::vector<index_t> shapes = {0, 1, 7, 17, 64, 65, 301};
  for (const index_t m : shapes) {
    for (const index_t n : shapes) {
      const PaddedPanel Ar(rng, m, n, /*pad=*/11);
      const PaddedPanel Ai(rng, m, n, /*pad=*/11);
      for (const index_t nrhs : {index_t{1}, index_t{2}, index_t{3},
                                 index_t{5}, index_t{8}, index_t{9}}) {
        const index_t ldx = n + 3;
        const index_t ldy = m + 2;
        const auto X = random_floats(rng, static_cast<std::size_t>(ldx * nrhs));
        const auto Y0 = random_floats(rng, static_cast<std::size_t>(ldy * nrhs));
        for (const bool acc : {false, true}) {
          std::vector<float> Ym = Y0;
          tier().sgemv_multi(m, n, Ar.data.data(), Ar.lda, X.data(), ldx,
                             Ym.data(), ldy, nrhs, acc);
          for (index_t r = 0; r < nrhs; ++r) {
            std::vector<float> ys(Y0.begin() + r * ldy,
                                  Y0.begin() + r * ldy + m);
            tier().sgemv(m, n, Ar.data.data(), Ar.lda, X.data() + r * ldx,
                         ys.data(), acc);
            for (index_t i = 0; i < m; ++i) {
              ASSERT_EQ(
                  std::bit_cast<std::uint32_t>(
                      Ym[static_cast<std::size_t>(r * ldy + i)]),
                  std::bit_cast<std::uint32_t>(ys[static_cast<std::size_t>(i)]))
                  << "sgemv_multi rhs " << r << " row " << i;
            }
          }
        }

        // Split multi vs split single, same contract.
        const index_t ldxs = n + 1;
        const index_t ldys = m + 4;
        const auto Xr = random_floats(rng, static_cast<std::size_t>(ldxs * nrhs));
        const auto Xi = random_floats(rng, static_cast<std::size_t>(ldxs * nrhs));
        std::vector<float> Yr(static_cast<std::size_t>(ldys * nrhs), 0.5f);
        std::vector<float> Yi(static_cast<std::size_t>(ldys * nrhs), -0.5f);
        tier().sgemv_split_multi(m, n, Ar.data.data(), Ai.data.data(), Ar.lda,
                                 Xr.data(), Xi.data(), ldxs, Yr.data(),
                                 Yi.data(), ldys, nrhs, /*accumulate=*/false);
        for (index_t r = 0; r < nrhs; ++r) {
          std::vector<float> yr(static_cast<std::size_t>(m));
          std::vector<float> yi(static_cast<std::size_t>(m));
          tier().sgemv_split(m, n, Ar.data.data(), Ai.data.data(), Ar.lda,
                             Xr.data() + r * ldxs, Xi.data() + r * ldxs,
                             yr.data(), yi.data(), /*accumulate=*/false);
          for (index_t i = 0; i < m; ++i) {
            ASSERT_EQ(std::bit_cast<std::uint32_t>(
                          Yr[static_cast<std::size_t>(r * ldys + i)]),
                      std::bit_cast<std::uint32_t>(
                          yr[static_cast<std::size_t>(i)]));
            ASSERT_EQ(std::bit_cast<std::uint32_t>(
                          Yi[static_cast<std::size_t>(r * ldys + i)]),
                      std::bit_cast<std::uint32_t>(
                          yi[static_cast<std::size_t>(i)]));
          }
        }
      }
    }
  }
}

TEST_P(SimdParity, SplitMergeRoundTrips) {
  Rng rng(505);
  for (const index_t n : ragged_sizes()) {
    std::vector<cf32> x(static_cast<std::size_t>(n));
    for (auto& v : x) {
      v = cf32(static_cast<float>(rng.uniform()),
               static_cast<float>(rng.uniform()));
    }
    std::vector<float> re(static_cast<std::size_t>(n));
    std::vector<float> im(static_cast<std::size_t>(n));
    tier().split_complex(n, x.data(), re.data(), im.data());
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(re[static_cast<std::size_t>(i)],
                x[static_cast<std::size_t>(i)].real());
      EXPECT_EQ(im[static_cast<std::size_t>(i)],
                x[static_cast<std::size_t>(i)].imag());
    }
    std::vector<cf32> back(static_cast<std::size_t>(n));
    tier().merge_complex(n, re.data(), im.data(), back.data());
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(back[static_cast<std::size_t>(i)],
                x[static_cast<std::size_t>(i)]);
    }
  }
}

std::string level_param_name(
    const ::testing::TestParamInfo<simd::Level>& info) {
  return simd::level_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(
    AllReachableTiers, SimdParity,
    ::testing::ValuesIn(std::vector<simd::Level>(
        simd::available_levels().begin(), simd::available_levels().end())),
    level_param_name);

// ------------------------------------------------------------ MvmPlan  --

struct PlanSetup {
  la::MatrixCF dense;
  tlr::TlrMatrix<cf32> tlr;
  tlr::StackedTlr<cf32> stacks;
  std::vector<cf32> x;   // length n (forward input)
  std::vector<cf32> w;   // length m (adjoint input)

  PlanSetup(index_t m, index_t n, index_t nb, double acc = 1e-5,
            bool zero_block = false)
      : dense(tlrwse::testing::oscillatory_matrix<cf32>(m, n, 9.0)),
        tlr((zero_out(dense, zero_block), make_tlr(dense, nb, acc))),
        stacks(tlr) {
    Rng rng(3 * m + n);
    x = tlrwse::testing::random_vector<cf32>(rng, n);
    w = tlrwse::testing::random_vector<cf32>(rng, m);
  }

  static void zero_out(la::MatrixCF& a, bool zero_block) {
    if (!zero_block) return;
    // Zero the bottom-left quadrant: its tiles compress to rank 0, which
    // must flow through the plan as empty segments.
    for (index_t j = 0; j < a.cols() / 2; ++j) {
      for (index_t i = a.rows() / 2; i < a.rows(); ++i) a(i, j) = cf32{};
    }
  }

  static tlr::TlrMatrix<cf32> make_tlr(const la::MatrixCF& a, index_t nb,
                                       double acc) {
    tlr::CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = acc;
    return tlr::compress_tlr(a, cfg);
  }
};

class PlanShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(PlanShapes, PlanMatchesThreePhaseKernel) {
  const auto [m, n, nb, zero_block] = GetParam();
  const PlanSetup s(m, n, nb, 1e-5, zero_block);
  const tlr::MvmPlan plan(s.stacks);
  EXPECT_EQ(plan.rows(), m);
  EXPECT_EQ(plan.cols(), n);

  const auto y_ref = tlr::tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x));
  std::vector<cf32> y(static_cast<std::size_t>(m));
  tlr::PlanWorkspace ws;
  plan.apply(std::span<const cf32>(s.x), std::span<cf32>(y), ws);
  EXPECT_LT(tlrwse::testing::rel_error(y, y_ref), 5e-5);

  const auto a_ref = tlr::tlr_mvm_adjoint(s.stacks, std::span<const cf32>(s.w));
  std::vector<cf32> a(static_cast<std::size_t>(n));
  plan.apply_adjoint(std::span<const cf32>(s.w), std::span<cf32>(a), ws);
  EXPECT_LT(tlrwse::testing::rel_error(a, a_ref), 5e-5);
}

TEST_P(PlanShapes, PlanMultiRhsIsBitwiseEqualToSingle) {
  const auto [m, n, nb, zero_block] = GetParam();
  const PlanSetup s(m, n, nb, 1e-5, zero_block);
  const tlr::MvmPlan plan(s.stacks);
  constexpr index_t kRhs = 5;
  Rng rng(42);
  std::vector<cf32> X, W;
  for (index_t r = 0; r < kRhs; ++r) {
    const auto xr = tlrwse::testing::random_vector<cf32>(rng, n);
    const auto wr = tlrwse::testing::random_vector<cf32>(rng, m);
    X.insert(X.end(), xr.begin(), xr.end());
    W.insert(W.end(), wr.begin(), wr.end());
  }

  tlr::PlanWorkspace ws1, ws2;
  std::vector<cf32> Y(static_cast<std::size_t>(m * kRhs));
  plan.apply_multi(std::span<const cf32>(X), std::span<cf32>(Y), kRhs, ws1);
  std::vector<cf32> A(static_cast<std::size_t>(n * kRhs));
  plan.apply_adjoint_multi(std::span<const cf32>(W), std::span<cf32>(A), kRhs,
                           ws2);

  for (index_t r = 0; r < kRhs; ++r) {
    std::vector<cf32> y1(static_cast<std::size_t>(m));
    plan.apply(std::span<const cf32>(X.data() + r * n,
                                     static_cast<std::size_t>(n)),
               std::span<cf32>(y1), ws1);
    for (index_t i = 0; i < m; ++i) {
      ASSERT_EQ(Y[static_cast<std::size_t>(r * m + i)],
                y1[static_cast<std::size_t>(i)])
          << "forward rhs " << r << " row " << i;
    }
    std::vector<cf32> a1(static_cast<std::size_t>(n));
    plan.apply_adjoint(std::span<const cf32>(W.data() + r * m,
                                             static_cast<std::size_t>(m)),
                       std::span<cf32>(a1), ws1);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(A[static_cast<std::size_t>(r * n + i)],
                a1[static_cast<std::size_t>(i)])
          << "adjoint rhs " << r << " row " << i;
    }
  }
}

TEST_P(PlanShapes, EveryTierAgreesThroughThePlan) {
  // The same plan executed with each reachable kernel table must agree to
  // <= 4 ULP elementwise (bitwise by construction of the tiers).
  const auto [m, n, nb, zero_block] = GetParam();
  const PlanSetup s(m, n, nb, 1e-5, zero_block);
  const auto levels = simd::available_levels();
  const tlr::MvmPlan ref_plan(s.stacks, &simd::table(simd::Level::kScalar));
  tlr::PlanWorkspace ws;
  std::vector<cf32> y_ref(static_cast<std::size_t>(m));
  ref_plan.apply(std::span<const cf32>(s.x), std::span<cf32>(y_ref), ws);
  for (const simd::Level l : levels) {
    const tlr::MvmPlan plan(s.stacks, &simd::table(l));
    std::vector<cf32> y(static_cast<std::size_t>(m));
    plan.apply(std::span<const cf32>(s.x), std::span<cf32>(y), ws);
    for (index_t i = 0; i < m; ++i) {
      const auto& a = y[static_cast<std::size_t>(i)];
      const auto& b = y_ref[static_cast<std::size_t>(i)];
      ASSERT_LE(ulp_diff(a.real(), b.real()), 4) << simd::level_name(l);
      ASSERT_LE(ulp_diff(a.imag(), b.imag()), 4) << simd::level_name(l);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanShapes,
    ::testing::Values(std::make_tuple(60, 44, 12, false),
                      std::make_tuple(64, 64, 16, false),
                      std::make_tuple(37, 53, 10, false),
                      std::make_tuple(48, 48, 12, true),
                      std::make_tuple(96, 70, 24, true)));

TEST(MvmPlan, ShuffleProgramMergesAdjacentTiles) {
  const PlanSetup s(64, 64, 16);
  const tlr::MvmPlan plan(s.stacks);
  const auto& prog = plan.shuffle_program();
  // The program must cover exactly the total rank volume, once.
  index_t covered = 0;
  for (const auto& seg : prog) {
    EXPECT_GT(seg.len, 0);
    covered += seg.len;
  }
  EXPECT_EQ(covered, plan.total_rank());
  // Merging must not produce more segments than tiles.
  const auto& g = s.stacks.grid();
  EXPECT_LE(static_cast<index_t>(prog.size()), g.mt() * g.nt());
  EXPECT_GT(plan.arena_bytes(), 0u);
}

// --------------------------------------------------- MdcOperator batch --

std::unique_ptr<mdc::MdcOperator> make_mdc(bool dense_backend) {
  const index_t nt = 64;
  const index_t ns = 20;
  const index_t nr = 16;
  std::vector<index_t> bins = {3, 7, 12};
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  for (std::size_t q = 0; q < bins.size(); ++q) {
    auto K = tlrwse::testing::oscillatory_matrix<cf32>(
        ns, nr, 5.0 + static_cast<double>(q));
    if (dense_backend) {
      kernels.push_back(std::make_unique<mdc::DenseMvm>(std::move(K)));
    } else {
      tlr::CompressionConfig cfg;
      cfg.nb = 8;
      cfg.acc = 1e-5;
      kernels.push_back(std::make_unique<mdc::TlrMvm>(
          tlr::StackedTlr<cf32>(tlr::compress_tlr(K, cfg)),
          mdc::TlrKernel::kThreePhase));
    }
  }
  return std::make_unique<mdc::MdcOperator>(nt, std::move(bins),
                                            std::move(kernels));
}

class MdcBatch : public ::testing::TestWithParam<bool> {};

TEST_P(MdcBatch, BatchedApplyIsBitwiseEqualToSingles) {
  const auto op = make_mdc(GetParam());
  constexpr index_t kRhs = 3;
  Rng rng(7);
  const auto X = random_floats(
      rng, static_cast<std::size_t>(op->cols() * kRhs));
  const auto W = random_floats(
      rng, static_cast<std::size_t>(op->rows() * kRhs));

  std::vector<float> Y(static_cast<std::size_t>(op->rows() * kRhs));
  op->apply_batch(std::span<const float>(X), std::span<float>(Y), kRhs);
  std::vector<float> Xt(static_cast<std::size_t>(op->cols() * kRhs));
  op->apply_adjoint_batch(std::span<const float>(W), std::span<float>(Xt),
                          kRhs);

  for (index_t r = 0; r < kRhs; ++r) {
    std::vector<float> y1(static_cast<std::size_t>(op->rows()));
    op->apply(std::span<const float>(X.data() + r * op->cols(),
                                     static_cast<std::size_t>(op->cols())),
              std::span<float>(y1));
    for (index_t i = 0; i < op->rows(); ++i) {
      ASSERT_EQ(Y[static_cast<std::size_t>(r * op->rows() + i)],
                y1[static_cast<std::size_t>(i)])
          << "apply rhs " << r << " sample " << i;
    }
    std::vector<float> x1(static_cast<std::size_t>(op->cols()));
    op->apply_adjoint(std::span<const float>(W.data() + r * op->rows(),
                                             static_cast<std::size_t>(
                                                 op->rows())),
                      std::span<float>(x1));
    for (index_t i = 0; i < op->cols(); ++i) {
      ASSERT_EQ(Xt[static_cast<std::size_t>(r * op->cols() + i)],
                x1[static_cast<std::size_t>(i)])
          << "adjoint rhs " << r << " sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, MdcBatch, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& ti) {
                           return ti.param ? std::string("Dense")
                                           : std::string("Tlr");
                         });

}  // namespace
}  // namespace tlrwse
