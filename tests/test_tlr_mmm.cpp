// Tests for the TLR-MMM (multi-shot) extension: equivalence with stacked
// MVMs, adjointness, and the traffic model motivating the paper's Sec. 8.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/tlr_mmm.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {
namespace {

struct MmmSetup {
  TlrMatrix<cf32> tlr_mat;
  StackedTlr<cf32> stacks;
  la::MatrixCF X;

  MmmSetup(index_t m, index_t n, index_t nb, index_t s)
      : tlr_mat(compress(tlrwse::testing::oscillatory_matrix<cf32>(m, n, 10.0),
                         nb)),
        stacks(tlr_mat),
        X(n, s) {
    Rng rng(m + s);
    fill_normal(rng, X.data(), static_cast<std::size_t>(X.size()));
  }
  static TlrMatrix<cf32> compress(const la::MatrixCF& a, index_t nb) {
    CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = 1e-5;
    return compress_tlr(a, cfg);
  }
};

class MmmWidths : public ::testing::TestWithParam<int> {};

TEST_P(MmmWidths, MatchesColumnwiseMvm) {
  const index_t s = GetParam();
  MmmSetup f(60, 44, 11, s);
  la::MatrixCF Y(60, s);
  tlr_mmm_fused(f.stacks, f.X, Y);
  for (index_t c = 0; c < s; ++c) {
    std::vector<cf32> xc(f.X.col(c), f.X.col(c) + 44);
    const auto yc = tlr_mvm_fused(f.stacks, std::span<const cf32>(xc));
    for (index_t r = 0; r < 60; ++r) {
      EXPECT_NEAR(std::abs(Y(r, c) - yc[static_cast<std::size_t>(r)]), 0.0,
                  1e-4)
          << "col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MmmWidths, ::testing::Values(1, 2, 5, 16));

TEST(TlrMmm, AdjointMatchesColumnwise) {
  MmmSetup f(48, 36, 9, 4);
  la::MatrixCF X(48, 4);
  Rng rng(3);
  fill_normal(rng, X.data(), static_cast<std::size_t>(X.size()));
  la::MatrixCF Y(36, 4);
  tlr_mmm_adjoint(f.stacks, X, Y);
  for (index_t c = 0; c < 4; ++c) {
    std::vector<cf32> xc(X.col(c), X.col(c) + 48);
    const auto yc = tlr_mvm_adjoint(f.stacks, std::span<const cf32>(xc));
    for (index_t r = 0; r < 36; ++r) {
      EXPECT_NEAR(std::abs(Y(r, c) - yc[static_cast<std::size_t>(r)]), 0.0,
                  1e-4);
    }
  }
}

TEST(TlrMmm, PanelDotTest) {
  // <A X, Y>_F == <X, A^H Y>_F.
  MmmSetup f(40, 30, 8, 3);
  Rng rng(7);
  la::MatrixCF Ymat(40, 3);
  fill_normal(rng, Ymat.data(), static_cast<std::size_t>(Ymat.size()));
  la::MatrixCF AX(40, 3), AtY(30, 3);
  tlr_mmm_fused(f.stacks, f.X, AX);
  tlr_mmm_adjoint(f.stacks, Ymat, AtY);
  cf64 lhs{}, rhs{};
  for (index_t c = 0; c < 3; ++c) {
    for (index_t r = 0; r < 40; ++r) {
      lhs += std::conj(static_cast<cf64>(AX(r, c))) *
             static_cast<cf64>(Ymat(r, c));
    }
    for (index_t r = 0; r < 30; ++r) {
      rhs += std::conj(static_cast<cf64>(f.X(r, c))) *
             static_cast<cf64>(AtY(r, c));
    }
  }
  EXPECT_LT(std::abs(lhs - rhs), 1e-3 * (std::abs(lhs) + 1.0));
}

TEST(TlrMmm, ShapeValidation) {
  MmmSetup f(20, 16, 8, 2);
  la::MatrixCF bad(19, 2);
  EXPECT_THROW(tlr_mmm_fused(f.stacks, f.X, bad), std::invalid_argument);
  la::MatrixCF badX(15, 2);
  la::MatrixCF Y(20, 2);
  EXPECT_THROW(tlr_mmm_fused(f.stacks, badX, Y), std::invalid_argument);
}

TEST(TlrMmm, TrafficModelFavoursPanels) {
  MmmSetup f(60, 44, 11, 1);
  // MMM reads the bases once for all s right-hand sides: saving grows with
  // s and approaches the base/(y-traffic) limit.
  const auto t1 = tlr_mmm_traffic(f.stacks, 1);
  const auto t8 = tlr_mmm_traffic(f.stacks, 8);
  const auto t64 = tlr_mmm_traffic(f.stacks, 64);
  EXPECT_NEAR(t1.saving(), 1.0, 1e-9);  // single vector: identical
  EXPECT_GT(t8.saving(), 1.0);
  EXPECT_GT(t64.saving(), t8.saving());
  EXPECT_LT(t64.saving(), 1.5);  // bounded: y-panel traffic still scales
}

TEST(TlrMmm, ZeroColumnsOfXGiveZeroColumnsOfY) {
  MmmSetup f(30, 24, 6, 3);
  f.X.fill(cf32{});
  la::MatrixCF Y(30, 3, cf32{1.0f, 1.0f});
  tlr_mmm_fused(f.stacks, f.X, Y);
  for (index_t c = 0; c < 3; ++c) {
    for (index_t r = 0; r < 30; ++r) EXPECT_EQ(Y(r, c), cf32{});
  }
}

}  // namespace
}  // namespace tlrwse::tlr
