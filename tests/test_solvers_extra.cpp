// Tests for the CGLS solver, NMO stack, multi-source MDD driver, and the
// variable per-tile tolerance map.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/mdd/cgls.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/mdd/multi_source.hpp"
#include "tlrwse/mdd/nmo.hpp"

namespace tlrwse::mdd {
namespace {

class DenseOp final : public mdc::LinearOperator {
 public:
  explicit DenseOp(la::MatrixF a) : a_(std::move(a)) {}
  [[nodiscard]] index_t rows() const override { return a_.rows(); }
  [[nodiscard]] index_t cols() const override { return a_.cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    la::gemv(a_, x, y);
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    la::gemv_adjoint(a_, y, x);
  }

 private:
  la::MatrixF a_;
};

la::MatrixF well_conditioned(Rng& rng, index_t m, index_t n) {
  la::MatrixF a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  for (index_t i = 0; i < std::min(m, n); ++i) a(i, i) += 5.0f;
  return a;
}

TEST(Cgls, SolvesSquareSystem) {
  Rng rng(3);
  DenseOp op(well_conditioned(rng, 12, 12));
  std::vector<float> x_true(12);
  for (auto& v : x_true) v = static_cast<float>(rng.normal());
  std::vector<float> b(12);
  op.apply(x_true, std::span<float>(b));
  const auto res = cgls_solve(op, b, {.max_iters = 100, .tol = 1e-10});
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(res.x[i], x_true[i], 5e-3);
  }
}

TEST(Cgls, AgreesWithLsqr) {
  Rng rng(5);
  DenseOp op(well_conditioned(rng, 20, 10));
  std::vector<float> b(20);
  for (auto& v : b) v = static_cast<float>(rng.normal());
  const auto cg = cgls_solve(op, b, {.max_iters = 50, .tol = 1e-12});
  LsqrConfig lc;
  lc.max_iters = 50;
  lc.atol = lc.btol = 1e-12;
  const auto ls = lsqr_solve(op, b, lc);
  for (std::size_t i = 0; i < cg.x.size(); ++i) {
    EXPECT_NEAR(cg.x[i], ls.x[i], 2e-2);
  }
}

TEST(Cgls, ZeroRhs) {
  Rng rng(7);
  DenseOp op(well_conditioned(rng, 6, 6));
  std::vector<float> b(6, 0.0f);
  const auto res = cgls_solve(op, b);
  for (float v : res.x) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Cgls, ResidualDecreases) {
  Rng rng(9);
  DenseOp op(well_conditioned(rng, 16, 16));
  std::vector<float> b(16);
  for (auto& v : b) v = static_cast<float>(rng.normal());
  const auto res = cgls_solve(op, b, {.max_iters = 20, .tol = 0.0});
  EXPECT_LT(res.residual_history.back(), res.residual_history.front());
}

TEST(Nmo, ZeroOffsetIsIdentityInsideMute) {
  std::vector<float> trace(64);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    trace[t] = std::sin(0.3f * static_cast<float>(t));
  }
  NmoConfig cfg;
  const auto out = nmo_correct(std::span<const float>(trace), 0.0, cfg);
  // At zero offset t == t0 everywhere: identity except the final sample
  // (interpolation window).
  for (std::size_t t = 0; t + 1 < trace.size(); ++t) {
    EXPECT_NEAR(out[t], trace[t], 1e-5);
  }
}

TEST(Nmo, FlattensHyperbola) {
  // Synthetic reflection at t0 = 0.4 s observed at t = sqrt(t0^2+(h/v)^2):
  // after NMO the event moves (close) to t0 for every offset.
  NmoConfig cfg;
  cfg.velocity = 2000.0;
  cfg.dt = 0.004;
  const index_t nt = 256;
  const double t0 = 0.4;
  for (double offset : {0.0, 200.0, 400.0}) {
    std::vector<float> trace(static_cast<std::size_t>(nt), 0.0f);
    const double t_evt =
        std::sqrt(t0 * t0 + (offset / cfg.velocity) * (offset / cfg.velocity));
    const auto k = static_cast<std::size_t>(std::lround(t_evt / cfg.dt));
    trace[k] = 1.0f;
    const auto out = nmo_correct(std::span<const float>(trace), offset, cfg);
    // Peak of the corrected trace sits within one sample of t0.
    std::size_t argmax = 0;
    for (std::size_t t = 1; t < out.size(); ++t) {
      if (std::abs(out[t]) > std::abs(out[argmax])) argmax = t;
    }
    EXPECT_NEAR(static_cast<double>(argmax) * cfg.dt, t0, 2.5 * cfg.dt)
        << "offset " << offset;
  }
}

TEST(Nmo, StackImprovesSnr) {
  // n noisy copies of the same event at different offsets: the stack's
  // noise floor drops while the event survives.
  NmoConfig cfg;
  cfg.velocity = 2000.0;
  const index_t nt = 256;
  const double t0 = 0.5;
  Rng rng(11);
  std::vector<std::vector<float>> gather;
  std::vector<double> offsets;
  for (int k = 0; k < 8; ++k) {
    const double offset = 50.0 * k;
    const double t_evt =
        std::sqrt(t0 * t0 + (offset / cfg.velocity) * (offset / cfg.velocity));
    std::vector<float> tr(static_cast<std::size_t>(nt));
    for (auto& v : tr) v = 0.2f * static_cast<float>(rng.normal());
    tr[static_cast<std::size_t>(std::lround(t_evt / cfg.dt))] += 1.0f;
    gather.push_back(std::move(tr));
    offsets.push_back(offset);
  }
  const auto stack = nmo_stack(gather, offsets, cfg);
  const auto peak_idx = static_cast<std::size_t>(std::lround(t0 / cfg.dt));
  // Event at t0 preserved...
  float peak = 0.0f;
  for (std::size_t t = peak_idx - 2; t <= peak_idx + 2; ++t) {
    peak = std::max(peak, std::abs(stack[t]));
  }
  EXPECT_GT(peak, 0.5f);
  // ...and the off-event noise beaten down below a single trace's noise.
  double noise = 0.0;
  int count = 0;
  for (std::size_t t = 20; t + 20 < stack.size(); ++t) {
    if (t > peak_idx + 6 || t + 6 < peak_idx) {
      noise += std::abs(stack[t]);
      ++count;
    }
  }
  EXPECT_LT(noise / count, 0.12);
}

TEST(Nmo, ValidatesConfig) {
  std::vector<float> t(8, 0.0f);
  NmoConfig bad;
  bad.velocity = 0.0;
  EXPECT_THROW(nmo_correct(std::span<const float>(t), 10.0, bad),
               std::invalid_argument);
  EXPECT_THROW(nmo_stack({{1.0f, 2.0f}}, {0.0, 1.0}, NmoConfig{}),
               std::invalid_argument);
}

TEST(MultiSource, SolvesLineAndScores) {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(10, 8, 8, 6);
  cfg.nt = 128;
  cfg.f_min = 4.0;
  cfg.f_max = 40.0;
  const auto data = seismic::build_dataset(cfg);

  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  const auto op = make_mdc_operator(data, KernelBackend::kTlrFused, cc);

  const auto line = virtual_source_line(data, data.num_receivers() / 2, 4);
  ASSERT_EQ(line.size(), 4u);
  LsqrConfig lsqr;
  lsqr.max_iters = 40;
  const auto res = solve_mdd_multi(data, *op, line, lsqr);
  ASSERT_EQ(res.solutions.size(), 4u);
  for (double n : res.nmse_vs_truth) {
    EXPECT_LT(n, 0.6);
  }
  EXPECT_LE(res.mean_nmse, res.worst_nmse);
  EXPECT_GT(res.mean_nmse, 0.0);
}

TEST(MultiSource, LineClampsToReceiverRange) {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(6, 5, 5, 4);
  cfg.nt = 64;
  cfg.f_min = 5.0;
  cfg.f_max = 40.0;
  const auto data = seismic::build_dataset(cfg);
  const auto line = virtual_source_line(data, data.num_receivers() - 2, 10);
  EXPECT_EQ(line.size(), 2u);
  EXPECT_THROW(virtual_source_line(data, data.num_receivers() + 5, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::mdd

namespace tlrwse::tlr {
namespace {

TEST(VariableAccuracy, AccMapControlsPerTileRank) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(64, 64, 14.0);
  CompressionConfig uniform;
  uniform.nb = 16;
  uniform.acc = 1e-6;

  // Loose accuracy away from the diagonal, tight on it (the "user expert"
  // relaxation of Sec. 8).
  CompressionConfig mapped = uniform;
  mapped.acc_map = [](index_t i, index_t j, const TileGrid&) {
    return (i == j) ? 1e-6 : 1e-1;
  };

  const auto tu = compress_tlr(a, uniform);
  const auto tm = compress_tlr(a, mapped);
  EXPECT_LT(tm.compressed_bytes(), tu.compressed_bytes());
  // Diagonal tiles keep the uniform rank; off-diagonal shrink.
  for (index_t d = 0; d < tm.grid().mt(); ++d) {
    EXPECT_EQ(tm.rank(d, d), tu.rank(d, d));
  }
  bool any_smaller = false;
  for (index_t j = 0; j < tm.grid().nt(); ++j) {
    for (index_t i = 0; i < tm.grid().mt(); ++i) {
      if (i != j && tm.rank(i, j) < tu.rank(i, j)) any_smaller = true;
    }
  }
  EXPECT_TRUE(any_smaller);
}

TEST(VariableAccuracy, NegativeMapFallsBackToUniform) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(32, 32, 8.0);
  CompressionConfig uniform;
  uniform.nb = 16;
  uniform.acc = 1e-4;
  CompressionConfig mapped = uniform;
  mapped.acc_map = [](index_t, index_t, const TileGrid&) { return -1.0; };
  const auto tu = compress_tlr(a, uniform);
  const auto tm = compress_tlr(a, mapped);
  for (index_t j = 0; j < tu.grid().nt(); ++j) {
    for (index_t i = 0; i < tu.grid().mt(); ++i) {
      EXPECT_EQ(tm.rank(i, j), tu.rank(i, j));
    }
  }
}

}  // namespace
}  // namespace tlrwse::tlr
