// Tests for the observability layer: sharded counter/gauge/histogram merge
// under concurrent writers, the scoped-span tracer (nesting, thread
// attribution, detail tier, ring overflow), the always-compiled no-op
// shapes, cross-module instrumentation (tlr compression, LSQR), and the
// bitwise parity between the legacy ServiceMetrics snapshot and the
// registry that now backs it.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/prometheus.hpp"
#include "tlrwse/obs/slo_tracker.hpp"
#include "tlrwse/obs/stage_breakdown.hpp"
#include "tlrwse/obs/trace_context.hpp"
#include "tlrwse/obs/trace_merge.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/serve/solve_service.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse {
namespace {

// ------------------------------------------------------------- metrics --

TEST(Counter, ConcurrentWritersMergeExactly) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, AddWithArgumentAccumulates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(Gauge, SetAddValue) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("g");
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
  g.add(8);
  EXPECT_EQ(g.value(), 3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, ConcurrentWritersMergeExactly) {
  // Integer-valued samples: double addition of integers below 2^53 is
  // exact in any order, so count/sum/min/max must all merge exactly
  // across shards regardless of which slot each thread hashed to.
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();

  const auto s = h.snapshot();
  const auto n = static_cast<std::uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(s.count, n);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 * static_cast<double>(n) *
                              static_cast<double>(n + 1));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(n));
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);

  // Percentiles are octave estimates clamped to the observed max and
  // must be monotone in q.
  const double p50 = s.percentile(50.0);
  const double p99 = s.percentile(99.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, s.max);

  h.reset();
  const auto z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_DOUBLE_EQ(z.min, 0.0);
  EXPECT_DOUBLE_EQ(z.max, 0.0);
}

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(-3.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1e300), obs::Histogram::kBuckets - 1);
  // Buckets are monotone in the value and the upper bounds double.
  int prev = 0;
  for (double v = 1e-9; v < 1e3; v *= 4.0) {
    const int b = obs::Histogram::bucket_of(v);
    EXPECT_GE(b, prev);
    prev = b;
    EXPECT_GT(obs::Histogram::bucket_upper(b), v * 0.5);
  }
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper(31 - obs::Histogram::kMinExp),
                   std::ldexp(1.0, 31));
}

TEST(MetricsRegistry, SameNameReturnsSameHandle) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("a"), &reg.counter("a"));
  EXPECT_NE(&reg.counter("a"), &reg.counter("b"));
  EXPECT_EQ(&reg.gauge("a"), &reg.gauge("a"));
  EXPECT_EQ(&reg.histogram("a"), &reg.histogram("a"));
}

TEST(MetricsRegistry, SnapshotJsonHasStableShape) {
  obs::MetricsRegistry reg;
  reg.counter("alpha").add(3);
  reg.gauge("depth").set(-5);
  reg.histogram("lat").record(2.0);
  const std::string js = reg.snapshot().to_json();
  EXPECT_NE(js.find("\"counters\":{\"alpha\":3}"), std::string::npos) << js;
  EXPECT_NE(js.find("\"gauges\":{\"depth\":-5}"), std::string::npos) << js;
  EXPECT_NE(js.find("\"lat\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"count\":1"), std::string::npos) << js;

  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("alpha"), 0u);
  EXPECT_EQ(snap.gauges.at("depth"), 0);
  EXPECT_EQ(snap.histograms.front().snap.count, 0u);
}

// ---------------------------------------------------------- prometheus --

TEST(Prometheus, MetricNameSanitisation) {
  EXPECT_EQ(obs::prometheus_metric_name("serve.queue_wait"),
            "tlrwse_serve_queue_wait");
  EXPECT_EQ(obs::prometheus_metric_name("a..b--c"), "tlrwse_a_b_c");
  EXPECT_EQ(obs::prometheus_metric_name("trailing..."), "tlrwse_trailing");
}

TEST(Prometheus, TextExpositionCoversAllMetricKinds) {
  obs::MetricsRegistry reg;
  reg.counter("prom.hits").add(7);
  reg.gauge("prom.depth").set(-3);
  reg.histogram("prom.lat").record(2.0);
  reg.histogram("prom.lat").record(150.0);
  const std::string text = obs::metrics_to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE tlrwse_prom_hits counter\n"
                      "tlrwse_prom_hits 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tlrwse_prom_depth gauge\n"
                      "tlrwse_prom_depth -3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tlrwse_prom_lat histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tlrwse_prom_lat_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tlrwse_prom_lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("tlrwse_prom_lat_sum 152"), std::string::npos);
  // Cumulative bucket counts must be monotone non-decreasing.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  while ((pos = text.find("tlrwse_prom_lat_bucket{le=\"", pos)) !=
         std::string::npos) {
    const auto val_pos = text.find("} ", pos) + 2;
    const auto value = std::strtoull(text.c_str() + val_pos, nullptr, 10);
    EXPECT_GE(value, prev);
    prev = value;
    ++pos;
  }
}

// -------------------------------------------------------------- tracer --

/// Minimal parser for the tracer's one-event-per-line JSON output; enough
/// to assert on names, phases, thread attribution, and span containment.
struct ParsedEvent {
  std::string name;
  char ph = '?';
  long tid = -1;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds ('X' only)
};

double num_field(const std::string& line, const char* key) {
  const std::string tag = std::string("\"") + key + "\":";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + tag.size(), nullptr);
}

std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    const auto npos = line.find("{\"name\":\"");
    if (npos == std::string::npos) continue;
    ParsedEvent ev;
    const auto nb = npos + 9;
    ev.name = line.substr(nb, line.find('"', nb) - nb);
    const auto ph = line.find("\"ph\":\"");
    if (ph != std::string::npos) ev.ph = line[ph + 6];
    ev.tid = static_cast<long>(num_field(line, "tid"));
    ev.ts = num_field(line, "ts");
    ev.dur = num_field(line, "dur");
    out.push_back(std::move(ev));
  }
  return out;
}

const ParsedEvent* find_event(const std::vector<ParsedEvent>& evs,
                              const char* name) {
  for (const auto& e : evs) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Tracer, SpanNestingAndThreadAttribution) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  tracer.set_thread_name("obs-test-main");
  {
    obs::ScopedSpan outer("obs_test.outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      obs::ScopedSpan inner("obs_test.inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread worker([&] {
    tracer.set_thread_name("obs-test-worker");
    obs::ScopedSpan w("obs_test.worker", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  worker.join();
  tracer.disable();

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("obs-test-worker"), std::string::npos);

  const auto evs = parse_events(json);
  const auto* outer = find_event(evs, "obs_test.outer");
  const auto* inner = find_event(evs, "obs_test.inner");
  const auto* work = find_event(evs, "obs_test.worker");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(outer->ph, 'X');

  // The inner span is contained in the outer one (microsecond rounding
  // can only shrink the slack, never break containment by more than 1e-3).
  EXPECT_GE(inner->ts, outer->ts - 1e-3);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-3);
  EXPECT_LT(inner->dur, outer->dur);

  // The worker's events carry a different tid than the main thread's.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_NE(work->tid, outer->tid);
}

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();  // clears previous buffers
  tracer.disable();
  {
    obs::ScopedSpan s("obs_test.ignored", "test");
  }
  tracer.counter("obs_test.ignored_counter", 1.0);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_count(), 0u);
}

TEST(Tracer, CounterEventsCarryValue) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  tracer.counter("obs_test.series", 2.5);
  tracer.disable();
  const auto evs = parse_events(tracer.to_json());
  const auto* c = find_event(evs, "obs_test.series");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->ph, 'C');
  EXPECT_NE(tracer.to_json().find("\"value\":2.5"), std::string::npos);
}

TEST(Tracer, RingOverflowKeepsTailAndCountsDropped) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(/*capacity=*/8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.complete("obs_test.ring", "test", i, 1);
  }
  tracer.disable();
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_count(), 92u);
  // The ring holds the newest events, not the oldest.
  const auto evs = parse_events(tracer.to_json());
  for (const auto& e : evs) {
    if (e.name == "obs_test.ring") {
      EXPECT_GE(e.ts * 1e3, 92.0 - 1e-6);
    }
  }
}

TEST(Tracer, RingOverflowSurfacesDroppedSpansCounter) {
  // Ring-buffer truncation must be visible in the process registry, not
  // just the tracer's own dropped_count(): dashboards scrape the registry.
  const std::uint64_t before =
      obs::MetricsRegistry::instance().snapshot().counters.count(
          "trace.dropped_spans")
          ? obs::MetricsRegistry::instance()
                .snapshot()
                .counters.at("trace.dropped_spans")
          : 0;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.complete("obs_test.drop", "test", i, 1);
  }
  tracer.disable();
  EXPECT_EQ(tracer.dropped_count(), 16u);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(snap.counters.count("trace.dropped_spans"));
  EXPECT_EQ(snap.counters.at("trace.dropped_spans") - before, 16u);
}

TEST(Tracer, DetailTierIsGated) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(1024, /*detail=*/false);
  EXPECT_TRUE(obs::Tracer::enabled());
  EXPECT_FALSE(obs::Tracer::detail_enabled());
  tracer.enable(1024, /*detail=*/true);
  EXPECT_TRUE(obs::Tracer::detail_enabled());
  tracer.disable();
  EXPECT_FALSE(obs::Tracer::enabled());
  EXPECT_FALSE(obs::Tracer::detail_enabled());
}

#ifdef TLRWSE_TRACING_ENABLED
TEST(Tracer, DetailMacroRecordsOnlyWithDetailEnabled) {
  obs::Tracer& tracer = obs::Tracer::instance();

  tracer.enable(1024, /*detail=*/false);
  {
    TLRWSE_TRACE_SPAN("obs_test.coarse", "test");
    TLRWSE_TRACE_SPAN_DETAIL("obs_test.fine", "test");
  }
  tracer.disable();
  auto evs = parse_events(tracer.to_json());
  EXPECT_NE(find_event(evs, "obs_test.coarse"), nullptr);
  EXPECT_EQ(find_event(evs, "obs_test.fine"), nullptr);

  tracer.enable(1024, /*detail=*/true);
  {
    TLRWSE_TRACE_SPAN("obs_test.coarse", "test");
    TLRWSE_TRACE_SPAN_DETAIL("obs_test.fine", "test");
  }
  tracer.disable();
  evs = parse_events(tracer.to_json());
  EXPECT_NE(find_event(evs, "obs_test.coarse"), nullptr);
  EXPECT_NE(find_event(evs, "obs_test.fine"), nullptr);
}
#endif  // TLRWSE_TRACING_ENABLED

TEST(TracerNoop, NoopShapesCompileAndLinkInEveryBuild) {
  // These exist in TLRWSE_TRACING=OFF builds as the macro expansion
  // targets; the test pins down that they stay compilable everywhere.
  obs::noop::Span span("obs_test.noop", "test");
  obs::noop::Span defaulted("obs_test.noop");
  obs::noop::counter("obs_test.noop_counter", 1.0);
  (void)span;
  (void)defaulted;
}

// ------------------------------------------- cross-module integration --

TEST(ObsIntegration, CompressTlrRecordsGlobalMetrics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  const std::uint64_t tiles_before = reg.counter("tlr.tiles_compressed").value();
  const std::uint64_t ranks_before = reg.histogram("tlr.tile_rank").snapshot().count;
  const std::uint64_t times_before =
      reg.histogram("tlr.tile_compress_s.svd").snapshot().count;

  la::MatrixCF A(32, 24);
  for (index_t j = 0; j < A.cols(); ++j) {
    for (index_t i = 0; i < A.rows(); ++i) {
      const auto u = static_cast<float>(i) / 32.0f;
      const auto v = static_cast<float>(j) / 24.0f;
      A(i, j) = cf32{std::cos(6.0f * u * v), std::sin(6.0f * u * v)};
    }
  }
  tlr::CompressionConfig cc;
  cc.nb = 8;  // 4 x 3 tile grid
  cc.acc = 1e-3;
  const auto M = tlr::compress_tlr(A, cc);
  const auto expected =
      static_cast<std::uint64_t>(M.grid().num_tiles());
  EXPECT_EQ(expected, 12u);

  EXPECT_EQ(reg.counter("tlr.tiles_compressed").value() - tiles_before,
            expected);
  EXPECT_EQ(reg.histogram("tlr.tile_rank").snapshot().count - ranks_before,
            expected);
  EXPECT_EQ(reg.histogram("tlr.tile_compress_s.svd").snapshot().count -
                times_before,
            expected);
}

/// Diagonal operator A = diag(1..n): exact adjoint, trivially verifiable,
/// and enough to drive the instrumented LSQR loop.
class DiagOperator final : public mdc::LinearOperator {
 public:
  explicit DiagOperator(index_t n) : n_(n) {}
  [[nodiscard]] index_t rows() const override { return n_; }
  [[nodiscard]] index_t cols() const override { return n_; }
  void apply(std::span<const float> x, std::span<float> y) const override {
    for (index_t i = 0; i < n_; ++i) {
      y[static_cast<std::size_t>(i)] =
          static_cast<float>(i + 1) * x[static_cast<std::size_t>(i)];
    }
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    apply(y, x);  // real diagonal: self-adjoint
  }

 private:
  index_t n_;
};

TEST(ObsIntegration, LsqrRecordsIterationsAndTraceSpans) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  const std::uint64_t solves_before = reg.counter("mdd.lsqr.solves").value();
  const std::uint64_t iters_before = reg.counter("mdd.lsqr.iterations").value();

  const DiagOperator A(16);
  std::vector<float> b(16);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0f;
  mdd::LsqrConfig cfg;
  cfg.max_iters = 5;
  cfg.atol = 0.0;
  cfg.btol = 0.0;

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  const auto res = mdd::lsqr_solve(A, b, cfg);
  tracer.disable();

  ASSERT_GE(res.iterations, 1);
  EXPECT_EQ(reg.counter("mdd.lsqr.solves").value() - solves_before, 1u);
  EXPECT_EQ(reg.counter("mdd.lsqr.iterations").value() - iters_before,
            static_cast<std::uint64_t>(res.iterations));

#ifdef TLRWSE_TRACING_ENABLED
  const auto evs = parse_events(tracer.to_json());
  ASSERT_NE(find_event(evs, "mdd.lsqr"), nullptr);
  ASSERT_NE(find_event(evs, "mdd.lsqr.iter"), nullptr);
  const auto* resid = find_event(evs, "mdd.lsqr.residual");
  ASSERT_NE(resid, nullptr);
  EXPECT_EQ(resid->ph, 'C');
  // One iteration span and one residual sample per LSQR iteration.
  int iter_spans = 0;
  int resid_samples = 0;
  for (const auto& e : evs) {
    if (e.name == "mdd.lsqr.iter") ++iter_spans;
    if (e.name == "mdd.lsqr.residual") ++resid_samples;
  }
  EXPECT_EQ(iter_spans, res.iterations);
  EXPECT_EQ(resid_samples, res.iterations);
#endif  // TLRWSE_TRACING_ENABLED
}

// ------------------------------------------------------- serve parity --

namespace fx {

struct TempFile {
  std::string path;
  // The pid keeps concurrent ctest shards of this binary (each TEST runs
  // as its own process) from clobbering each other's fixture files.
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() /
              (std::to_string(::getpid()) + "." + name))
                 .string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

const std::string& archive_path() {
  static const TempFile file("tlrwse_obs_test.tlra");
  static const bool built = [] {
    tlr::CompressionConfig cc;
    cc.nb = 12;
    cc.acc = 1e-4;
    io::save_archive(file.path, io::build_archive(dataset(), cc));
    return true;
  }();
  (void)built;
  return file.path;
}

serve::SolveRequest make_request(serve::RequestKind kind, index_t vsrc,
                                 int iters) {
  serve::SolveRequest req;
  req.op = serve::OperatorKey{archive_path(), 12, 1e-4};
  req.kind = kind;
  req.vsrc = vsrc;
  req.rhs = mdd::virtual_source_rhs(dataset(), vsrc);
  req.lsqr.max_iters = iters;
  return req;
}

}  // namespace fx

TEST(ObsServeParity, ServiceMetricsAgreesBitwiseWithRegistrySnapshot) {
  // The legacy ServiceMetrics snapshot must read the exact same counters
  // the per-service registry holds: at any quiescent point the two views
  // are bitwise identical, so dashboards can migrate name-for-name.
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.max_batch = 4;
  serve::SolveService service(cfg);

  constexpr int kRequests = 6;
  std::vector<std::future<serve::SolveResponse>> futures;
  futures.reserve(kRequests);
  for (int j = 0; j < kRequests; ++j) {
    const auto kind =
        j % 2 == 0 ? serve::RequestKind::kAdjoint : serve::RequestKind::kLsqr;
    futures.push_back(service.submit(fx::make_request(kind, j % 3, 4)));
  }
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_EQ(r.status, serve::SolveStatus::kOk) << r.error;
  }
  service.shutdown();  // quiescent: no in-flight writers on either view

  const auto m = service.metrics();
  const auto snap = service.registry().snapshot();

  EXPECT_EQ(m.counters.submitted, snap.counters.at("serve.submitted"));
  EXPECT_EQ(m.counters.admitted, snap.counters.at("serve.admitted"));
  EXPECT_EQ(m.counters.completed, snap.counters.at("serve.completed"));
  EXPECT_EQ(m.counters.rejected_queue_full,
            snap.counters.at("serve.rejected_queue_full"));
  EXPECT_EQ(m.counters.rejected_deadline,
            snap.counters.at("serve.rejected_deadline"));
  EXPECT_EQ(m.counters.rejected_archive_missing,
            snap.counters.at("serve.rejected_archive_missing"));
  EXPECT_EQ(m.counters.failed, snap.counters.at("serve.failed"));
  EXPECT_EQ(m.counters.batches, snap.counters.at("serve.batches"));
  EXPECT_EQ(m.counters.coalesced, snap.counters.at("serve.coalesced"));
  EXPECT_EQ(static_cast<std::int64_t>(m.counters.queue_depth),
            snap.gauges.at("serve.queue_depth"));
  EXPECT_EQ(static_cast<std::int64_t>(m.counters.queue_peak_depth),
            snap.gauges.at("serve.queue_peak_depth"));

  EXPECT_EQ(m.counters.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(m.counters.completed, static_cast<std::uint64_t>(kRequests));

  // One latency/queue-wait/solve histogram sample per completed request.
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.latency_s" || h.name == "serve.queue_wait_s" ||
        h.name == "serve.solve_s") {
      EXPECT_EQ(h.snap.count, m.counters.completed) << h.name;
      EXPECT_GE(h.snap.max, 0.0) << h.name;
    }
  }
}

// ----------------------------------------------------------------- slo --

TEST(SloTracker, WindowCountsBreachesAndBurnRate) {
  obs::SloConfig cfg;
  cfg.latency_objective_s = 0.1;
  cfg.availability_objective = 0.99;  // 1% error budget
  cfg.window_s = 60.0;
  cfg.slots = 6;
  obs::SloTracker slo(cfg);

  // 100 requests at t=1: 90 fast+ok, 5 slow (latency breach), 5 errors.
  for (int i = 0; i < 90; ++i) slo.record_at(1.0, 0.01, true);
  for (int i = 0; i < 5; ++i) slo.record_at(1.0, 0.5, true);
  for (int i = 0; i < 5; ++i) slo.record_at(1.0, 0.01, false);

  const auto w = slo.window_at(2.0);
  EXPECT_EQ(w.count, 100u);
  EXPECT_EQ(w.breaches, 5u);
  EXPECT_EQ(w.errors, 5u);
  EXPECT_DOUBLE_EQ(w.max_s, 0.5);
  // 10 bad of 100 against a 1% budget: burning 10x faster than it refills.
  EXPECT_NEAR(w.burn_rate, 10.0, 1e-9);
  // Octave buckets: percentiles land in the right decade, not exactly.
  EXPECT_GT(w.p50_s, 0.0);
  EXPECT_LT(w.p50_s, 0.1);
  EXPECT_GE(w.p99_s, 0.1);
}

TEST(SloTracker, OldSlotsRotateOutOfTheWindow) {
  obs::SloConfig cfg;
  cfg.window_s = 60.0;
  cfg.slots = 6;  // 10s per slot
  obs::SloTracker slo(cfg);

  slo.record_at(5.0, 0.01, true);
  EXPECT_EQ(slo.window_at(6.0).count, 1u);
  // Still inside the window...
  EXPECT_EQ(slo.window_at(50.0).count, 1u);
  // ...and gone once the window has moved past its slot.
  EXPECT_EQ(slo.window_at(80.0).count, 0u);
  EXPECT_DOUBLE_EQ(slo.window_at(80.0).burn_rate, 0.0);

  // A lap of the ring (same slot index, later epoch) resets the slot
  // rather than mixing epochs.
  slo.record_at(5.0 + cfg.window_s, 0.02, true);
  const auto w = slo.window_at(6.0 + cfg.window_s);
  EXPECT_EQ(w.count, 1u);
  EXPECT_DOUBLE_EQ(w.max_s, 0.02);
}

TEST(SloTracker, NoObjectiveMeansNoBreaches) {
  obs::SloTracker slo;  // latency_objective_s = 0
  EXPECT_FALSE(slo.breaches_objective(1e9));
  slo.record_at(1.0, 123.0, true);
  EXPECT_EQ(slo.window_at(2.0).breaches, 0u);
}

TEST(SloTracker, PublishesWindowGauges) {
  obs::SloConfig cfg;
  cfg.latency_objective_s = 0.001;
  obs::SloTracker slo(cfg);
  slo.record(0.5, true);  // breach
  obs::MetricsRegistry reg;
  slo.publish(reg, "svc");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("svc.slo.window_count"), 1);
  EXPECT_EQ(snap.gauges.at("svc.slo.window_breaches"), 1);
  EXPECT_EQ(snap.gauges.at("svc.slo.window_errors"), 0);
  EXPECT_GT(snap.gauges.at("svc.slo.p99_us"), 0);
}

TEST(SloTracker, ExemplarsAreAtomicAndBounded) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tlrwse_slo_ex_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  obs::SloConfig cfg;
  cfg.exemplar_dir = dir.string();
  cfg.max_exemplars = 4;
  obs::SloTracker slo(cfg);

  for (std::uint64_t id = 1; id <= 10; ++id) {
    const std::string path =
        slo.persist_exemplar(id, "{\"request_id\":" + std::to_string(id) + "}");
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(fs::exists(path));
  }

  std::size_t files = 0;
  bool newest_present = false;
  for (const auto& ent : fs::directory_iterator(dir)) {
    const std::string name = ent.path().filename().string();
    // Atomic rename: no half-written temp files survive.
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    ++files;
    if (name == "exemplar_10.json") newest_present = true;
  }
  // Retention keeps the directory bounded and favours the newest.
  EXPECT_LE(files, cfg.max_exemplars);
  EXPECT_TRUE(newest_present);

  // Unset directory: best-effort no-op, never an exception.
  obs::SloTracker unset;
  EXPECT_EQ(unset.persist_exemplar(1, "{}"), "");
  fs::remove_all(dir);
}

// --------------------------------------------------------- trace merge --

TEST(ClockAlignment, OffsetRecoveredFromMinRttSample) {
  // Worker clock = frontend clock + 5000ns. Two samples: a noisy one
  // (asymmetric delay, high RTT residual) and a tight one; the NTP filter
  // must pick the tight sample's offset.
  std::vector<obs::ClockSample> samples;
  // Tight: t0=1000 t1=6100 t2=6200 t3=1400 -> offset ((5100)+(4800))/2=4950
  samples.push_back({1000, 6100, 6200, 1400});
  // Noisy: 3000ns of one-sided delay -> offset estimate way off (8000+).
  samples.push_back({1000, 9100, 9200, 1400 + 6000});
  EXPECT_LT(obs::clock_sample_rtt_ns(samples[0]),
            obs::clock_sample_rtt_ns(samples[1]));
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), 4950);
  EXPECT_EQ(obs::estimate_clock_offset_ns({}), 0);
}

TEST(TraceMerge, AlignsNormalisesAndMarksDrops) {
  // Frontend spans on its own clock; one worker whose clock runs 1ms
  // ahead. After the merge every timestamp is frontend-relative with the
  // earliest span at 0, worker spans clamped into the frontend window.
  obs::MergedTraceInput in;
  in.trace_id = 42;
  in.frontend_spans.push_back(
      {"request", 42, 1, 0, 1'000'000'000ull, 2'000'000ull});
  in.frontend_spans.push_back(
      {"frontend.rpc shard=1", 42, 2, 1, 1'000'100'000ull, 1'500'000ull});

  obs::WorkerTrace w;
  w.name = "worker0";
  w.offset_ns = 1'000'000;  // worker clock minus frontend clock
  w.spans.push_back(
      {"worker.apply", 42, 7, 2, 1'001'200'000ull, 400'000ull});
  w.dropped_spans = 3;
  in.workers.push_back(w);

  const std::string json = obs::merge_trace_json(in);
  EXPECT_NE(json.find("\"traceId\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedSpans\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);  // normalised
  EXPECT_NE(json.find("worker.apply"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"42\""), std::string::npos);
  // Worker span: 1'001'200'000 - offset 1'000'000 - base 1'000'000'000 =
  // 200'000ns = 200us into the request window.
  EXPECT_NE(json.find("\"ts\":200"), std::string::npos);
  // Frontend is pid 0, the worker pid 1.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TraceMerge, ClampsWorkerSpansIntoTheFrontendWindow) {
  obs::MergedTraceInput in;
  in.trace_id = 7;
  in.frontend_spans.push_back({"request", 7, 1, 0, 1'000'000ull, 1'000'000ull});
  obs::WorkerTrace w;
  w.name = "worker0";
  // Bad offset estimate: the aligned span would start before the request.
  w.offset_ns = 5'000'000;
  w.spans.push_back({"worker.apply", 7, 2, 1, 1'000'000ull, 500'000ull});
  in.workers.push_back(w);
  const std::string json = obs::merge_trace_json(in);
  // Clamped to the window start, not negative and not pre-request.
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos);
  EXPECT_NE(json.find("worker.apply"), std::string::npos);
}

TEST(RemoteSpanBuffer, BoundsSpansPerTraceAndCountsDrops) {
  obs::RemoteSpanBuffer buf(/*max_traces=*/2, /*max_spans_per_trace=*/3);
  for (int i = 0; i < 5; ++i) {
    buf.record({"s", 1, buf.next_span_id(), 0, 0, 0});
  }
  auto dump = buf.take(1);
  EXPECT_EQ(dump.spans.size(), 3u);
  EXPECT_EQ(dump.dropped, 2u);
  // take() removed it.
  EXPECT_EQ(buf.take(1).spans.size(), 0u);

  // FIFO eviction across traces: the oldest trace goes first.
  buf.record({"a", 10, 1, 0, 0, 0});
  buf.record({"b", 11, 2, 0, 0, 0});
  buf.record({"c", 12, 3, 0, 0, 0});  // evicts trace 10
  EXPECT_EQ(buf.trace_count(), 2u);
  EXPECT_EQ(buf.take(10).spans.size(), 0u);
  EXPECT_EQ(buf.take(11).spans.size(), 1u);
  EXPECT_EQ(buf.take(12).spans.size(), 1u);

  // trace_id 0 is "no trace" and never recorded.
  buf.record({"z", 0, 1, 0, 0, 0});
  EXPECT_EQ(buf.trace_count(), 0u);
}

// --------------------------------------------------- stage breakdown ----

TEST(StageBreakdown, RecorderFillsAllStageHistograms) {
  obs::MetricsRegistry reg;
  obs::StageRecorder rec(reg, "svc");
  obs::StageBreakdown st;
  st.queue_wait_s = 0.001;
  st.load_s = 0.002;
  st.fft_s = 0.003;
  st.mvm_s = 0.004;
  st.rpc_s = 0.005;
  st.lsqr_s = 0.01;
  st.lsqr_iterations = 4;
  rec.record(st);
  rec.record(st);
  const auto snap = reg.snapshot();
  std::size_t stage_hists = 0;
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("svc.stage.", 0) == 0) {
      ++stage_hists;
      EXPECT_EQ(h.snap.count, 2u) << h.name;
    }
  }
  EXPECT_EQ(stage_hists, 9u);
  EXPECT_NE(st.to_json().find("\"mvm_s\""), std::string::npos);
}

// ------------------------------------------------------ fleet metrics ---

TEST(Prometheus, FleetExportMergesSnapshots) {
  obs::MetricsRegistry a, b;
  a.counter("fleet.applies").add(3);
  b.counter("fleet.applies").add(4);
  b.histogram("fleet.lat_s").record(0.5);
  const std::vector<obs::MetricsRegistry::Snapshot> snaps{a.snapshot(),
                                                          b.snapshot()};
  const std::string text = obs::fleet_to_prometheus_text(snaps);
  // Counters sum across the fleet; histograms merge.
  EXPECT_NE(text.find("fleet_applies 7"), std::string::npos);
  EXPECT_NE(text.find("fleet_lat_s_count 1"), std::string::npos);
}

#ifdef TLRWSE_TRACING_ENABLED
TEST(Tracer, DropsAttributedPerThread) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(/*capacity=*/4);
  tracer.set_thread_name("drops-main");
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.complete("obs_test.per_thread", "test", i, 1);
  }
  std::thread quiet([&] {
    tracer.set_thread_name("drops-quiet");
    tracer.complete("obs_test.quiet", "test", 0, 1);
  });
  quiet.join();
  tracer.disable();

  const auto drops = tracer.dropped_by_thread();
  std::uint64_t main_drops = 0, quiet_drops = 0, listed = 0;
  for (const auto& d : drops) {
    ++listed;
    if (d.name == "drops-main") main_drops = d.dropped;
    if (d.name == "drops-quiet") quiet_drops = d.dropped;
  }
  EXPECT_GE(listed, 2u);
  EXPECT_EQ(main_drops, 16u);  // 20 pushed into a 4-slot ring
  EXPECT_EQ(quiet_drops, 0u);

  obs::MetricsRegistry reg;
  tracer.publish_drop_gauges(reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("trace.dropped_spans.drops-main"), 16);
  EXPECT_EQ(snap.gauges.at("trace.dropped_spans.drops-quiet"), 0);
  EXPECT_GE(snap.gauges.at("trace.dropped_spans.total"), 16);
}
#endif  // TLRWSE_TRACING_ENABLED

}  // namespace
}  // namespace tlrwse
