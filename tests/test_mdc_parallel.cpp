// Concurrency and workspace tests for the parallel MDC frequency loop:
// thread-count invariance of MdcOperator across every kernel backend, the
// adjoint dot-test property at the FrequencyMvm level (including zero-rank
// tiles and ragged tile grids), bitwise reproducibility through pooled
// workspaces, and a counting-allocator proof that the steady-state MVM
// path of an LSQR solve never touches the heap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

// --- Counting allocator -----------------------------------------------------
// Replaces the global scalar/array operator new to count every heap
// allocation made by this binary; the steady-state tests read the counter
// around hot-path calls. delete is left untouched (counting frees is not
// needed and the default implementation stays malloc-compatible).
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}

// GCC's inliner flags free() on new'ed pointers here, but the replacement
// operator new below is malloc-backed, so the pairing is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tlrwse::mdc {
namespace {

constexpr index_t kNt = 64;  // power of two: the in-place FFT path

// Kernel backends under test: dense plus the three TLR variants.
enum class Backend { kDense, kTlr3Phase, kTlrFused, kTlrRealSplit };

std::unique_ptr<FrequencyMvm> make_kernel(Backend backend,
                                          const la::MatrixCF& k, index_t nb) {
  if (backend == Backend::kDense) return std::make_unique<DenseMvm>(k);
  tlr::CompressionConfig cc;
  cc.nb = nb;
  cc.acc = 1e-6;
  tlr::StackedTlr<cf32> stacks(tlr::compress_tlr(k, cc));
  switch (backend) {
    case Backend::kTlr3Phase:
      return std::make_unique<TlrMvm>(std::move(stacks),
                                      TlrKernel::kThreePhase);
    case Backend::kTlrFused:
      return std::make_unique<TlrMvm>(std::move(stacks), TlrKernel::kFused);
    default:
      return std::make_unique<TlrMvm>(std::move(stacks),
                                      TlrKernel::kRealSplit);
  }
}

/// Randomized multi-frequency operator: ragged tile grids (ns, nr not
/// multiples of nb) and a different oscillatory kernel per frequency.
std::unique_ptr<MdcOperator> make_operator(Backend backend, index_t ns = 22,
                                           index_t nr = 17, index_t nb = 6) {
  const std::vector<index_t> bins{3, 5, 7, 9, 11, 14, 17, 20, 23, 26};
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  for (std::size_t q = 0; q < bins.size(); ++q) {
    const auto k = tlrwse::testing::oscillatory_matrix<cf32>(
        ns, nr, 4.0 + 2.5 * static_cast<double>(q));
    kernels.push_back(make_kernel(backend, k, nb));
  }
  return std::make_unique<MdcOperator>(kNt, bins, std::move(kernels));
}

/// Runs y = A x at a forced OpenMP thread count, restoring the old count.
std::vector<float> apply_with_threads(const MdcOperator& op,
                                      std::span<const float> x, int threads) {
  std::vector<float> y(static_cast<std::size_t>(op.rows()));
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(threads);
#endif
  op.apply(x, std::span<float>(y));
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return y;
}

std::vector<float> adjoint_with_threads(const MdcOperator& op,
                                        std::span<const float> y,
                                        int threads) {
  std::vector<float> x(static_cast<std::size_t>(op.cols()));
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(threads);
#endif
  op.apply_adjoint(y, std::span<float>(x));
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return x;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return d;
}

// --- Serial vs parallel agreement -------------------------------------------

class MdcParallel : public ::testing::TestWithParam<Backend> {};

TEST_P(MdcParallel, ApplyAgreesAcrossThreadCounts) {
  const auto op = make_operator(GetParam());
  Rng rng(17);
  const auto x =
      tlrwse::testing::random_vector<float>(rng, op->cols());
  const auto y1 = apply_with_threads(*op, x, 1);
  for (int threads : {2, 4, 7}) {
    const auto yn = apply_with_threads(*op, x, threads);
    EXPECT_LE(max_abs_diff(y1, yn), 1e-6)
        << "forward mismatch at " << threads << " threads";
  }
}

TEST_P(MdcParallel, AdjointAgreesAcrossThreadCounts) {
  const auto op = make_operator(GetParam());
  Rng rng(19);
  const auto y =
      tlrwse::testing::random_vector<float>(rng, op->rows());
  const auto x1 = adjoint_with_threads(*op, y, 1);
  for (int threads : {2, 4, 7}) {
    const auto xn = adjoint_with_threads(*op, y, threads);
    EXPECT_LE(max_abs_diff(x1, xn), 1e-6)
        << "adjoint mismatch at " << threads << " threads";
  }
}

TEST_P(MdcParallel, ParallelAdjointStillPassesDotTest) {
  const auto op = make_operator(GetParam());
  Rng rng(23);
  const auto x = tlrwse::testing::random_vector<float>(rng, op->cols());
  const auto y = tlrwse::testing::random_vector<float>(rng, op->rows());
  const auto ax = apply_with_threads(*op, x, 4);
  const auto aty = adjoint_with_threads(*op, y, 4);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-4 * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Backends, MdcParallel,
                         ::testing::Values(Backend::kDense,
                                           Backend::kTlr3Phase,
                                           Backend::kTlrFused,
                                           Backend::kTlrRealSplit),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kDense: return "Dense";
                             case Backend::kTlr3Phase: return "ThreePhase";
                             case Backend::kTlrFused: return "Fused";
                             default: return "RealSplit";
                           }
                         });

TEST(MdcParallel, RejectsDuplicateFrequencyBins) {
  // Distinct bins are what make the parallel scatter race-free; the
  // constructor must enforce them.
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  const auto k = tlrwse::testing::oscillatory_matrix<cf32>(6, 5);
  kernels.push_back(std::make_unique<DenseMvm>(k));
  kernels.push_back(std::make_unique<DenseMvm>(k));
  EXPECT_THROW(MdcOperator(kNt, {7, 7}, std::move(kernels)),
               std::invalid_argument);
}

// --- Adjoint consistency at the FrequencyMvm level --------------------------

/// Handcrafted TLR matrix with explicit per-tile ranks, including rank-0
/// tiles, on a grid whose last tile row AND column are ragged.
tlr::TlrMatrix<cf32> zero_rank_ragged_tlr(index_t m = 31, index_t n = 23,
                                          index_t nb = 8) {
  const tlr::TileGrid grid(m, n, nb);
  Rng rng(101);
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(grid.num_tiles()));
  for (index_t j = 0; j < grid.nt(); ++j) {
    for (index_t i = 0; i < grid.mt(); ++i) {
      const index_t mr = grid.tile_rows(i);
      const index_t nc = grid.tile_cols(j);
      // Every third anti-diagonal tile is exactly rank 0.
      index_t k = ((i + j) % 3 == 0)
                      ? 0
                      : std::min({mr, nc, 1 + (i * 2 + j) % 4});
      la::LowRankFactors<cf32> f;
      f.U = tlrwse::testing::random_matrix<cf32>(rng, mr, k);
      f.Vh = tlrwse::testing::random_matrix<cf32>(rng, k, nc);
      tiles[static_cast<std::size_t>(grid.tile_index(i, j))] = std::move(f);
    }
  }
  return tlr::TlrMatrix<cf32>(grid, std::move(tiles));
}

void expect_dot_property(const FrequencyMvm& mvm) {
  Rng rng(7);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, mvm.cols());
  const auto y = tlrwse::testing::random_vector<cf32>(rng, mvm.rows());
  std::vector<cf32> ax(static_cast<std::size_t>(mvm.rows()));
  std::vector<cf32> aty(static_cast<std::size_t>(mvm.cols()));
  mvm.apply(std::span<const cf32>(x), std::span<cf32>(ax));
  mvm.apply_adjoint(std::span<const cf32>(y), std::span<cf32>(aty));
  // <A x, y> == <x, A^H y> in the conj-first inner product.
  std::complex<double> lhs{}, rhs{};
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += std::conj(std::complex<double>(ax[i])) * std::complex<double>(y[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += std::conj(std::complex<double>(x[i])) * std::complex<double>(aty[i]);
  }
  EXPECT_LE(std::abs(lhs - rhs), 1e-3 * (std::abs(lhs) + 1.0));
}

TEST(FrequencyMvmAdjoint, DenseSatisfiesDotProperty) {
  DenseMvm mvm(tlrwse::testing::oscillatory_matrix<cf32>(33, 26, 7.0));
  expect_dot_property(mvm);
}

class TlrAdjointProperty : public ::testing::TestWithParam<TlrKernel> {};

TEST_P(TlrAdjointProperty, OscillatoryRaggedGrid) {
  // 33 x 26 with nb = 7: ragged last tile row and column.
  const auto k = tlrwse::testing::oscillatory_matrix<cf32>(33, 26, 7.0);
  tlr::CompressionConfig cc;
  cc.nb = 7;
  cc.acc = 1e-6;
  TlrMvm mvm(tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)), GetParam());
  expect_dot_property(mvm);
}

TEST_P(TlrAdjointProperty, ZeroRankTilesRaggedGrid) {
  TlrMvm mvm(tlr::StackedTlr<cf32>(zero_rank_ragged_tlr()), GetParam());
  expect_dot_property(mvm);
}

TEST_P(TlrAdjointProperty, ZeroRankForwardMatchesReconstruction) {
  const auto t = zero_rank_ragged_tlr();
  const auto rec = t.reconstruct();
  TlrMvm mvm(tlr::StackedTlr<cf32>(t), GetParam());
  Rng rng(5);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, t.cols());
  std::vector<cf32> y(static_cast<std::size_t>(t.rows()));
  mvm.apply(std::span<const cf32>(x), std::span<cf32>(y));
  std::vector<cf32> ref(y.size());
  la::gemv(rec, std::span<const cf32>(x), std::span<cf32>(ref));
  EXPECT_LT(tlrwse::testing::rel_error(y, ref), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Kernels, TlrAdjointProperty,
                         ::testing::Values(TlrKernel::kThreePhase,
                                           TlrKernel::kFused,
                                           TlrKernel::kRealSplit),
                         [](const auto& info) {
                           switch (info.param) {
                             case TlrKernel::kThreePhase: return "ThreePhase";
                             case TlrKernel::kFused: return "Fused";
                             default: return "RealSplit";
                           }
                         });

// --- Workspace reuse --------------------------------------------------------

class WorkspaceReuse : public ::testing::TestWithParam<TlrKernel> {};

TEST_P(WorkspaceReuse, PooledWorkspaceIsBitwiseIdenticalToFresh) {
  const auto k = tlrwse::testing::oscillatory_matrix<cf32>(41, 29, 10.0);
  tlr::CompressionConfig cc;
  cc.nb = 9;
  cc.acc = 1e-6;
  TlrMvm mvm(tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)), GetParam());
  Rng rng(31);
  const auto x1 = tlrwse::testing::random_vector<cf32>(rng, 29);
  const auto x2 = tlrwse::testing::random_vector<cf32>(rng, 29);
  const auto ya = tlrwse::testing::random_vector<cf32>(rng, 41);

  // Reference: every call through its own fresh workspace.
  std::vector<cf32> ref1(41), ref2(41), ref_adj(29);
  {
    FrequencyWorkspace fresh1, fresh2, fresh3;
    mvm.apply(std::span<const cf32>(x1), std::span<cf32>(ref1), fresh1);
    mvm.apply(std::span<const cf32>(x2), std::span<cf32>(ref2), fresh2);
    mvm.apply_adjoint(std::span<const cf32>(ya), std::span<cf32>(ref_adj),
                      fresh3);
  }

  // One shared workspace, interleaved calls (stale yv/yu state from a
  // previous apply must never leak into the next result).
  FrequencyWorkspace ws;
  std::vector<cf32> y(41), adj(29);
  for (int rep = 0; rep < 3; ++rep) {
    mvm.apply(std::span<const cf32>(x1), std::span<cf32>(y), ws);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], ref1[i]) << "rep " << rep << " elem " << i;
    }
    mvm.apply_adjoint(std::span<const cf32>(ya), std::span<cf32>(adj), ws);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      ASSERT_EQ(adj[i], ref_adj[i]) << "rep " << rep << " elem " << i;
    }
    mvm.apply(std::span<const cf32>(x2), std::span<cf32>(y), ws);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], ref2[i]) << "rep " << rep << " elem " << i;
    }
  }
}

TEST_P(WorkspaceReuse, LegacySignatureRoutesThroughPool) {
  const auto k = tlrwse::testing::oscillatory_matrix<cf32>(24, 18, 6.0);
  tlr::CompressionConfig cc;
  cc.nb = 6;
  cc.acc = 1e-6;
  TlrMvm mvm(tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)), GetParam());
  Rng rng(37);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 18);
  std::vector<cf32> y1(24), y2(24);
  mvm.apply(std::span<const cf32>(x), std::span<cf32>(y1));
  EXPECT_GE(mvm.pooled_workspaces(), 1u);
  mvm.apply(std::span<const cf32>(x), std::span<cf32>(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
  // Adjoint through the pool as well (the old code allocated here).
  std::vector<cf32> a1(18), a2(18);
  const auto ya = tlrwse::testing::random_vector<cf32>(rng, 24);
  mvm.apply_adjoint(std::span<const cf32>(ya), std::span<cf32>(a1));
  mvm.apply_adjoint(std::span<const cf32>(ya), std::span<cf32>(a2));
  for (std::size_t i = 0; i < a1.size(); ++i) EXPECT_EQ(a1[i], a2[i]);
}

INSTANTIATE_TEST_SUITE_P(Kernels, WorkspaceReuse,
                         ::testing::Values(TlrKernel::kThreePhase,
                                           TlrKernel::kFused,
                                           TlrKernel::kRealSplit),
                         [](const auto& info) {
                           switch (info.param) {
                             case TlrKernel::kThreePhase: return "ThreePhase";
                             case TlrKernel::kFused: return "Fused";
                             default: return "RealSplit";
                           }
                         });

// --- Zero steady-state allocations ------------------------------------------

TEST(MdcAllocation, SteadyStateAppliesAreAllocationFree) {
  const auto op = make_operator(Backend::kTlrFused);
  Rng rng(41);
  const auto x = tlrwse::testing::random_vector<float>(rng, op->cols());
  const auto yb = tlrwse::testing::random_vector<float>(rng, op->rows());
  std::vector<float> y(static_cast<std::size_t>(op->rows()));
  std::vector<float> xt(static_cast<std::size_t>(op->cols()));

  // Warm-up: fills every pool (page scratch, per-thread frequency scratch,
  // FFT buffers) and lets the OpenMP runtime build its thread team.
  for (int i = 0; i < 3; ++i) {
    op->apply(std::span<const float>(x), std::span<float>(y));
    op->apply_adjoint(std::span<const float>(yb), std::span<float>(xt));
  }

  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 5; ++i) {
    op->apply(std::span<const float>(x), std::span<float>(y));
    op->apply_adjoint(std::span<const float>(yb), std::span<float>(xt));
  }
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state apply/apply_adjoint allocated " << (after - before)
      << " times";
}

/// LinearOperator wrapper recording the number of heap allocations inside
/// each delegated apply/apply_adjoint call.
class AllocCountingOperator final : public mdc::LinearOperator {
 public:
  explicit AllocCountingOperator(const mdc::LinearOperator& inner)
      : inner_(inner) {
    calls_.reserve(256);
  }
  [[nodiscard]] index_t rows() const override { return inner_.rows(); }
  [[nodiscard]] index_t cols() const override { return inner_.cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    const std::size_t before = g_alloc_count.load();
    inner_.apply(x, y);
    calls_.push_back(g_alloc_count.load() - before);
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    const std::size_t before = g_alloc_count.load();
    inner_.apply_adjoint(y, x);
    calls_.push_back(g_alloc_count.load() - before);
  }
  [[nodiscard]] const std::vector<std::size_t>& calls() const {
    return calls_;
  }

 private:
  const mdc::LinearOperator& inner_;
  mutable std::vector<std::size_t> calls_;
};

TEST(MdcAllocation, LsqrMvmPathIsAllocationFreeAfterWarmup) {
  const auto op = make_operator(Backend::kTlr3Phase);
  AllocCountingOperator counted(*op);
  Rng rng(43);
  const auto b = tlrwse::testing::random_vector<float>(rng, op->rows());

  mdd::LsqrConfig cfg;
  cfg.max_iters = 8;
  const auto res = mdd::lsqr_solve(counted, std::span<const float>(b), cfg);
  EXPECT_EQ(res.iterations, 8);

  // The very first apply and apply_adjoint warm the pools; every MVM after
  // that must be allocation-free.
  const auto& calls = counted.calls();
  ASSERT_GE(calls.size(), 4u);
  for (std::size_t i = 2; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i], 0u) << "MVM call " << i << " allocated";
  }
}

}  // namespace
}  // namespace tlrwse::mdc
