// Tests for kernel archives: build, round trip, and operator equivalence
// (an operator from a reloaded archive gives the same MDD solution).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace tlrwse::io {
namespace {

struct TempFile {
  std::string path;
  // The pid keeps concurrent ctest shards of this binary (each TEST runs
  // as its own process) from clobbering each other's fixture files.
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() /
              (std::to_string(::getpid()) + "." + name))
                 .string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

tlr::CompressionConfig cc() {
  tlr::CompressionConfig c;
  c.nb = 12;
  c.acc = 1e-4;
  return c;
}

TEST(Archive, BuildHasAllKernelsAndMetadata) {
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  EXPECT_EQ(archive.num_freqs(), data.num_freqs());
  EXPECT_EQ(archive.nt, data.config.nt);
  EXPECT_EQ(archive.freq_bins, data.freq_bins);
  EXPECT_GT(archive.compressed_bytes(), 0.0);
  for (const auto& k : archive.kernels) {
    EXPECT_EQ(k.rows(), data.num_sources());
    EXPECT_EQ(k.cols(), data.num_receivers());
  }
}

TEST(Archive, RoundTripPreservesEverything) {
  TempFile f("tlrwse_archive.bin");
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);

  EXPECT_EQ(back.nt, archive.nt);
  EXPECT_DOUBLE_EQ(back.dt, archive.dt);
  EXPECT_EQ(back.freq_bins, archive.freq_bins);
  ASSERT_EQ(back.num_freqs(), archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    const auto& a = archive.kernels[static_cast<std::size_t>(q)];
    const auto& b = back.kernels[static_cast<std::size_t>(q)];
    ASSERT_EQ(a.grid().nb(), b.grid().nb());
    for (index_t j = 0; j < a.grid().nt(); ++j) {
      for (index_t i = 0; i < a.grid().mt(); ++i) {
        EXPECT_TRUE(a.tile(i, j).U == b.tile(i, j).U);
        EXPECT_TRUE(a.tile(i, j).Vh == b.tile(i, j).Vh);
      }
    }
  }
}

TEST(Archive, ReloadedOperatorSolvesIdentically) {
  TempFile f("tlrwse_archive2.bin");
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);

  const auto op_fresh = make_operator(archive);
  const auto op_back = make_operator(back);

  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 20;
  const auto x1 = mdd::solve_mdd(*op_fresh, rhs, lsqr);
  const auto x2 = mdd::solve_mdd(*op_back, rhs, lsqr);
  ASSERT_EQ(x1.x.size(), x2.x.size());
  for (std::size_t i = 0; i < x1.x.size(); ++i) {
    EXPECT_EQ(x1.x[i], x2.x[i]);  // bit-identical: same kernels, same solver
  }
}

TEST(Archive, MatchesDirectTlrOperator) {
  // The archive path (dA folded at build) equals make_mdc_operator's TLR
  // backend with the same compression settings.
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  const auto op_arch = make_operator(archive);
  const auto op_direct =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc());
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 10;
  const auto a = mdd::solve_mdd(*op_arch, rhs, lsqr);
  const auto b = mdd::solve_mdd(*op_direct, rhs, lsqr);
  EXPECT_LT(mdd::nmse(a.x, b.x), 1e-8);
}

tlr::SharedBasisConfig sc() {
  tlr::SharedBasisConfig c;
  c.nb = 12;
  c.acc = 1e-4;
  return c;
}

TEST(SharedArchive, BuildSplitsBandsAndSaves) {
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 4);
  EXPECT_EQ(archive.num_freqs(), data.num_freqs());
  EXPECT_EQ(archive.nt, data.config.nt);
  EXPECT_EQ(archive.freq_bins, data.freq_bins);
  EXPECT_GT(archive.shared_bytes(), 0.0);
  index_t covered = 0;
  for (const auto& b : archive.bands) {
    EXPECT_LE(b->num_freqs(), 4);
    covered += b->num_freqs();
  }
  EXPECT_EQ(covered, archive.num_freqs());
  // band_width 0 = one band across the whole survey.
  const auto one = build_shared_archive(data, sc(), 0);
  EXPECT_EQ(one.num_bands(), 1);
  EXPECT_EQ(one.bands.front()->num_freqs(), data.num_freqs());
}

TEST(SharedArchive, RoundTripIsBitwise) {
  TempFile f("tlrwse_shared_archive.bin");
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 3);
  save_shared_archive(f.path, archive);
  const auto back = load_shared_archive(f.path);

  EXPECT_EQ(back.nt, archive.nt);
  EXPECT_DOUBLE_EQ(back.dt, archive.dt);
  EXPECT_EQ(back.freq_bins, archive.freq_bins);
  EXPECT_EQ(back.freqs_hz, archive.freqs_hz);
  ASSERT_EQ(back.num_bands(), archive.num_bands());
  EXPECT_DOUBLE_EQ(back.shared_bytes(), archive.shared_bytes());
  for (index_t b = 0; b < archive.num_bands(); ++b) {
    const auto& x = *archive.bands[static_cast<std::size_t>(b)];
    const auto& y = *back.bands[static_cast<std::size_t>(b)];
    ASSERT_EQ(x.num_freqs(), y.num_freqs());
    ASSERT_EQ(x.grid().nb(), y.grid().nb());
    EXPECT_DOUBLE_EQ(x.acc(), y.acc());
    for (index_t j = 0; j < x.grid().nt(); ++j) {
      for (index_t i = 0; i < x.grid().mt(); ++i) {
        EXPECT_TRUE(x.basis_u(i, j) == y.basis_u(i, j));
        EXPECT_TRUE(x.basis_vh(i, j) == y.basis_vh(i, j));
        for (index_t q = 0; q < x.num_freqs(); ++q) {
          const auto& cx = x.core(q, i, j);
          const auto& cy = y.core(q, i, j);
          ASSERT_EQ(cx.factored, cy.factored);
          EXPECT_EQ(cx.rank, cy.rank);
          if (cx.factored) {
            EXPECT_TRUE(cx.lr.U == cy.lr.U);
            EXPECT_TRUE(cx.lr.Vh == cy.lr.Vh);
          } else {
            EXPECT_TRUE(cx.dense == cy.dense);
          }
        }
      }
    }
  }
}

TEST(SharedArchive, PeekReportsPayloadWithoutLoadingKernels) {
  TempFile f("tlrwse_shared_peek.bin");
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 5);
  save_shared_archive(f.path, archive);

  const auto info = peek_archive(f.path);
  EXPECT_TRUE(info.shared_basis);
  EXPECT_EQ(info.num_bands, archive.num_bands());
  // The admission-control byte count equals what the loaded operator will
  // actually charge the cache.
  EXPECT_DOUBLE_EQ(info.payload_bytes, archive.shared_bytes());
  EXPECT_EQ(info.nt, archive.nt);
  EXPECT_EQ(info.freq_bins, archive.freq_bins);
  EXPECT_EQ(info.freqs_hz, archive.freqs_hz);

  // A per-frequency archive keeps the defaults.
  TempFile g("tlrwse_per_freq_peek.bin");
  save_archive(g.path, build_archive(data, cc()));
  const auto plain = peek_archive(g.path);
  EXPECT_FALSE(plain.shared_basis);
  EXPECT_EQ(plain.num_bands, 0);
}

TEST(SharedArchive, ReloadedOperatorSolvesIdentically) {
  TempFile f("tlrwse_shared_archive2.bin");
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 4);
  save_shared_archive(f.path, archive);
  const auto back = load_shared_archive(f.path);

  const auto op_fresh = make_operator(archive);
  const auto op_back = make_operator(back);
  EXPECT_EQ(op_fresh->num_freqs(), data.num_freqs());

  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 20;
  const auto x1 = mdd::solve_mdd(*op_fresh, rhs, lsqr);
  const auto x2 = mdd::solve_mdd(*op_back, rhs, lsqr);
  ASSERT_EQ(x1.x.size(), x2.x.size());
  for (std::size_t i = 0; i < x1.x.size(); ++i) {
    EXPECT_EQ(x1.x[i], x2.x[i]);  // bitwise round trip -> bitwise solve
  }
}

TEST(SharedArchive, MatchesPerFrequencyOperator) {
  // Both formats approximate the same kernels at the same tolerance, so
  // their MDD solutions agree to solver precision.
  const auto& data = dataset();
  const auto shared = build_shared_archive(data, sc(), 4);
  const auto op_shared = make_operator(shared);
  const auto op_plain = make_operator(build_archive(data, cc()));
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 10;
  const auto a = mdd::solve_mdd(*op_shared, rhs, lsqr);
  const auto b = mdd::solve_mdd(*op_plain, rhs, lsqr);
  EXPECT_LT(mdd::nmse(a.x, b.x), 1e-4);
}

TEST(SharedArchive, ConversionFromPerFrequencyArchive) {
  const auto& data = dataset();
  // Tight per-frequency compression so the refit input is near-exact.
  auto tight = cc();
  tight.acc = 1e-6;
  const auto plain = build_archive(data, tight);
  const auto shared = shared_from_archive(plain, sc(), 4);
  EXPECT_EQ(shared.num_freqs(), plain.num_freqs());
  EXPECT_EQ(shared.nt, plain.nt);

  const auto op_shared = make_operator(shared);
  const auto op_plain = make_operator(plain);
  const index_t v = 1;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 10;
  const auto a = mdd::solve_mdd(*op_shared, rhs, lsqr);
  const auto b = mdd::solve_mdd(*op_plain, rhs, lsqr);
  EXPECT_LT(mdd::nmse(a.x, b.x), 1e-4);
}

TEST(SharedArchive, TruncatedFileThrows) {
  // A stream failure anywhere — mid-header, mid-matrix, one byte short —
  // must throw, never hand back silently-garbage factors.
  TempFile f("tlrwse_shared_truncated.bin");
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 4);
  save_shared_archive(f.path, archive);
  std::string bytes;
  {
    std::ifstream is(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  for (const std::size_t cut : {std::size_t{16}, bytes.size() / 3,
                                (2 * bytes.size()) / 3, bytes.size() - 1}) {
    std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(cut));
    os.close();
    EXPECT_THROW((void)load_shared_archive(f.path), std::exception)
        << "cut at " << cut;
  }
}

TEST(SharedArchive, CorruptDimensionsRejectedBeforeAllocation) {
  // On-disk dimensions are untrusted: absurd values must be rejected by
  // the bound checks before any allocation is attempted.
  TempFile f("tlrwse_shared_corrupt_dims.bin");
  const auto& data = dataset();
  const auto archive = build_shared_archive(data, sc(), 4);
  save_shared_archive(f.path, archive);
  std::string bytes;
  {
    std::ifstream is(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  // Header: magic(4) version(4) nt(8) dt(8) nf(8) + nf*(bin 8 + hz 8)
  //         + payload(8) + num_bands(8); then band magic(4) rows(8) ...
  const auto nf = static_cast<std::size_t>(archive.num_freqs());
  const std::size_t band_start = 48 + 16 * nf;
  auto write_patched = [&](std::size_t off, std::int64_t v) {
    ASSERT_LE(off + sizeof(v), bytes.size());
    std::string patched = bytes;
    std::memcpy(patched.data() + off, &v, sizeof(v));
    std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
    os.write(patched.data(), static_cast<std::streamsize>(patched.size()));
  };
  // Band grid rows blown up past any sane matrix dimension.
  write_patched(band_start + 4, std::int64_t{1} << 40);
  EXPECT_THROW((void)load_shared_archive(f.path), std::invalid_argument);
  // First shared-basis matrix claims more rows than its tile has.
  write_patched(band_start + 44, std::int64_t{1} << 40);
  EXPECT_THROW((void)load_shared_archive(f.path), std::invalid_argument);
}

tlr::MixedPrecisionPolicy all_fp16() {
  tlr::MixedPrecisionPolicy p;
  p.fp16_below = 2.0;  // every tile's relative norm is <= 1
  p.bf16_below = 0.0;
  return p;
}

TEST(MixedArchive, HalfRoundTripIsBitwise) {
  // A quantized archive's values are pre-rounded through la/half.hpp, so
  // the packed v2 payload must reload them bit-exactly, tags included.
  TempFile f("tlrwse_half_archive.bin");
  const auto& data = dataset();
  auto archive = build_archive(data, cc());
  const double fp32_bytes = archive.compressed_bytes();
  quantize_archive(archive, all_fp16());
  EXPECT_NEAR(archive.compressed_bytes(), fp32_bytes / 2.0,
              1e-6 * fp32_bytes);
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);
  ASSERT_EQ(back.num_freqs(), archive.num_freqs());
  EXPECT_DOUBLE_EQ(back.compressed_bytes(), archive.compressed_bytes());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    const auto& a = archive.kernels[static_cast<std::size_t>(q)];
    const auto& b = back.kernels[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < a.grid().nt(); ++j) {
      for (index_t i = 0; i < a.grid().mt(); ++i) {
        EXPECT_EQ(b.precision(i, j), tlr::StoragePrecision::kFp16);
        EXPECT_TRUE(a.tile(i, j).U == b.tile(i, j).U);
        EXPECT_TRUE(a.tile(i, j).Vh == b.tile(i, j).Vh);
      }
    }
  }
}

TEST(MixedArchive, AllFp32ArchiveStaysLegacyVersion1) {
  // Writers emit the legacy v1 container when nothing is half, so archives
  // produced before the mixed format existed and archives written today
  // are byte-identical — old readers keep working on new fp32 files.
  TempFile f("tlrwse_legacy_archive.bin");
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  save_archive(f.path, archive);
  std::ifstream is(f.path, std::ios::binary);
  // First embedded kernel's version field sits after the band-metadata
  // header: magic(4) version(4) nt(8) dt(8) nf(8) + nf*(bin 8 + hz 8).
  const auto nf = static_cast<std::size_t>(archive.num_freqs());
  is.seekg(static_cast<std::streamoff>(32 + 16 * nf + 4));
  std::uint32_t kernel_version{};
  is.read(reinterpret_cast<char*>(&kernel_version), 4);
  EXPECT_EQ(kernel_version, 1u);
  const auto back = load_archive(f.path);
  EXPECT_DOUBLE_EQ(back.compressed_bytes(), archive.compressed_bytes());
}

TEST(MixedArchive, ReloadedHalfOperatorSolvesIdentically) {
  TempFile f("tlrwse_half_archive2.bin");
  const auto& data = dataset();
  auto archive = build_archive(data, cc());
  quantize_archive(archive, all_fp16());
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);

  const auto op_fresh = make_operator(archive);
  const auto op_back = make_operator(back);
  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 20;
  const auto x1 = mdd::solve_mdd(*op_fresh, rhs, lsqr);
  const auto x2 = mdd::solve_mdd(*op_back, rhs, lsqr);
  ASSERT_EQ(x1.x.size(), x2.x.size());
  for (std::size_t i = 0; i < x1.x.size(); ++i) {
    EXPECT_EQ(x1.x[i], x2.x[i]);  // packed reload is lossless -> bitwise
  }
}

TEST(MixedArchive, ExtentsPriceHalfPayloadAtPackedBytes) {
  // The extents peek must price fp16 kernels at their true packed bytes —
  // this is what makes cache admission and stream planning see the ~2x
  // capacity win without any serve/oocache changes.
  TempFile f32("tlrwse_extents_fp32.bin"), f16("tlrwse_extents_fp16.bin");
  const auto& data = dataset();
  auto archive = build_archive(data, cc());
  save_archive(f32.path, archive);
  quantize_archive(archive, all_fp16());
  save_archive(f16.path, archive);

  const auto info32 = peek_archive_extents(f32.path);
  const auto info16 = peek_archive_extents(f16.path);
  EXPECT_DOUBLE_EQ(info16.payload_bytes, archive.compressed_bytes());
  EXPECT_NEAR(info16.payload_bytes, info32.payload_bytes / 2.0,
              1e-6 * info32.payload_bytes);
  ASSERT_EQ(info16.freq_payload_bytes.size(), info32.freq_payload_bytes.size());
  for (std::size_t q = 0; q < info16.freq_payload_bytes.size(); ++q) {
    EXPECT_NEAR(info16.freq_payload_bytes[q],
                info32.freq_payload_bytes[q] / 2.0,
                1e-6 * info32.freq_payload_bytes[q]);
  }
  // Extent-seeking slice loads stay bitwise on the packed payloads.
  const auto slice = load_archive_slice(f16.path, 1, 3, info16);
  ASSERT_EQ(slice.num_freqs(), 2);
  for (index_t q = 0; q < 2; ++q) {
    const auto& a = archive.kernels[static_cast<std::size_t>(q + 1)];
    const auto& b = slice.kernels[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < a.grid().nt(); ++j) {
      for (index_t i = 0; i < a.grid().mt(); ++i) {
        EXPECT_TRUE(a.tile(i, j).U == b.tile(i, j).U);
        EXPECT_EQ(b.precision(i, j), tlr::StoragePrecision::kFp16);
      }
    }
  }
}

TEST(MixedArchive, TruncatedHalfArchiveThrows) {
  // The hostile-loader sweep of the fp32 path, rerun over a packed file:
  // a cut anywhere must throw, never hand back silently-garbage factors.
  TempFile f("tlrwse_half_truncated.bin");
  const auto& data = dataset();
  auto archive = build_archive(data, cc());
  quantize_archive(archive, all_fp16());
  save_archive(f.path, archive);
  std::string bytes;
  {
    std::ifstream is(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  for (const std::size_t cut : {std::size_t{16}, bytes.size() / 3,
                                (2 * bytes.size()) / 3, bytes.size() - 1}) {
    std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(cut));
    os.close();
    EXPECT_THROW((void)load_archive(f.path), std::exception)
        << "cut at " << cut;
  }
}

TEST(MixedArchive, CorruptPrecisionTagRejected) {
  // On-disk precision tags are untrusted: a tag outside {0, 1, 2} must be
  // rejected before any payload is interpreted at the wrong width.
  TempFile f("tlrwse_half_bad_tag.bin");
  const auto& data = dataset();
  auto archive = build_archive(data, cc());
  quantize_archive(archive, all_fp16());
  save_archive(f.path, archive);
  std::string bytes;
  {
    std::ifstream is(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  // First kernel's precision table follows its rank table: band header
  // (32 + 16*nf) + kernel header (magic 4, version 4, rows/cols/nb 24)
  // + mt*nt ranks of 8 bytes.
  const auto nf = static_cast<std::size_t>(archive.num_freqs());
  const auto& g = archive.kernels.front().grid();
  const auto tiles = static_cast<std::size_t>(g.mt() * g.nt());
  const std::size_t tag_off = 32 + 16 * nf + 32 + 8 * tiles;
  ASSERT_LT(tag_off, bytes.size());
  bytes[tag_off] = 7;  // not a StoragePrecision
  {
    std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)load_archive(f.path), std::exception);
}

TEST(MixedSharedArchive, QuantizedBandRoundTripIsBitwise) {
  // Shared-basis archives quantize band-uniformly; the v2 container must
  // reload bases AND cores bit-exactly at the halved byte price.
  TempFile f("tlrwse_shared_half.bin");
  const auto& data = dataset();
  auto archive = build_shared_archive(data, sc(), 3);
  const double fp32_bytes = archive.shared_bytes();
  quantize_shared_archive(archive, tlr::StoragePrecision::kFp16);
  EXPECT_NEAR(archive.shared_bytes(), fp32_bytes / 2.0, 1e-6 * fp32_bytes);
  save_shared_archive(f.path, archive);

  const auto info = peek_archive(f.path);
  EXPECT_EQ(info.format_version, 2u);
  EXPECT_DOUBLE_EQ(info.payload_bytes, archive.shared_bytes());

  const auto back = load_shared_archive(f.path);
  ASSERT_EQ(back.num_bands(), archive.num_bands());
  EXPECT_DOUBLE_EQ(back.shared_bytes(), archive.shared_bytes());
  for (index_t b = 0; b < archive.num_bands(); ++b) {
    const auto& x = *archive.bands[static_cast<std::size_t>(b)];
    const auto& y = *back.bands[static_cast<std::size_t>(b)];
    EXPECT_EQ(y.precision(), tlr::StoragePrecision::kFp16);
    for (index_t j = 0; j < x.grid().nt(); ++j) {
      for (index_t i = 0; i < x.grid().mt(); ++i) {
        EXPECT_TRUE(x.basis_u(i, j) == y.basis_u(i, j));
        EXPECT_TRUE(x.basis_vh(i, j) == y.basis_vh(i, j));
        for (index_t q = 0; q < x.num_freqs(); ++q) {
          const auto& cx = x.core(q, i, j);
          const auto& cy = y.core(q, i, j);
          ASSERT_EQ(cx.factored, cy.factored);
          if (cx.factored) {
            EXPECT_TRUE(cx.lr.U == cy.lr.U);
            EXPECT_TRUE(cx.lr.Vh == cy.lr.Vh);
          } else {
            EXPECT_TRUE(cx.dense == cy.dense);
          }
        }
      }
    }
  }

  // And the reloaded operator solves bitwise like the in-memory one.
  const auto op_fresh = make_operator(archive);
  const auto op_back = make_operator(back);
  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 15;
  const auto x1 = mdd::solve_mdd(*op_fresh, rhs, lsqr);
  const auto x2 = mdd::solve_mdd(*op_back, rhs, lsqr);
  ASSERT_EQ(x1.x.size(), x2.x.size());
  for (std::size_t i = 0; i < x1.x.size(); ++i) {
    EXPECT_EQ(x1.x[i], x2.x[i]);
  }
}

TEST(Archive, RejectsCorruptFiles) {
  TempFile f("tlrwse_bad_archive.bin");
  {
    std::ofstream os(f.path, std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW((void)load_archive(f.path), std::runtime_error);
  EXPECT_THROW((void)load_archive("/nonexistent/a.bin"), std::runtime_error);
}

}  // namespace
}  // namespace tlrwse::io
