// Tests for kernel archives: build, round trip, and operator equivalence
// (an operator from a reloaded archive gives the same MDD solution).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace tlrwse::io {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

tlr::CompressionConfig cc() {
  tlr::CompressionConfig c;
  c.nb = 12;
  c.acc = 1e-4;
  return c;
}

TEST(Archive, BuildHasAllKernelsAndMetadata) {
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  EXPECT_EQ(archive.num_freqs(), data.num_freqs());
  EXPECT_EQ(archive.nt, data.config.nt);
  EXPECT_EQ(archive.freq_bins, data.freq_bins);
  EXPECT_GT(archive.compressed_bytes(), 0.0);
  for (const auto& k : archive.kernels) {
    EXPECT_EQ(k.rows(), data.num_sources());
    EXPECT_EQ(k.cols(), data.num_receivers());
  }
}

TEST(Archive, RoundTripPreservesEverything) {
  TempFile f("tlrwse_archive.bin");
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);

  EXPECT_EQ(back.nt, archive.nt);
  EXPECT_DOUBLE_EQ(back.dt, archive.dt);
  EXPECT_EQ(back.freq_bins, archive.freq_bins);
  ASSERT_EQ(back.num_freqs(), archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    const auto& a = archive.kernels[static_cast<std::size_t>(q)];
    const auto& b = back.kernels[static_cast<std::size_t>(q)];
    ASSERT_EQ(a.grid().nb(), b.grid().nb());
    for (index_t j = 0; j < a.grid().nt(); ++j) {
      for (index_t i = 0; i < a.grid().mt(); ++i) {
        EXPECT_TRUE(a.tile(i, j).U == b.tile(i, j).U);
        EXPECT_TRUE(a.tile(i, j).Vh == b.tile(i, j).Vh);
      }
    }
  }
}

TEST(Archive, ReloadedOperatorSolvesIdentically) {
  TempFile f("tlrwse_archive2.bin");
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  save_archive(f.path, archive);
  const auto back = load_archive(f.path);

  const auto op_fresh = make_operator(archive);
  const auto op_back = make_operator(back);

  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 20;
  const auto x1 = mdd::solve_mdd(*op_fresh, rhs, lsqr);
  const auto x2 = mdd::solve_mdd(*op_back, rhs, lsqr);
  ASSERT_EQ(x1.x.size(), x2.x.size());
  for (std::size_t i = 0; i < x1.x.size(); ++i) {
    EXPECT_EQ(x1.x[i], x2.x[i]);  // bit-identical: same kernels, same solver
  }
}

TEST(Archive, MatchesDirectTlrOperator) {
  // The archive path (dA folded at build) equals make_mdc_operator's TLR
  // backend with the same compression settings.
  const auto& data = dataset();
  const auto archive = build_archive(data, cc());
  const auto op_arch = make_operator(archive);
  const auto op_direct =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc());
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 10;
  const auto a = mdd::solve_mdd(*op_arch, rhs, lsqr);
  const auto b = mdd::solve_mdd(*op_direct, rhs, lsqr);
  EXPECT_LT(mdd::nmse(a.x, b.x), 1e-8);
}

TEST(Archive, RejectsCorruptFiles) {
  TempFile f("tlrwse_bad_archive.bin");
  {
    std::ofstream os(f.path, std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW((void)load_archive(f.path), std::runtime_error);
  EXPECT_THROW((void)load_archive("/nonexistent/a.bin"), std::runtime_error);
}

}  // namespace
}  // namespace tlrwse::io
