// Tests for the roofline model and its machine tables.
#include <gtest/gtest.h>

#include "tlrwse/roofline/roofline.hpp"

namespace tlrwse::roofline {
namespace {

TEST(Machines, Fig15Table) {
  const auto machines = fig15_machines();
  ASSERT_EQ(machines.size(), 7u);
  // Six CS-2s lead the table with the 120 PB/s and 10.2 PFlop/s roofs.
  EXPECT_EQ(machines[0].units, 6);
  EXPECT_NEAR(machines[0].peak_bw() / 1e15, 120.0, 1.0);
  EXPECT_NEAR(machines[0].peak_flops() / 1e15, 10.2, 0.3);
  // CS-2 bandwidth roof dominates every other config by orders of magnitude.
  for (std::size_t i = 1; i < machines.size(); ++i) {
    EXPECT_GT(machines[0].peak_bw(), 1000.0 * machines[i].peak_bw())
        << machines[i].name;
  }
}

TEST(Machines, Fig16Table) {
  const auto machines = fig16_machines();
  ASSERT_EQ(machines.size(), 6u);
  EXPECT_NEAR(machines[0].peak_bw() / 1e15, 960.0, 5.0);  // Condor Galaxy
  // Leonardo aggregate ~27.6 PB/s, Summit ~24.9 PB/s: the paper's claim
  // that 92.58 PB/s sustained is "more than 3X" their theoretical peaks.
  const auto& leonardo = machines[4];
  const auto& summit = machines[5];
  EXPECT_GT(92.58e15 / leonardo.peak_bw(), 3.0);
  EXPECT_GT(92.58e15 / summit.peak_bw(), 3.0);
}

TEST(Roofline, AttainableFlopsKinksAtRidge) {
  MachineSpec m{"test", 1, 100.0, 1000.0};  // ridge at AI = 10
  EXPECT_DOUBLE_EQ(m.attainable_flops(1.0), 100.0);   // memory bound
  EXPECT_DOUBLE_EQ(m.attainable_flops(10.0), 1000.0); // ridge point
  EXPECT_DOUBLE_EQ(m.attainable_flops(100.0), 1000.0);  // compute bound
}

TEST(Roofline, TlrMvmIntensities) {
  // Large-MN asymptotes: relative -> 0.5 flop/byte, absolute -> 1/6.
  EXPECT_NEAR(tlr_mvm_intensity_relative(1e9, 1e4, 1e4), 0.5, 1e-3);
  EXPECT_NEAR(tlr_mvm_intensity_absolute(1e9, 1e4), 1.0 / 6.0, 1e-3);
  // The absolute intensity is always lower: the flat memory model performs
  // more accesses for the same flops (paper Sec. 7.5).
  for (double mn : {1e3, 1e6, 1e9}) {
    EXPECT_LT(tlr_mvm_intensity_absolute(mn, 100.0),
              tlr_mvm_intensity_relative(mn, 100.0, 100.0));
  }
}

TEST(Roofline, PointFlopsRate) {
  RooflinePoint pt{"TLR-MVM", 0.5, 12.26e15};
  EXPECT_DOUBLE_EQ(pt.flops_rate(), 6.13e15);
}

TEST(Roofline, CrossoverBehaviour) {
  // On the CS-2, batched MVM at AI ~ 0.5 is COMPUTE bound (the paper's
  // Fig. 14 commentary: increasing the matrix size "transitions the batch
  // MVM execution from a memory-bound to a compute-bound operation"),
  // while on a GPU the same kernel is memory bound.
  const auto machines = fig15_machines();
  const auto& cs2 = machines[0];
  const auto& a100 = machines[2];
  const double ai = 0.5;
  EXPECT_DOUBLE_EQ(cs2.attainable_flops(ai), cs2.peak_flops());
  EXPECT_LT(a100.attainable_flops(ai), a100.peak_flops());
  EXPECT_DOUBLE_EQ(a100.attainable_flops(ai), ai * a100.peak_bw());
}

}  // namespace
}  // namespace tlrwse::roofline
