// Tests for mixed-precision TLR storage: the FP16/BF16 rounding emulation
// and the norm-driven per-tile precision policy.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/half.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {
namespace {

TEST(Fp16Rounding, ExactValuesPassThrough) {
  // Values exactly representable in binary16 are unchanged.
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(round_to_fp16(v), v);
  }
}

TEST(Fp16Rounding, RelativeErrorBounded) {
  // Half precision: 10-bit mantissa -> relative error <= 2^-11.
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<float>(rng.normal() * 100.0);
    const float r = round_to_fp16(v);
    EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 2048.0f) + 1e-4f);
  }
}

TEST(Fp16Rounding, SaturatesAndFlushes) {
  EXPECT_EQ(round_to_fp16(1e6f), 65504.0f);
  EXPECT_EQ(round_to_fp16(-1e6f), -65504.0f);
  EXPECT_EQ(round_to_fp16(1e-6f), 0.0f);
}

TEST(Bf16Rounding, RelativeErrorBounded) {
  // bfloat16: 7-bit mantissa -> relative error <= 2^-8.
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<float>(rng.normal() * 1e6);
    const float r = round_to_bf16(v);
    EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(Bf16Rounding, KeepsFloatRange) {
  // bfloat16 shares float's exponent: huge values survive.
  EXPECT_GT(round_to_bf16(1e30f), 9e29f);
  EXPECT_LT(round_to_bf16(1e-30f), 2e-30f);
  EXPECT_GT(round_to_bf16(1e-30f), 0.0f);
}

TEST(Bf16Rounding, RoundToNearestEven) {
  // 1 + 2^-8 rounds to 1 (tie, even) and 1 + 3*2^-9 rounds up.
  const float ulp = 1.0f / 128.0f;  // bf16 ulp at 1.0
  EXPECT_EQ(round_to_bf16(1.0f + ulp / 2.0f), 1.0f);
  EXPECT_EQ(round_to_bf16(1.0f + 0.75f * ulp), 1.0f + ulp);
}

TEST(HalfBits, SpecialValuesSurviveBothFormats) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const la::HalfFormat f : {la::HalfFormat::kFp16, la::HalfFormat::kBf16}) {
    // +-Inf packs to +-Inf (the old rounder saturated Inf to 65504).
    EXPECT_EQ(la::half_bits_to_f32(la::f32_to_half_bits(inf, f), f), inf);
    EXPECT_EQ(la::half_bits_to_f32(la::f32_to_half_bits(-inf, f), f), -inf);
    // NaN packs to the canonical quiet NaN of the format, sign preserved.
    EXPECT_TRUE(std::isnan(la::half_bits_to_f32(la::f32_to_half_bits(nan, f), f)));
    EXPECT_TRUE(std::isnan(la::half_bits_to_f32(la::f32_to_half_bits(-nan, f), f)));
    // Signed zero survives the round trip bit-exactly.
    EXPECT_EQ(std::bit_cast<std::uint32_t>(
                  la::half_bits_to_f32(la::f32_to_half_bits(-0.0f, f), f)),
              std::bit_cast<std::uint32_t>(-0.0f));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(
                  la::half_bits_to_f32(la::f32_to_half_bits(0.0f, f), f)),
              std::bit_cast<std::uint32_t>(0.0f));
  }
  EXPECT_EQ(la::f32_to_fp16_bits(nan), 0x7E00u);
  EXPECT_EQ(la::f32_to_fp16_bits(-nan), 0xFE00u);
  // fp16: finite overflow saturates; bf16: finite overflow rounds to Inf.
  EXPECT_EQ(la::fp16_bits_to_f32(la::f32_to_fp16_bits(1e9f)), 65504.0f);
  EXPECT_EQ(la::f32_to_bf16_bits(std::numeric_limits<float>::max()), 0x7F80u);
}

TEST(HalfBits, Fp16WidenRepackExhaustive) {
  // Every one of the 2^16 fp16 bit patterns widens EXACTLY; repacking the
  // widened value must reproduce the pattern, modulo the two documented
  // canonicalizations (denormals flush to signed zero, NaNs collapse to
  // the canonical qNaN). This is the identity the plan arenas and archive
  // payloads rely on for bitwise-reproducible reload.
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto bits = static_cast<std::uint16_t>(h);
    const std::uint16_t sign = bits & 0x8000u;
    const std::uint32_t exp = (bits >> 10) & 0x1Fu;
    const std::uint32_t mant = bits & 0x3FFu;
    const std::uint16_t back = la::f32_to_fp16_bits(la::fp16_bits_to_f32(bits));
    if (exp == 0 && mant != 0) {
      EXPECT_EQ(back, sign) << "denormal " << h;  // flushed, sign kept
    } else if (exp == 0x1Fu && mant != 0) {
      EXPECT_EQ(back, sign | 0x7E00u) << "nan " << h;  // canonical qNaN
    } else {
      EXPECT_EQ(back, bits) << "pattern " << h;
    }
  }
}

TEST(HalfBits, Bf16WidenRepackExhaustive) {
  // bf16 widening is a bare shift, so every pattern round-trips except
  // signaling NaNs, which gain the quiet bit.
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto bits = static_cast<std::uint16_t>(h);
    const std::uint16_t back = la::f32_to_bf16_bits(la::bf16_bits_to_f32(bits));
    const bool is_nan = (bits & 0x7F80u) == 0x7F80u && (bits & 0x7Fu) != 0;
    EXPECT_EQ(back, is_nan ? (bits | 0x0040u) : bits) << "pattern " << h;
  }
}

TEST(HalfBits, PackIsIdempotentOnRoundedValues) {
  // pack(widen(pack(v))) == pack(v): once a value has been rounded through
  // a format, re-rounding never moves it again. Random floats across the
  // whole dynamic range plus the denormal/overflow edges of both formats.
  Rng rng(23);
  for (const la::HalfFormat f : {la::HalfFormat::kFp16, la::HalfFormat::kBf16}) {
    for (int i = 0; i < 20000; ++i) {
      const auto v = static_cast<float>(rng.normal() *
                                        std::pow(10.0, rng.normal() * 8.0));
      const std::uint16_t once = la::f32_to_half_bits(v, f);
      EXPECT_EQ(la::f32_to_half_bits(la::half_bits_to_f32(once, f), f), once);
    }
    for (float v : {6.0e-5f, 6.1e-5f, 5.9e-8f, 65504.0f, 65520.0f, 3.39e38f}) {
      for (const float s : {v, -v}) {
        const std::uint16_t once = la::f32_to_half_bits(s, f);
        EXPECT_EQ(la::f32_to_half_bits(la::half_bits_to_f32(once, f), f), once);
      }
    }
  }
}

TEST(Fp16Rounding, InfAndNanPassThrough) {
  // The rounders are exactly widen(pack(v)): Inf must stay Inf (not
  // saturate to 65504) and NaN must stay NaN in both formats.
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(round_to_fp16(inf), inf);
  EXPECT_EQ(round_to_fp16(-inf), -inf);
  EXPECT_TRUE(std::isnan(round_to_fp16(std::nanf(""))));
  EXPECT_EQ(round_to_bf16(inf), inf);
  EXPECT_EQ(round_to_bf16(-inf), -inf);
  EXPECT_TRUE(std::isnan(round_to_bf16(std::nanf(""))));
  // Signed zero preserved by both rounders.
  EXPECT_TRUE(std::signbit(round_to_fp16(-0.0f)));
  EXPECT_TRUE(std::signbit(round_to_bf16(-0.0f)));
  EXPECT_FALSE(std::signbit(round_to_fp16(0.0f)));
  // fp16 flush keeps the sign too.
  EXPECT_TRUE(std::signbit(round_to_fp16(-1e-8f)));
}

struct MixedSetup {
  TlrMatrix<cf32> mat;
  explicit MixedSetup(double acc = 1e-5) {
    CompressionConfig cfg;
    cfg.nb = 16;
    cfg.acc = acc;
    mat = compress_tlr(tlrwse::testing::oscillatory_matrix<cf32>(64, 48, 12.0),
                       cfg);
  }
};

TEST(MixedTlr, PolicyAssignsAllThreePrecisions) {
  MixedSetup s;
  MixedPrecisionPolicy policy;
  policy.fp16_below = 0.5;
  policy.bf16_below = 0.1;
  const auto q = quantize_tlr(s.mat, policy);
  EXPECT_GT(q.tiles_fp32, 0);
  EXPECT_GT(q.tiles_fp16 + q.tiles_bf16, 0);
  EXPECT_EQ(q.tiles_fp32 + q.tiles_fp16 + q.tiles_bf16,
            s.mat.grid().num_tiles());
}

TEST(MixedTlr, SavesMemoryWhenDowncasting) {
  MixedSetup s;
  MixedPrecisionPolicy policy;
  policy.fp16_below = 0.9;  // aggressive: almost everything narrow
  policy.bf16_below = 0.3;
  const auto q = quantize_tlr(s.mat, policy);
  EXPECT_GT(q.saving(), 1.3);
  EXPECT_LT(q.saving(), 2.01);  // at most 2x (4 -> 2 bytes)
  EXPECT_DOUBLE_EQ(q.fp32_bytes, s.mat.compressed_bytes());
}

TEST(MixedTlr, AllFp32PolicyIsLossless) {
  MixedSetup s;
  MixedPrecisionPolicy policy;
  policy.fp16_below = 0.0;
  policy.bf16_below = 0.0;
  const auto q = quantize_tlr(s.mat, policy);
  EXPECT_EQ(q.tiles_fp32, s.mat.grid().num_tiles());
  EXPECT_DOUBLE_EQ(q.saving(), 1.0);
  EXPECT_LT(la::frobenius_distance(q.matrix.reconstruct(), s.mat.reconstruct()),
            1e-12);
}

TEST(MixedTlr, MvmErrorSmallAndOrderedByAggressiveness) {
  MixedSetup s;
  StackedTlr<cf32> ref_stacks(s.mat);
  Rng rng(9);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 48);
  const auto y_ref = tlr_mvm_fused(ref_stacks, std::span<const cf32>(x));

  MixedPrecisionPolicy mild;   // only the weakest tiles narrowed
  mild.fp16_below = 0.1;
  mild.bf16_below = 0.01;
  MixedPrecisionPolicy harsh;  // everything at bf16
  harsh.fp16_below = 2.0;
  harsh.bf16_below = 2.0;

  const auto qm = quantize_tlr(s.mat, mild);
  const auto qh = quantize_tlr(s.mat, harsh);
  StackedTlr<cf32> sm(qm.matrix), sh(qh.matrix);
  const auto ym = tlr_mvm_fused(sm, std::span<const cf32>(x));
  const auto yh = tlr_mvm_fused(sh, std::span<const cf32>(x));
  const double em = tlrwse::testing::rel_error(ym, y_ref);
  const double eh = tlrwse::testing::rel_error(yh, y_ref);
  EXPECT_LT(em, 1e-3);
  EXPECT_LT(eh, 2e-2);  // bf16 mantissa: ~0.4% per element
  EXPECT_LE(em, eh);
}

TEST(MixedTlr, PrecisionVectorMatchesCounts) {
  MixedSetup s;
  MixedPrecisionPolicy policy;
  policy.fp16_below = 0.4;
  policy.bf16_below = 0.08;
  const auto q = quantize_tlr(s.mat, policy);
  index_t n32 = 0, n16 = 0, nb16 = 0;
  for (auto p : q.precision) {
    if (p == StoragePrecision::kFp32) ++n32;
    if (p == StoragePrecision::kFp16) ++n16;
    if (p == StoragePrecision::kBf16) ++nb16;
  }
  EXPECT_EQ(n32, q.tiles_fp32);
  EXPECT_EQ(n16, q.tiles_fp16);
  EXPECT_EQ(nb16, q.tiles_bf16);
}

}  // namespace
}  // namespace tlrwse::tlr
