// Tests for the distributed serving tier: wire-protocol framing (round
// trips, truncation, garbage rejection), the shard planner's placement
// properties, and — over the in-process LocalTransport, which round-trips
// every frame through the real encode/decode path — the bitwise identity
// of cluster solves with the single-process operator for dense, TLR, and
// shared-basis kernels, plus the typed failure semantics (worker death,
// quotas, deadlines, cancellation).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tlrwse/cluster/frontend.hpp"
#include "tlrwse/cluster/shard_planner.hpp"
#include "tlrwse/cluster/transport.hpp"
#include "tlrwse/cluster/wire.hpp"
#include "tlrwse/cluster/worker.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/seismic/modeling.hpp"

namespace tlrwse::cluster {
namespace {

// ---------------------------------------------------------------- wire --

TEST(Wire, FrameRoundTripsEveryMessageType) {
  LoadShardMsg load;
  load.shard_id = 7;
  load.q_begin = 3;
  load.q_end = 9;
  load.archive_path = "/tmp/survey.tlra";
  LoadShardOkMsg load_ok;
  load_ok.shard_id = 7;
  load_ok.nt = 128;
  load_ok.ns = 48;
  load_ok.nr = 30;
  load_ok.freq_bins = {4, 5, 6};
  ApplyMsg apply;
  apply.request_id = 42;
  apply.shard_id = 7;
  apply.adjoint = true;
  apply.nrhs = 2;
  apply.deadline_s = 1.5;
  apply.data = {cf32{1.0f, -2.0f}, cf32{0.25f, 3.5f}};
  ApplyOkMsg apply_ok;
  apply_ok.request_id = 42;
  apply_ok.data = {cf32{-0.5f, 0.125f}};
  CancelMsg cancel;
  cancel.request_id = 42;
  CancelOkMsg cancel_ok;
  cancel_ok.request_id = 42;
  cancel_ok.in_flight = true;
  ErrorMsg error;
  error.request_id = 42;
  error.code = WireErrorCode::kDeadlineExceeded;
  error.message = "too slow";

  const auto round_trip = [](const Frame& f) {
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    Frame out;
    EXPECT_EQ(decode_frame(bytes, out), bytes.size());
    EXPECT_EQ(out.type, f.type);
    EXPECT_EQ(out.payload, f.payload);
    return out;
  };

  const auto l2 = LoadShardMsg::from_frame(round_trip(load.to_frame()));
  EXPECT_EQ(l2.shard_id, load.shard_id);
  EXPECT_EQ(l2.q_begin, load.q_begin);
  EXPECT_EQ(l2.q_end, load.q_end);
  EXPECT_EQ(l2.archive_path, load.archive_path);

  const auto lo2 = LoadShardOkMsg::from_frame(round_trip(load_ok.to_frame()));
  EXPECT_EQ(lo2.nt, load_ok.nt);
  EXPECT_EQ(lo2.ns, load_ok.ns);
  EXPECT_EQ(lo2.nr, load_ok.nr);
  EXPECT_EQ(lo2.freq_bins, load_ok.freq_bins);

  const auto a2 = ApplyMsg::from_frame(round_trip(apply.to_frame()));
  EXPECT_EQ(a2.request_id, apply.request_id);
  EXPECT_EQ(a2.shard_id, apply.shard_id);
  EXPECT_EQ(a2.adjoint, apply.adjoint);
  EXPECT_EQ(a2.nrhs, apply.nrhs);
  EXPECT_DOUBLE_EQ(a2.deadline_s, apply.deadline_s);
  ASSERT_EQ(a2.data.size(), apply.data.size());
  EXPECT_EQ(std::memcmp(a2.data.data(), apply.data.data(),
                        apply.data.size() * sizeof(cf32)),
            0);

  const auto ao2 = ApplyOkMsg::from_frame(round_trip(apply_ok.to_frame()));
  EXPECT_EQ(ao2.request_id, apply_ok.request_id);
  ASSERT_EQ(ao2.data.size(), apply_ok.data.size());
  EXPECT_EQ(std::memcmp(ao2.data.data(), apply_ok.data.data(),
                        apply_ok.data.size() * sizeof(cf32)),
            0);

  EXPECT_EQ(CancelMsg::from_frame(round_trip(cancel.to_frame())).request_id,
            cancel.request_id);
  const auto co2 = CancelOkMsg::from_frame(round_trip(cancel_ok.to_frame()));
  EXPECT_EQ(co2.request_id, cancel_ok.request_id);
  EXPECT_TRUE(co2.in_flight);

  (void)MetricsMsg::from_frame(round_trip(MetricsMsg{}.to_frame()));
  (void)ShutdownMsg::from_frame(round_trip(ShutdownMsg{}.to_frame()));
  (void)ShutdownOkMsg::from_frame(round_trip(ShutdownOkMsg{}.to_frame()));

  const auto e2 = ErrorMsg::from_frame(round_trip(error.to_frame()));
  EXPECT_EQ(e2.request_id, error.request_id);
  EXPECT_EQ(e2.code, error.code);
  EXPECT_EQ(e2.message, error.message);
}

TEST(Wire, MetricsSnapshotRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("a.gauge").add(-7);
  reg.histogram("a.hist").record(0.5);
  reg.histogram("a.hist").record(2.0);
  MetricsOkMsg msg;
  msg.snapshot = reg.snapshot();

  const auto decoded =
      MetricsOkMsg::from_frame([&] {
        const auto bytes = encode_frame(msg.to_frame());
        Frame f;
        EXPECT_EQ(decode_frame(bytes, f), bytes.size());
        return f;
      }());
  EXPECT_EQ(decoded.snapshot.counters.at("a.count"), 3u);
  EXPECT_EQ(decoded.snapshot.gauges.at("a.gauge"), -7);
  ASSERT_EQ(decoded.snapshot.histograms.size(), 1u);
  EXPECT_EQ(decoded.snapshot.histograms[0].name, "a.hist");
  EXPECT_EQ(decoded.snapshot.histograms[0].snap.count, 2u);
  EXPECT_DOUBLE_EQ(decoded.snapshot.histograms[0].snap.sum, 2.5);
}

TEST(Wire, TruncatedFramesAskForMoreBytes) {
  CancelMsg msg;
  msg.request_id = 9;
  const std::vector<std::uint8_t> bytes = encode_frame(msg.to_frame());
  Frame out;
  // Partial header, then a complete header with partial payload: both are
  // "need more", not errors.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_EQ(decode_frame(std::span(bytes.data(), n), out), 0u);
  }
  EXPECT_EQ(decode_frame(bytes, out), bytes.size());
}

TEST(Wire, GarbageHeaderIsRejectedTyped) {
  CancelMsg msg;
  msg.request_id = 9;
  std::vector<std::uint8_t> bytes = encode_frame(msg.to_frame());
  Frame out;

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)decode_frame(bad_magic, out), WireError);

  auto bad_version = bytes;
  bad_version[4] ^= 0xFF;
  EXPECT_THROW((void)decode_frame(bad_version, out), WireError);

  // An implausible payload length must be rejected before any allocation,
  // even though the buffer is far shorter than the claimed length.
  auto oversized = bytes;
  const std::uint64_t huge = kMaxFramePayload + 1;
  std::memcpy(oversized.data() + 8, &huge, sizeof(huge));
  EXPECT_THROW((void)decode_frame(oversized, out), WireError);
}

TEST(Wire, TrailingAndMissingBytesAreRejected) {
  CancelMsg msg;
  msg.request_id = 9;
  Frame frame = msg.to_frame();
  frame.payload.push_back(0);  // trailing junk -> expect_end throws
  EXPECT_THROW((void)CancelMsg::from_frame(frame), WireError);

  Frame short_frame = msg.to_frame();
  short_frame.payload.pop_back();  // truncated field -> checked take throws
  EXPECT_THROW((void)CancelMsg::from_frame(short_frame), WireError);

  // A string length pointing past the end of the payload must not read.
  LoadShardMsg load;
  load.shard_id = 1;
  load.q_begin = 0;
  load.q_end = 1;
  load.archive_path = "abcdef";
  Frame lying = load.to_frame();
  lying.payload.resize(lying.payload.size() - 3);
  EXPECT_THROW((void)LoadShardMsg::from_frame(lying), WireError);
}

TEST(Wire, FromFrameChecksTheType) {
  CancelMsg msg;
  msg.request_id = 1;
  EXPECT_THROW((void)ApplyMsg::from_frame(msg.to_frame()), WireError);
}

// ------------------------------------------------------------- planner --

TEST(ShardPlanner, ShardsPartitionTheFrequencyRange) {
  const std::vector<double> weights(14, 100.0);
  PlannerConfig cfg;
  cfg.num_workers = 3;
  const ShardPlan plan = plan_shards(weights, cfg);
  ASSERT_FALSE(plan.replicated);
  ASSERT_EQ(plan.shards.size(), 3u);
  index_t expected_begin = 0;
  for (const auto& [begin, end] : plan.shards) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);  // non-empty
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, static_cast<index_t>(weights.size()));
}

TEST(ShardPlanner, UniformWeightsBalanceWithinOneFrequency) {
  const std::vector<double> weights(16, 50.0);
  PlannerConfig cfg;
  cfg.num_workers = 4;
  const ShardPlan plan = plan_shards(weights, cfg);
  for (const auto& [begin, end] : plan.shards) {
    EXPECT_GE(end - begin, 3);
    EXPECT_LE(end - begin, 5);
  }
}

TEST(ShardPlanner, MoreWorkersThanFrequenciesCapsTheShardCount) {
  const std::vector<double> weights(3, 10.0);
  PlannerConfig cfg;
  cfg.num_workers = 8;
  const ShardPlan plan = plan_shards(weights, cfg);
  EXPECT_EQ(plan.shards.size(), 3u);
}

TEST(ShardPlanner, SmallOperatorsReplicate) {
  const std::vector<double> weights(8, 10.0);
  PlannerConfig cfg;
  cfg.num_workers = 4;
  cfg.replicate_max_bytes = 1000.0;  // total 80 <= 1000 -> replicate
  EXPECT_TRUE(plan_shards(weights, cfg).replicated);
  cfg.replicate_max_bytes = 50.0;  // too big to replicate -> shard
  EXPECT_FALSE(plan_shards(weights, cfg).replicated);
}

// ----------------------------------------------------------- transport --

TEST(LocalChannel, RoundTripsThroughTheRealBytePath) {
  // The handler sees exactly the frame the encode/decode path produces, so
  // LocalTransport tests certify the same bytes a socket would carry.
  LocalChannel chan([](const Frame& f) {
    const CancelMsg msg = CancelMsg::from_frame(f);
    CancelOkMsg ok;
    ok.request_id = msg.request_id + 1;
    ok.in_flight = false;
    return ok.to_frame();
  });
  CancelMsg msg;
  msg.request_id = 41;
  const auto reply = CancelOkMsg::from_frame(chan.call(msg.to_frame()));
  EXPECT_EQ(reply.request_id, 42u);
}

TEST(LocalChannel, KillFailsCallsTyped) {
  LocalChannel chan([](const Frame& f) { return f; });
  chan.kill();
  CancelMsg msg;
  msg.request_id = 1;
  try {
    (void)chan.call(msg.to_frame());
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
  }
}

// -------------------------------------------------------------- worker --

TEST(ShardWorker, UnknownShardAndBadPayloadAreTypedErrors) {
  ShardWorker worker;
  ApplyMsg apply;
  apply.request_id = 5;
  apply.shard_id = 99;
  apply.nrhs = 1;
  const auto err = ErrorMsg::from_frame(worker.handle(apply.to_frame()));
  EXPECT_EQ(err.code, WireErrorCode::kUnknownShard);
  EXPECT_EQ(err.request_id, 5u);

  Frame bogus;
  bogus.type = 999;
  const auto err2 = ErrorMsg::from_frame(worker.handle(bogus));
  EXPECT_EQ(err2.code, WireErrorCode::kBadRequest);
}

TEST(ShardWorker, MissingArchiveLoadIsTyped) {
  ShardWorker worker;
  LoadShardMsg load;
  load.shard_id = 1;
  load.q_begin = 0;
  load.q_end = 1;
  load.archive_path = "/nonexistent/archive.tlra";
  const auto err = ErrorMsg::from_frame(worker.handle(load.to_frame()));
  EXPECT_EQ(err.code, WireErrorCode::kArchiveMissing);
}

// ------------------------------------------------------- dense parity --

/// Random dense kernels for a tiny operator; the same matrices feed both
/// the local MdcOperator and the workers, so a remote apply must be
/// bitwise identical to the local one.
std::vector<la::MatrixCF> dense_kernels(index_t nq, index_t ns, index_t nr) {
  Rng rng(7);
  std::vector<la::MatrixCF> out;
  for (index_t q = 0; q < nq; ++q) {
    la::MatrixCF K(ns, nr);
    fill_normal(rng, K.data(), static_cast<std::size_t>(ns * nr));
    out.push_back(std::move(K));
  }
  return out;
}

std::vector<std::unique_ptr<mdc::FrequencyMvm>> dense_mvms(
    const std::vector<la::MatrixCF>& mats, std::size_t begin,
    std::size_t end) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> out;
  for (std::size_t q = begin; q < end; ++q) {
    out.push_back(std::make_unique<mdc::DenseMvm>(mats[q]));
  }
  return out;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(RemoteMdcOperator, DenseShardedApplyMatchesLocalBitwise) {
  const index_t nt = 32, ns = 6, nr = 5, nq = 4;
  const std::vector<index_t> bins = {1, 2, 3, 4};
  const auto mats = dense_kernels(nq, ns, nr);

  mdc::MdcOperator local(nt, bins, dense_mvms(mats, 0, 4));

  // Two workers, two frequencies each, shards injected directly (dense
  // kernels have no archive format).
  auto w0 = std::make_unique<ShardWorker>();
  auto w1 = std::make_unique<ShardWorker>();
  w0->add_shard(1, nt, ns, nr, {bins[0], bins[1]}, dense_mvms(mats, 0, 2));
  w1->add_shard(2, nt, ns, nr, {bins[2], bins[3]}, dense_mvms(mats, 2, 4));

  std::vector<std::unique_ptr<WorkerClient>> fleet;
  ShardWorker* raw0 = w0.get();
  ShardWorker* raw1 = w1.get();
  fleet.push_back(std::make_unique<WorkerClient>(
      std::make_unique<LocalChannel>(
          [raw0](const Frame& f) { return raw0->handle(f); }),
      "w0"));
  fleet.push_back(std::make_unique<WorkerClient>(
      std::make_unique<LocalChannel>(
          [raw1](const Frame& f) { return raw1->handle(f); }),
      "w1"));

  auto placement = std::make_shared<Placement>();
  placement->nt = nt;
  placement->ns = ns;
  placement->nr = nr;
  ShardAssignment s0;
  s0.shard_id = 1;
  s0.q_begin = 0;
  s0.q_end = 2;
  s0.freq_bins = {bins[0], bins[1]};
  s0.workers = {0};
  ShardAssignment s1;
  s1.shard_id = 2;
  s1.q_begin = 2;
  s1.q_end = 4;
  s1.freq_bins = {bins[2], bins[3]};
  s1.workers = {1};
  placement->shards = {s0, s1};

  RemoteMdcOperator remote(fleet, placement, /*request_id=*/7);
  ASSERT_EQ(remote.rows(), local.rows());
  ASSERT_EQ(remote.cols(), local.cols());

  Rng rng(11);
  std::vector<float> x(static_cast<std::size_t>(local.cols()));
  fill_normal(rng, x.data(), x.size());
  std::vector<float> y_local(static_cast<std::size_t>(local.rows()));
  std::vector<float> y_remote(y_local.size());
  local.apply(x, y_local);
  remote.apply(x, y_remote);
  EXPECT_TRUE(bitwise_equal(y_local, y_remote));

  std::vector<float> x_local(x.size()), x_remote(x.size());
  local.apply_adjoint(y_local, x_local);
  remote.apply_adjoint(y_local, x_remote);
  EXPECT_TRUE(bitwise_equal(x_local, x_remote));

  // Batched forms: each RHS column bitwise equal to the local batch.
  const index_t nrhs = 3;
  std::vector<float> X(x.size() * static_cast<std::size_t>(nrhs));
  fill_normal(rng, X.data(), X.size());
  std::vector<float> Y_local(y_local.size() * static_cast<std::size_t>(nrhs));
  std::vector<float> Y_remote(Y_local.size());
  local.apply_batch(X, Y_local, nrhs);
  remote.apply_batch(X, Y_remote, nrhs);
  EXPECT_EQ(std::memcmp(Y_local.data(), Y_remote.data(),
                        Y_local.size() * sizeof(float)),
            0);
}

// --------------------------------------------------- cluster fixtures --

struct TempFile {
  std::string path;
  // The pid keeps concurrent ctest shards of this binary (each TEST runs
  // as its own process) from clobbering each other's fixture files.
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() /
              (std::to_string(::getpid()) + "." + name))
                 .string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

/// One per-frequency ("TLRA") archive on disk, built once.
const std::string& tlr_archive_path() {
  static const TempFile file("tlrwse_cluster_test.tlra");
  static const bool built = [] {
    tlr::CompressionConfig cc;
    cc.nb = 12;
    cc.acc = 1e-4;
    io::save_archive(file.path, io::build_archive(dataset(), cc));
    return true;
  }();
  (void)built;
  return file.path;
}

/// The all-fp16 quantized twin of tlr_archive_path(), built once.
const std::string& half_archive_path() {
  static const TempFile file("tlrwse_cluster_test_fp16.tlra");
  static const bool built = [] {
    tlr::CompressionConfig cc;
    cc.nb = 12;
    cc.acc = 1e-4;
    auto archive = io::build_archive(dataset(), cc);
    tlr::MixedPrecisionPolicy policy;
    policy.fp16_below = 2.0;  // every tile
    policy.bf16_below = 0.0;
    io::quantize_archive(archive, policy);
    io::save_archive(file.path, archive);
    return true;
  }();
  (void)built;
  return file.path;
}

/// One shared-basis ("TLRS") archive on disk, built once.
const std::string& shared_archive_path() {
  static const TempFile file("tlrwse_cluster_test.tlrs");
  static const bool built = [] {
    tlr::SharedBasisConfig sc;
    sc.nb = 12;
    sc.acc = 1e-4;
    io::save_shared_archive(file.path,
                            io::build_shared_archive(dataset(), sc, 4));
    return true;
  }();
  (void)built;
  return file.path;
}

/// An in-process fleet: each WorkerClient speaks to its own ShardWorker
/// over a LocalChannel. The raw channel pointers stay valid for kill().
struct LocalFleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<LocalChannel*> channels;
  std::vector<std::unique_ptr<WorkerClient>> clients;
};

LocalFleet make_fleet(int n) {
  LocalFleet fleet;
  for (int i = 0; i < n; ++i) {
    fleet.workers.push_back(std::make_unique<ShardWorker>());
    ShardWorker* worker = fleet.workers.back().get();
    auto chan = std::make_unique<LocalChannel>(
        [worker](const Frame& f) { return worker->handle(f); });
    fleet.channels.push_back(chan.get());
    fleet.clients.push_back(std::make_unique<WorkerClient>(
        std::move(chan), "w" + std::to_string(i)));
  }
  return fleet;
}

ClusterRequest make_request(const std::string& archive,
                            serve::RequestKind kind, index_t vsrc,
                            int iters) {
  ClusterRequest req;
  req.op = serve::OperatorKey{archive, 12, 1e-4};
  req.kind = kind;
  req.vsrc = vsrc;
  req.rhs = mdd::virtual_source_rhs(dataset(), vsrc);
  req.lsqr.max_iters = iters;
  return req;
}

std::vector<float> reference_solve(const std::string& archive,
                                   serve::RequestKind kind, index_t vsrc,
                                   int iters) {
  const bool shared = io::peek_archive(archive).shared_basis;
  const auto op = shared
                      ? io::make_operator(io::load_shared_archive(archive))
                      : io::make_operator(io::load_archive(archive));
  const auto rhs = mdd::virtual_source_rhs(dataset(), vsrc);
  if (kind == serve::RequestKind::kAdjoint) {
    return mdd::adjoint_reflectivity(*op, rhs);
  }
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = iters;
  return mdd::solve_mdd(*op, rhs, lsqr).x;
}

// ------------------------------------------------------ cluster solve --

TEST(ClusterService, TlrShardedSolveMatchesSingleProcessBitwise) {
  auto fleet = make_fleet(3);
  ClusterConfig cfg;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  auto lsqr = service.submit(
      make_request(path, serve::RequestKind::kLsqr, 2, 6));
  auto adj = service.submit(
      make_request(path, serve::RequestKind::kAdjoint, 3, 6));

  const auto r1 = lsqr.response.get();
  const auto r2 = adj.response.get();
  ASSERT_EQ(r1.status, ClusterStatus::kOk) << r1.error;
  ASSERT_EQ(r2.status, ClusterStatus::kOk) << r2.error;
  EXPECT_TRUE(bitwise_equal(
      r1.x, reference_solve(path, serve::RequestKind::kLsqr, 2, 6)));
  EXPECT_TRUE(bitwise_equal(
      r2.x, reference_solve(path, serve::RequestKind::kAdjoint, 3, 6)));
  EXPECT_EQ(service.live_workers(), 3u);
}

TEST(ClusterService, HalfArchiveShardedSolveMatchesSingleProcessBitwise) {
  // Workers load their frequency slices of a packed fp16 archive; the
  // widened per-frequency arithmetic is identical to the single-process
  // operator over the same file, so the distributed solve stays bitwise.
  auto fleet = make_fleet(3);
  ClusterConfig cfg;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = half_archive_path();
  auto lsqr = service.submit(
      make_request(path, serve::RequestKind::kLsqr, 2, 6));
  auto adj = service.submit(
      make_request(path, serve::RequestKind::kAdjoint, 3, 6));

  const auto r1 = lsqr.response.get();
  const auto r2 = adj.response.get();
  ASSERT_EQ(r1.status, ClusterStatus::kOk) << r1.error;
  ASSERT_EQ(r2.status, ClusterStatus::kOk) << r2.error;
  EXPECT_TRUE(bitwise_equal(
      r1.x, reference_solve(path, serve::RequestKind::kLsqr, 2, 6)));
  EXPECT_TRUE(bitwise_equal(
      r2.x, reference_solve(path, serve::RequestKind::kAdjoint, 3, 6)));
}

TEST(ClusterService, SharedBasisShardedSolveMatchesSingleProcessBitwise) {
  auto fleet = make_fleet(3);
  ClusterConfig cfg;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = shared_archive_path();
  auto lsqr = service.submit(
      make_request(path, serve::RequestKind::kLsqr, 2, 6));
  auto adj = service.submit(
      make_request(path, serve::RequestKind::kAdjoint, 1, 6));
  const auto r1 = lsqr.response.get();
  const auto r2 = adj.response.get();
  ASSERT_EQ(r1.status, ClusterStatus::kOk) << r1.error;
  ASSERT_EQ(r2.status, ClusterStatus::kOk) << r2.error;
  EXPECT_TRUE(bitwise_equal(
      r1.x, reference_solve(path, serve::RequestKind::kLsqr, 2, 6)));
  EXPECT_TRUE(bitwise_equal(
      r2.x, reference_solve(path, serve::RequestKind::kAdjoint, 1, 6)));
}

TEST(ClusterService, ReplicatedSolveMatchesAndSurvivesReplicaDeath) {
  auto fleet = make_fleet(3);
  ClusterConfig cfg;
  cfg.planner.replicate_max_bytes = 1e12;  // everything fits -> replicate
  std::vector<LocalChannel*> channels = fleet.channels;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  const auto warm = service
                        .submit(make_request(path, serve::RequestKind::kLsqr,
                                             2, 6))
                        .response.get();
  ASSERT_EQ(warm.status, ClusterStatus::kOk) << warm.error;
  const auto ref = reference_solve(path, serve::RequestKind::kLsqr, 2, 6);
  EXPECT_TRUE(bitwise_equal(warm.x, ref));

  // Kill the first replica: the exchange fails over to a survivor and the
  // solve still completes bitwise identical.
  channels[0]->kill();
  const auto after = service
                         .submit(make_request(path, serve::RequestKind::kLsqr,
                                              2, 6))
                         .response.get();
  ASSERT_EQ(after.status, ClusterStatus::kOk) << after.error;
  EXPECT_TRUE(bitwise_equal(after.x, ref));
  EXPECT_EQ(service.live_workers(), 2u);
}

TEST(ClusterService, ShardedWorkerDeathIsTypedThenReplans) {
  auto fleet = make_fleet(2);
  ClusterConfig cfg;
  std::vector<LocalChannel*> channels = fleet.channels;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  const auto warm = service
                        .submit(make_request(path, serve::RequestKind::kLsqr,
                                             2, 6))
                        .response.get();
  ASSERT_EQ(warm.status, ClusterStatus::kOk) << warm.error;

  // A sharded placement has one replica per shard: killing a worker makes
  // the next solve fail typed (never hang)...
  channels[1]->kill();
  const auto failed = service
                          .submit(make_request(path,
                                               serve::RequestKind::kLsqr, 2,
                                               6))
                          .response.get();
  EXPECT_EQ(failed.status, ClusterStatus::kWorkerFailed);
  EXPECT_TRUE(failed.x.empty());

  // ...and the failure drops the cached placement, so the request after
  // that replans onto the survivor and succeeds bitwise.
  const auto replanned = service
                             .submit(make_request(
                                 path, serve::RequestKind::kLsqr, 2, 6))
                             .response.get();
  ASSERT_EQ(replanned.status, ClusterStatus::kOk) << replanned.error;
  EXPECT_TRUE(bitwise_equal(
      replanned.x, reference_solve(path, serve::RequestKind::kLsqr, 2, 6)));
}

TEST(ClusterService, CoalescedAdjointsMatchSingleProcessBitwise) {
  auto fleet = make_fleet(2);
  ClusterConfig cfg;
  cfg.max_batch = 4;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  std::vector<SubmittedRequest> handles;
  for (index_t v = 0; v < 3; ++v) {
    handles.push_back(service.submit(
        make_request(path, serve::RequestKind::kAdjoint, v, 6)));
  }
  for (index_t v = 0; v < 3; ++v) {
    auto resp = handles[static_cast<std::size_t>(v)].response.get();
    ASSERT_EQ(resp.status, ClusterStatus::kOk) << resp.error;
    EXPECT_TRUE(bitwise_equal(
        resp.x,
        reference_solve(path, serve::RequestKind::kAdjoint, v, 6)));
  }
}

TEST(ClusterService, MissingArchiveIsTyped) {
  auto fleet = make_fleet(2);
  ClusterService service(ClusterConfig{}, std::move(fleet.clients));
  auto resp = service
                  .submit(ClusterRequest{
                      serve::OperatorKey{"/nonexistent/archive.tlra", 0, 0.0},
                      serve::RequestKind::kAdjoint,
                      "",
                      0,
                      std::vector<float>(16, 0.0f),
                      {},
                      0.0})
                  .response.get();
  EXPECT_EQ(resp.status, ClusterStatus::kArchiveMissing);
}

TEST(ClusterService, TenantQuotaIsTypedAndReleased) {
  auto fleet = make_fleet(2);
  ClusterConfig cfg;
  cfg.frontend_workers = 1;
  cfg.tenant_quota = 1;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  auto blocked = make_request(path, serve::RequestKind::kLsqr, 2, 50);
  blocked.tenant = "acme";
  // Holds the solve in-flight (quota charged) until the gate opens.
  blocked.lsqr.should_stop = [gate] {
    gate.wait();
    return true;
  };
  auto first = service.submit(std::move(blocked));

  auto second = make_request(path, serve::RequestKind::kLsqr, 3, 6);
  second.tenant = "acme";
  const auto rejected = service.submit(std::move(second)).response.get();
  EXPECT_EQ(rejected.status, ClusterStatus::kQuotaExceeded);

  release.set_value();
  const auto done = first.response.get();
  EXPECT_EQ(done.status, ClusterStatus::kOk) << done.error;

  // Quota released on completion: the same tenant is admitted again.
  auto third = make_request(path, serve::RequestKind::kLsqr, 3, 6);
  third.tenant = "acme";
  EXPECT_EQ(service.submit(std::move(third)).response.get().status,
            ClusterStatus::kOk);
}

TEST(ClusterService, ExpiredDeadlineIsTyped) {
  auto fleet = make_fleet(2);
  ClusterService service(ClusterConfig{}, std::move(fleet.clients));
  auto req = make_request(tlr_archive_path(), serve::RequestKind::kLsqr, 2,
                          6);
  req.deadline_s = 1e-9;  // expired before the solver can dequeue it
  EXPECT_EQ(service.submit(std::move(req)).response.get().status,
            ClusterStatus::kDeadlineExceeded);
}

TEST(ClusterService, CancelledRequestIsTyped) {
  auto fleet = make_fleet(2);
  ClusterConfig cfg;
  cfg.frontend_workers = 1;
  cfg.max_batch = 1;
  ClusterService service(cfg, std::move(fleet.clients));

  const std::string& path = tlr_archive_path();
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = make_request(path, serve::RequestKind::kLsqr, 2, 50);
  blocker.lsqr.should_stop = [gate] {
    gate.wait();
    return true;
  };
  auto first = service.submit(std::move(blocker));

  // The victim sits behind the blocked solve; the cancel lands while it is
  // still queued, so it rejects at dequeue without touching a worker.
  auto victim = service.submit(
      make_request(path, serve::RequestKind::kLsqr, 3, 6));
  service.cancel(victim.request_id);
  release.set_value();
  EXPECT_EQ(victim.response.get().status, ClusterStatus::kCancelled);
  EXPECT_EQ(first.response.get().status, ClusterStatus::kOk);
}

TEST(ClusterService, MergedSnapshotCoversFrontendAndWorkers) {
  auto fleet = make_fleet(2);
  ClusterService service(ClusterConfig{}, std::move(fleet.clients));
  const auto resp =
      service
          .submit(make_request(tlr_archive_path(),
                               serve::RequestKind::kAdjoint, 2, 6))
          .response.get();
  ASSERT_EQ(resp.status, ClusterStatus::kOk) << resp.error;

  const auto snap = service.cluster_snapshot();
  EXPECT_GE(snap.counters.at("cluster.completed"), 1u);
  EXPECT_GE(snap.counters.at("worker.applies"), 1u);
  EXPECT_GE(snap.counters.at("worker.shards_loaded"), 2u);
  EXPECT_GT(snap.gauges.at("worker.frequencies_resident"), 0);
}

TEST(ClusterService, ShutdownAsksWorkersToExit) {
  auto fleet = make_fleet(2);
  std::vector<ShardWorker*> workers;
  for (auto& w : fleet.workers) workers.push_back(w.get());
  {
    ClusterService service(ClusterConfig{}, std::move(fleet.clients));
    const auto resp =
        service
            .submit(make_request(tlr_archive_path(),
                                 serve::RequestKind::kAdjoint, 2, 6))
            .response.get();
    ASSERT_EQ(resp.status, ClusterStatus::kOk) << resp.error;
    service.shutdown();
  }
  for (ShardWorker* w : workers) EXPECT_TRUE(w->shutdown_requested());
}

// ---------------------------------------------------- tracing & health --

TEST(Wire, TraceAndHealthMessagesRoundTrip) {
  TraceDumpMsg dump;
  dump.trace_id = 99;
  const auto d2 = TraceDumpMsg::from_frame(dump.to_frame());
  EXPECT_EQ(d2.trace_id, 99u);

  TraceDumpOkMsg dump_ok;
  dump_ok.trace_id = 99;
  dump_ok.dropped_spans = 5;
  dump_ok.spans.push_back({"worker.apply", 99, 7, 3, 123456789ull, 4200ull});
  dump_ok.spans.push_back({"worker.mvm q=4", 99, 8, 7, 123460000ull, 900ull});
  const auto do2 = TraceDumpOkMsg::from_frame(dump_ok.to_frame());
  EXPECT_EQ(do2.trace_id, 99u);
  EXPECT_EQ(do2.dropped_spans, 5u);
  ASSERT_EQ(do2.spans.size(), 2u);
  EXPECT_EQ(do2.spans[0].name, "worker.apply");
  EXPECT_EQ(do2.spans[1].name, "worker.mvm q=4");
  EXPECT_EQ(do2.spans[0].span_id, 7u);
  EXPECT_EQ(do2.spans[1].parent_span_id, 7u);
  EXPECT_EQ(do2.spans[0].ts_ns, 123456789ull);
  EXPECT_EQ(do2.spans[1].dur_ns, 900ull);

  (void)HealthMsg::from_frame(HealthMsg{}.to_frame());
  HealthOkMsg health;
  health.uptime_ns = 5'000'000'000ull;
  health.inflight = 2;
  health.applies = 40;
  health.resident_bytes = 1.5e6;
  health.streamed_bytes = 2.5e6;
  health.stall_s = 0.25;
  health.dropped_spans = 1;
  health.shards.push_back({3, 0, 16, 16, 1.5e6});
  const auto h2 = HealthOkMsg::from_frame(health.to_frame());
  EXPECT_EQ(h2.uptime_ns, health.uptime_ns);
  EXPECT_EQ(h2.inflight, 2u);
  EXPECT_EQ(h2.applies, 40u);
  EXPECT_DOUBLE_EQ(h2.resident_bytes, 1.5e6);
  EXPECT_DOUBLE_EQ(h2.streamed_bytes, 2.5e6);
  EXPECT_DOUBLE_EQ(h2.stall_s, 0.25);
  EXPECT_EQ(h2.dropped_spans, 1u);
  ASSERT_EQ(h2.shards.size(), 1u);
  EXPECT_EQ(h2.shards[0].shard_id, 3u);
  EXPECT_EQ(h2.shards[0].q_begin, 0);
  EXPECT_EQ(h2.shards[0].q_end, 16);
  EXPECT_EQ(h2.shards[0].num_freqs, 16u);
}

TEST(Wire, V1ApplyFramesDecodeWithDefaultedTrailers) {
  // A v1 peer's kApply frame is a v2 frame minus the 17-byte trace
  // trailer, with version 1 in the header. It must decode to an inactive
  // TraceContext — not an error, not garbage.
  ApplyMsg apply;
  apply.request_id = 11;
  apply.shard_id = 2;
  apply.nrhs = 1;
  apply.data = {cf32{1.0f, 2.0f}};
  apply.trace = {77, 5, true};
  Frame v1 = apply.to_frame();
  v1.payload.resize(v1.payload.size() - 17);  // u64 + u64 + u8 trailer
  const auto a1 = ApplyMsg::from_frame(v1);
  EXPECT_EQ(a1.request_id, 11u);
  EXPECT_EQ(a1.trace.trace_id, 0u);
  EXPECT_FALSE(a1.trace.active());
  ASSERT_EQ(a1.data.size(), 1u);

  // The same frame as raw bytes stamped with version 1 still passes the
  // transport-level version check (kMinWireVersion = 1).
  std::vector<std::uint8_t> bytes = encode_frame(v1);
  bytes[4] = 1;
  bytes[5] = 0;
  Frame out;
  EXPECT_EQ(decode_frame(bytes, out), bytes.size());
  // ...while a version from the future is rejected typed.
  bytes[4] = kWireVersion + 1;
  EXPECT_THROW((void)decode_frame(bytes, out), WireError);

  // The v2 frame (trailer intact) round-trips the context.
  const auto a2 = ApplyMsg::from_frame(apply.to_frame());
  EXPECT_EQ(a2.trace.trace_id, 77u);
  EXPECT_EQ(a2.trace.parent_span_id, 5u);
  EXPECT_TRUE(a2.trace.active());

  // ApplyOk: stripping the 16-byte clock trailer gives zeroed stamps (the
  // frontend's v1 signal: no clock sample, round trip attributed to RPC).
  ApplyOkMsg ok;
  ok.request_id = 11;
  ok.data = {cf32{0.5f, -0.5f}};
  ok.worker_recv_ns = 1000;
  ok.worker_send_ns = 2000;
  Frame ok_v1 = ok.to_frame();
  ok_v1.payload.resize(ok_v1.payload.size() - 16);
  const auto o1 = ApplyOkMsg::from_frame(ok_v1);
  EXPECT_EQ(o1.worker_recv_ns, 0u);
  EXPECT_EQ(o1.worker_send_ns, 0u);
  const auto o2 = ApplyOkMsg::from_frame(ok.to_frame());
  EXPECT_EQ(o2.worker_recv_ns, 1000u);
  EXPECT_EQ(o2.worker_send_ns, 2000u);
}

TEST(Wire, TraceAndHealthFramesRejectTruncationAndJunk) {
  TraceDumpOkMsg dump_ok;
  dump_ok.trace_id = 1;
  dump_ok.spans.push_back({"s", 1, 2, 0, 10, 5});
  HealthOkMsg health;
  health.shards.push_back({1, 0, 4, 4, 100.0});

  const std::vector<Frame> frames = {TraceDumpMsg{}.to_frame(),
                                     dump_ok.to_frame(), health.to_frame()};
  for (const Frame& f : frames) {
    const auto expect_rejected = [](const Frame& bad) {
      switch (static_cast<MsgType>(bad.type)) {
        case MsgType::kTraceDump:
          EXPECT_THROW((void)TraceDumpMsg::from_frame(bad), WireError);
          break;
        case MsgType::kTraceDumpOk:
          EXPECT_THROW((void)TraceDumpOkMsg::from_frame(bad), WireError);
          break;
        default:
          EXPECT_THROW((void)HealthOkMsg::from_frame(bad), WireError);
      }
    };
    // Every truncation point: checked reads throw, never over-read.
    for (std::size_t n = 0; n < f.payload.size(); ++n) {
      Frame cut = f;
      cut.payload.resize(n);
      expect_rejected(cut);
    }
    // Trailing junk after a complete payload is rejected too (these
    // messages have no optional trailer).
    Frame fat = f;
    fat.payload.push_back(0xAB);
    expect_rejected(fat);
  }

  // A span-count field lying past the end of the payload must not read.
  Frame lying = dump_ok.to_frame();
  lying.payload.resize(lying.payload.size() - 4);
  EXPECT_THROW((void)TraceDumpOkMsg::from_frame(lying), WireError);
}

TEST(ClusterService, TracedSolveProducesMergedTimeline) {
  auto fleet = make_fleet(2);
  ClusterService service(ClusterConfig{}, std::move(fleet.clients));

  auto req = make_request(tlr_archive_path(), serve::RequestKind::kLsqr, 1, 4);
  req.trace = true;
  const auto resp = service.submit(std::move(req)).response.get();
  ASSERT_EQ(resp.status, ClusterStatus::kOk) << resp.error;

  // One merged chrome://tracing document: single trace id (the request
  // id), frontend spans in pid 0, both workers' spans in pids 1 and 2.
  ASSERT_FALSE(resp.trace_json.empty());
  const std::string& json = resp.trace_json;
  const std::string id_key =
      "\"traceId\":\"" + std::to_string(resp.request_id) + "\"";
  EXPECT_NE(json.find(id_key), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_NE(json.find("frontend.rfft"), std::string::npos);
  EXPECT_NE(json.find("frontend.rpc shard="), std::string::npos);
  EXPECT_NE(json.find("worker.apply"), std::string::npos);
  EXPECT_NE(json.find("worker.mvm q="), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // No foreign trace ids leaked in from other requests.
  EXPECT_EQ(json.find("\"trace_id\":\"0\""), std::string::npos);

  // Per-stage attribution rode along: the solve spent time in LSQR, the
  // FFTs, the remote MVMs, and the RPC layer, and the stages are disjoint
  // slices (mvm+rpc is the fan-out, bounded by the whole LSQR loop).
  EXPECT_GT(resp.stages.lsqr_s, 0.0);
  EXPECT_GT(resp.stages.fft_s, 0.0);
  EXPECT_GT(resp.stages.mvm_s, 0.0);
  EXPECT_GE(resp.stages.rpc_s, 0.0);
  EXPECT_EQ(resp.stages.lsqr_iterations, resp.iterations);
  EXPECT_LE(resp.stages.mvm_s + resp.stages.rpc_s,
            resp.stages.lsqr_s + resp.stages.fft_s + 1e-6);

  // An untraced request pays nothing and carries no timeline...
  auto quiet =
      make_request(tlr_archive_path(), serve::RequestKind::kLsqr, 2, 4);
  const auto quiet_resp = service.submit(std::move(quiet)).response.get();
  ASSERT_EQ(quiet_resp.status, ClusterStatus::kOk);
  EXPECT_TRUE(quiet_resp.trace_json.empty());
  // ...but still gets stage attribution (always-on).
  EXPECT_GT(quiet_resp.stages.lsqr_s, 0.0);
}

TEST(ClusterService, FleetHealthReportsShardsBytesAndSlo) {
  auto fleet = make_fleet(2);
  ClusterConfig cfg;
  cfg.slo.latency_objective_s = 1e-9;  // everything breaches
  ClusterService service(cfg, std::move(fleet.clients));

  const auto resp =
      service
          .submit(make_request(tlr_archive_path(),
                               serve::RequestKind::kAdjoint, 2, 6))
          .response.get();
  ASSERT_EQ(resp.status, ClusterStatus::kOk) << resp.error;

  const auto health = service.fleet_health();
  ASSERT_EQ(health.size(), 2u);
  index_t total_freqs = 0;
  for (const auto& wh : health) {
    EXPECT_TRUE(wh.alive) << wh.name;
    EXPECT_GT(wh.health.applies, 0u) << wh.name;
    EXPECT_GT(wh.health.resident_bytes, 0.0) << wh.name;
    EXPECT_GT(wh.health.uptime_ns, 0u) << wh.name;
    ASSERT_FALSE(wh.health.shards.empty()) << wh.name;
    for (const auto& sh : wh.health.shards) {
      EXPECT_LT(sh.q_begin, sh.q_end);
      EXPECT_EQ(sh.q_end - sh.q_begin, static_cast<index_t>(sh.num_freqs));
      EXPECT_GT(sh.bytes, 0.0);
      total_freqs += static_cast<index_t>(sh.num_freqs);
    }
  }
  // Sharded placement: the two workers partition the frequency axis.
  const auto nf = io::peek_archive(tlr_archive_path()).num_freqs();
  EXPECT_EQ(total_freqs, nf);

  // The JSON fleet view and the SLO window agree with the poll above.
  const std::string json = service.fleet_health_json();
  EXPECT_NE(json.find("\"live_workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  const auto win = service.slo_window();
  EXPECT_GE(win.count, 1u);
  EXPECT_GE(win.breaches, 1u);  // 1ns objective: every request breaches
  EXPECT_GT(win.burn_rate, 0.0);

  // Fleet-wide Prometheus export merges every worker's registry with the
  // frontend's (worker counters appear once, summed).
  const std::string prom = service.fleet_prometheus_text();
  EXPECT_NE(prom.find("worker_applies"), std::string::npos);
  EXPECT_NE(prom.find("cluster_completed"), std::string::npos);
}

}  // namespace
}  // namespace tlrwse::cluster
