// Tests for the TLR-MVM kernels: 3-phase, fused (communication-avoiding),
// adjoint, and the complex-as-4-real split — all against the dense
// reference, across tile sizes and ragged shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {
namespace {

struct MvmSetup {
  la::MatrixCF dense;
  TlrMatrix<cf32> tlr;
  StackedTlr<cf32> stacks;
  std::vector<cf32> x;
  std::vector<cf32> y_ref;  // dense reconstruct * x (the kernels' target)

  MvmSetup(index_t m, index_t n, index_t nb, double acc = 1e-5)
      : dense(tlrwse::testing::oscillatory_matrix<cf32>(m, n, 11.0)),
        tlr(make_tlr(dense, nb, acc)),
        stacks(tlr) {
    Rng rng(m + n + nb);
    x = tlrwse::testing::random_vector<cf32>(rng, n);
    // Reference: exact MVM with the *reconstructed* TLR matrix, so kernel
    // comparisons are exact up to FP32 reassociation (no compression error).
    const auto rec = tlr.reconstruct();
    y_ref.resize(static_cast<std::size_t>(m));
    la::gemv(rec, std::span<const cf32>(x), std::span<cf32>(y_ref));
  }

  static TlrMatrix<cf32> make_tlr(const la::MatrixCF& a, index_t nb,
                                  double acc) {
    CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = acc;
    return compress_tlr(a, cfg);
  }
};

class MvmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MvmShapes, ThreePhaseMatchesDense) {
  const auto [m, n, nb] = GetParam();
  MvmSetup s(m, n, nb);
  const auto y = tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x));
  EXPECT_LT(tlrwse::testing::rel_error(y, s.y_ref), 1e-4);
}

TEST_P(MvmShapes, FusedMatchesDense) {
  const auto [m, n, nb] = GetParam();
  MvmSetup s(m, n, nb);
  const auto y = tlr_mvm_fused(s.stacks, std::span<const cf32>(s.x));
  EXPECT_LT(tlrwse::testing::rel_error(y, s.y_ref), 1e-4);
}

TEST_P(MvmShapes, FusedEqualsThreePhase) {
  const auto [m, n, nb] = GetParam();
  MvmSetup s(m, n, nb);
  const auto y3 = tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x));
  const auto yf = tlr_mvm_fused(s.stacks, std::span<const cf32>(s.x));
  // Same arithmetic, different order: FP32 reassociation tolerance only.
  EXPECT_LT(tlrwse::testing::rel_error(yf, y3), 1e-5);
}

TEST_P(MvmShapes, RealSplitMatchesComplex) {
  const auto [m, n, nb] = GetParam();
  MvmSetup s(m, n, nb);
  RealSplitStacks<float> split(s.stacks);
  std::vector<cf32> y(static_cast<std::size_t>(m));
  tlr_mvm_real_split(split, std::span<const cf32>(s.x), std::span<cf32>(y));
  const auto yf = tlr_mvm_fused(s.stacks, std::span<const cf32>(s.x));
  EXPECT_LT(tlrwse::testing::rel_error(y, yf), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MvmShapes,
    ::testing::Values(std::make_tuple(60, 40, 10),   // exact tiling
                      std::make_tuple(67, 45, 10),   // ragged both sides
                      std::make_tuple(30, 70, 16),   // wide
                      std::make_tuple(70, 30, 16),   // tall
                      std::make_tuple(25, 25, 70),   // single tile, nb > dims
                      std::make_tuple(96, 96, 24),
                      std::make_tuple(11, 7, 3),
                      // Production tile sizes: nb is a multiple of the
                      // 16-float SIMD pad (lda rounding degenerates to the
                      // identity) and one ragged shape per size where the
                      // edge tiles round up.
                      std::make_tuple(96, 80, 32),    // exact, nb = 2*pad
                      std::make_tuple(90, 75, 32),    // ragged edge tiles
                      std::make_tuple(128, 64, 64),   // exact, nb = 4*pad
                      std::make_tuple(130, 70, 64),   // ragged edge tiles
                      std::make_tuple(128, 128, 128), // single exact tile
                      std::make_tuple(140, 130, 128)));  // ragged both sides

TEST(TlrMvmAdjoint, MatchesDenseAdjoint) {
  MvmSetup s(50, 34, 8);
  Rng rng(9);
  const auto xa = tlrwse::testing::random_vector<cf32>(rng, 50);
  const auto y = tlr_mvm_adjoint(s.stacks, std::span<const cf32>(xa));
  const auto rec = s.tlr.reconstruct();
  std::vector<cf32> ref(34);
  la::gemv_adjoint(rec, std::span<const cf32>(xa), std::span<cf32>(ref));
  EXPECT_LT(tlrwse::testing::rel_error(y, ref), 1e-4);
}

TEST(TlrMvmAdjoint, DotTest) {
  // <A x, y> == <x, A^H y> — the property LSQR depends on.
  MvmSetup s(40, 28, 9);
  Rng rng(13);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 28);
  const auto y = tlrwse::testing::random_vector<cf32>(rng, 40);
  const auto ax = tlr_mvm_fused(s.stacks, std::span<const cf32>(x));
  const auto aty = tlr_mvm_adjoint(s.stacks, std::span<const cf32>(y));
  const auto lhs = la::dot(std::span<const cf32>(ax), std::span<const cf32>(y));
  const auto rhs = la::dot(std::span<const cf32>(x), std::span<const cf32>(aty));
  EXPECT_LT(std::abs(lhs - rhs), 1e-3 * (std::abs(lhs) + 1.0f));
}

TEST(TlrMvm, WorkspaceReuseAcrossCalls) {
  MvmSetup s(48, 32, 8);
  MvmWorkspace<cf32> ws;
  std::vector<cf32> y1(48), y2(48);
  tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x), std::span<cf32>(y1), ws);
  tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x), std::span<cf32>(y2), ws);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
  // And the fused kernel can reuse the same workspace object.
  tlr_mvm_fused(s.stacks, std::span<const cf32>(s.x), std::span<cf32>(y2), ws);
  EXPECT_LT(tlrwse::testing::rel_error(y2, y1), 1e-5);
}

TEST(TlrMvm, SizeValidation) {
  MvmSetup s(20, 12, 5);
  MvmWorkspace<cf32> ws;
  std::vector<cf32> bad_x(5), y(20);
  EXPECT_THROW(tlr_mvm_fused(s.stacks, std::span<const cf32>(bad_x),
                             std::span<cf32>(y), ws),
               std::invalid_argument);
}

TEST(TlrMvm, LinearityProperty) {
  MvmSetup s(36, 24, 6);
  Rng rng(21);
  const auto x1 = tlrwse::testing::random_vector<cf32>(rng, 24);
  const auto x2 = tlrwse::testing::random_vector<cf32>(rng, 24);
  std::vector<cf32> x_sum(24);
  for (std::size_t i = 0; i < 24; ++i) x_sum[i] = x1[i] + x2[i];
  const auto y1 = tlr_mvm_fused(s.stacks, std::span<const cf32>(x1));
  const auto y2 = tlr_mvm_fused(s.stacks, std::span<const cf32>(x2));
  const auto ys = tlr_mvm_fused(s.stacks, std::span<const cf32>(x_sum));
  std::vector<cf32> y12(36);
  for (std::size_t i = 0; i < 36; ++i) y12[i] = y1[i] + y2[i];
  EXPECT_LT(tlrwse::testing::rel_error(ys, y12), 1e-5);
}

TEST(StackedTlr, OffsetsAreConsistent) {
  MvmSetup s(50, 40, 10);
  const auto& g = s.stacks.grid();
  for (index_t j = 0; j < g.nt(); ++j) {
    index_t expected = 0;
    for (index_t i = 0; i < g.mt(); ++i) {
      EXPECT_EQ(s.stacks.v_offset(i, j), expected);
      EXPECT_EQ(s.stacks.rank(i, j), s.tlr.rank(i, j));
      expected += s.tlr.rank(i, j);
    }
    EXPECT_EQ(s.stacks.col_rank_sum(j), expected);
    EXPECT_EQ(s.stacks.v_stack(j).rows(), expected);
    EXPECT_EQ(s.stacks.v_stack(j).cols(), g.tile_cols(j));
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    index_t expected = 0;
    for (index_t j = 0; j < g.nt(); ++j) {
      EXPECT_EQ(s.stacks.u_offset(i, j), expected);
      expected += s.tlr.rank(i, j);
    }
    EXPECT_EQ(s.stacks.row_rank_sum(i), expected);
    EXPECT_EQ(s.stacks.u_stack(i).cols(), expected);
    EXPECT_EQ(s.stacks.u_stack(i).rows(), g.tile_rows(i));
  }
}

}  // namespace
}  // namespace tlrwse::tlr
