// Tests for the BSP (IPU) execution model of the 3-phase kernel.
#include <gtest/gtest.h>

#include "tlrwse/wse/bsp.hpp"

namespace tlrwse::wse {
namespace {

class FlatSource final : public RankSource {
 public:
  FlatSource(index_t rows, index_t cols, index_t nb, index_t nf, index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
    std::vector<index_t> r(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        r[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            rank_, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return r;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

TEST(Bsp, AllPhasesContribute) {
  FlatSource src(700, 490, 70, 4, 10);
  const IpuSpec spec;
  const auto rep = simulate_bsp_3phase(src, spec);
  EXPECT_GE(rep.devices, 1);
  EXPECT_GT(rep.compute_sec, 0.0);
  EXPECT_GT(rep.exchange_sec, 0.0);
  EXPECT_GT(rep.barrier_sec, 0.0);
  EXPECT_NEAR(rep.total_sec,
              rep.compute_sec + rep.exchange_sec + rep.barrier_sec, 1e-15);
  EXPECT_GT(rep.sync_fraction(), 0.0);
  EXPECT_LT(rep.sync_fraction(), 1.0);
}

TEST(Bsp, MoreDataMoreDevices) {
  const IpuSpec spec;
  FlatSource small(700, 490, 70, 1, 10);
  FlatSource big(7000, 4900, 70, 8, 30);
  const auto rs = simulate_bsp_3phase(small, spec);
  const auto rb = simulate_bsp_3phase(big, spec);
  EXPECT_GE(rb.devices, rs.devices);
  EXPECT_GT(rb.compute_sec, 0.0);
}

TEST(Bsp, CrossDevicePenaltyKicksInAtScale) {
  // A dataset that spills past one IPU pays the inter-device exchange
  // penalty: exchange time per byte rises.
  const IpuSpec spec;
  FlatSource small(700, 490, 70, 1, 4);
  FlatSource big(7000, 4900, 70, 10, 40);
  const auto rs = simulate_bsp_3phase(small, spec);
  const auto rb = simulate_bsp_3phase(big, spec);
  if (rs.devices == 1 && rb.devices > 1) {
    // Per-device-normalised exchange throughput is worse for the big run.
    const double small_rate = rs.exchange_sec * 1.0;
    EXPECT_GT(rb.exchange_sec, small_rate);
  }
  EXPECT_GE(rb.sync_fraction(), 0.0);
}

TEST(Bsp, BarrierFloorDominatesTinyWorkloads) {
  // For a minuscule dataset the three barriers dominate: the BSP floor the
  // paper's communication-avoiding CS-2 layout never pays.
  FlatSource tiny(70, 70, 70, 1, 2);
  const IpuSpec spec;
  const auto rep = simulate_bsp_3phase(tiny, spec);
  EXPECT_GT(rep.barrier_sec / rep.total_sec, 0.5);
}

TEST(Bsp, InvalidSpecThrows) {
  FlatSource src(70, 70, 70, 1, 2);
  IpuSpec bad;
  bad.tiles = 0;
  EXPECT_THROW((void)simulate_bsp_3phase(src, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::wse
