// Tests for the power model calibration (paper Sec. 7.6).
#include <gtest/gtest.h>

#include "tlrwse/wse/power.hpp"

namespace tlrwse::wse {
namespace {

TEST(Power, TlrMvmWorkloadNear16kW) {
  const PowerModel p;
  const WseSpec spec;
  // Full wafer busy, no fabric traffic (communication-avoiding layout).
  const double kw = p.system_power_kw(spec.usable_pes(), false);
  EXPECT_NEAR(kw, 16.0, 1.0);
}

TEST(Power, StencilWorkloadNear23kW) {
  const PowerModel p;
  const WseSpec spec;
  // Stencil updates keep the fabric hot (Jacquelin et al. [25]).
  const double kw = p.system_power_kw(spec.usable_pes(), true);
  EXPECT_NEAR(kw, 23.0, 1.5);
}

TEST(Power, IdleSystemIsBaseOnly) {
  const PowerModel p;
  EXPECT_DOUBLE_EQ(p.system_power_kw(0, false), p.base_kw);
}

TEST(Power, EfficiencyNearPaperFigure) {
  const PowerModel p;
  const WseSpec spec;
  // Table 3, nb = 25: 3.77 PFlop/s over six systems -> per the paper's
  // measurement, ~36.5 GFlop/s/W.
  const double eff =
      p.efficiency_gflops_per_watt(3.77e15, 6, spec.usable_pes(), false);
  EXPECT_NEAR(eff, 36.5, 6.0);
}

TEST(Power, FabricTrafficReducesEfficiency) {
  const PowerModel p;
  const WseSpec spec;
  const double quiet =
      p.efficiency_gflops_per_watt(1e15, 1, spec.usable_pes(), false);
  const double hot =
      p.efficiency_gflops_per_watt(1e15, 1, spec.usable_pes(), true);
  EXPECT_GT(quiet, hot);
}

TEST(Power, ZeroPowerGuard) {
  PowerModel p;
  p.base_kw = 0.0;
  p.pe_active_mw = 0.0;
  EXPECT_EQ(p.efficiency_gflops_per_watt(1e12, 1, 0, false), 0.0);
}

}  // namespace
}  // namespace tlrwse::wse
