// Unit tests for the MDD quality metrics.
#include <gtest/gtest.h>

#include <vector>

#include "tlrwse/mdd/metrics.hpp"

namespace tlrwse::mdd {
namespace {

TEST(Nmse, ZeroForIdenticalSignals) {
  const std::vector<float> a{1.0f, -2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(nmse(a, a), 0.0);
}

TEST(Nmse, KnownValue) {
  const std::vector<float> ref{3.0f, 4.0f};   // ||ref||^2 = 25
  const std::vector<float> est{3.0f, 9.0f};   // diff^2 = 25
  EXPECT_DOUBLE_EQ(nmse(est, ref), 1.0);
}

TEST(Nmse, ScaleSensitivity) {
  const std::vector<float> ref{1.0f, 1.0f};
  const std::vector<float> half{0.5f, 0.5f};
  EXPECT_DOUBLE_EQ(nmse(half, ref), 0.25);
}

TEST(Nmse, MismatchedSizesThrow) {
  EXPECT_THROW((void)nmse(std::vector<float>{1.0f}, std::vector<float>{1.0f, 2.0f}),
               std::invalid_argument);
}

TEST(NmseChange, PercentFormula) {
  EXPECT_DOUBLE_EQ(nmse_change_percent(0.11, 0.10), 10.0);
  EXPECT_DOUBLE_EQ(nmse_change_percent(0.10, 0.10), 0.0);
  EXPECT_DOUBLE_EQ(nmse_change_percent(0.05, 0.0), 0.0);  // guarded
}

TEST(Energy, SumsSquares) {
  const std::vector<float> v{1.0f, 2.0f, -2.0f};
  EXPECT_DOUBLE_EQ(energy(v), 9.0);
  EXPECT_DOUBLE_EQ(energy(std::vector<float>{}), 0.0);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> b{2.0f, 4.0f, 6.0f, 8.0f};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(correlation(a, b), -1.0, 1e-12);
}

TEST(Correlation, MeanInvariance) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{101.0f, 102.0f, 103.0f};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-9);
}

TEST(Correlation, ZeroVarianceIsZero) {
  const std::vector<float> a{1.0f, 1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(correlation(a, b), 0.0);
}

}  // namespace
}  // namespace tlrwse::mdd
