// Tests for the cluster simulator: spec constants, occupancy accounting,
// strategy semantics, stack-width tuning, and the Fig. 14 saturation
// behaviour of the calibrated cost model.
#include <gtest/gtest.h>

#include "tlrwse/wse/machine.hpp"
#include "tlrwse/wse/power.hpp"

namespace tlrwse::wse {
namespace {

class GridSource final : public RankSource {
 public:
  GridSource(index_t rows, index_t cols, index_t nb, index_t nf, index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
    std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            rank_, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return ranks;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

TEST(WseSpec, PaperConstants) {
  const WseSpec spec;
  EXPECT_EQ(spec.usable_pes(), 745500);
  EXPECT_EQ(spec.usable_pes() * 48, 35784000);  // Sec. 2 "System scale"
  EXPECT_EQ(spec.sram_bytes_per_pe, 48 * 1024);
  EXPECT_EQ(spec.sram_banks * spec.bank_bytes, spec.sram_bytes_per_pe);
  EXPECT_DOUBLE_EQ(spec.clock_hz, 850e6);
}

TEST(Simulate, BasicInvariants) {
  GridSource src(700, 500, 50, 4, 8);
  ClusterConfig cfg;
  cfg.stack_width = 32;
  const auto rep = simulate_cluster(src, cfg);
  EXPECT_GT(rep.chunks, 0);
  EXPECT_EQ(rep.pes_used, rep.chunks);  // strategy 1
  EXPECT_GT(rep.worst_cycles, 0.0);
  EXPECT_GT(rep.relative_bytes, 0.0);
  EXPECT_GT(rep.absolute_bytes, rep.relative_bytes);
  EXPECT_GT(rep.occupancy, 0.0);
  EXPECT_LE(rep.occupancy, 1.0 + 1e-12);
  EXPECT_TRUE(rep.fits_sram);
  EXPECT_NEAR(rep.relative_bw,
              rep.relative_bytes * cfg.spec.clock_hz / rep.worst_cycles, 1.0);
}

TEST(Simulate, Strategy2UsesEightfoldPesAndRunsFaster) {
  GridSource src(700, 500, 50, 4, 8);
  ClusterConfig s1;
  s1.stack_width = 32;
  s1.strategy = Strategy::kSplitStackWidth;
  ClusterConfig s2 = s1;
  s2.strategy = Strategy::kScatterRealMvms;
  const auto r1 = simulate_cluster(src, s1);
  const auto r2 = simulate_cluster(src, s2);
  EXPECT_EQ(r2.pes_used, 8 * r1.pes_used);
  EXPECT_LT(r2.worst_cycles, r1.worst_cycles);
  // The scatter interleaves the eight column streams, so each PE carries
  // the balanced 1/8 share of the batch and the per-MVM prologue folds
  // into the single launch. Efficiency vs the ideal 8x split stays near 1
  // and may marginally exceed it (the paper's Tables 2+5 imply 8.015x on
  // the nb = 70 headline run); the launch overhead keeps it bounded.
  const double eff = r1.worst_cycles / (8.0 * r2.worst_cycles);
  EXPECT_GT(eff, 0.9);
  EXPECT_LE(eff, 1.1);
  // Same total traffic is counted in both strategies.
  EXPECT_NEAR(r2.relative_bytes / r1.relative_bytes, 1.0, 1e-12);
}

TEST(Simulate, SmallerStackWidthMorePesLessWorstCycles) {
  GridSource src(700, 500, 50, 2, 10);
  ClusterConfig wide;
  wide.stack_width = 64;
  ClusterConfig narrow = wide;
  narrow.stack_width = 16;
  const auto rw = simulate_cluster(src, wide);
  const auto rn = simulate_cluster(src, narrow);
  EXPECT_GT(rn.pes_used, rw.pes_used);
  EXPECT_LT(rn.worst_cycles, rw.worst_cycles);
  EXPECT_GT(rn.relative_bw, rw.relative_bw);  // strong scaling
}

TEST(Simulate, SystemsOverrideControlsOccupancy) {
  GridSource src(300, 200, 50, 2, 6);
  ClusterConfig cfg;
  cfg.stack_width = 8;
  cfg.systems = 2;
  const auto rep = simulate_cluster(src, cfg);
  EXPECT_EQ(rep.systems, 2);
  const auto rep_auto = simulate_cluster(
      src, {cfg.spec, cfg.cost, cfg.stack_width, cfg.strategy, 0});
  EXPECT_EQ(rep_auto.systems, 1);
  EXPECT_GT(rep_auto.occupancy, rep.occupancy);
}

TEST(Simulate, ParallelEfficiencyDefinition) {
  GridSource src(700, 500, 50, 4, 8);
  ClusterConfig wide;
  wide.stack_width = 64;
  ClusterConfig narrow = wide;
  narrow.stack_width = 32;
  const auto rw = simulate_cluster(src, wide);
  const auto rn = simulate_cluster(src, narrow);
  const double eff = rn.parallel_efficiency_vs(rw);
  EXPECT_GT(eff, 0.5);
  EXPECT_LT(eff, 1.2);
}

TEST(ChooseStackWidth, SmallestThatFits) {
  GridSource src(700, 500, 50, 4, 8);
  const WseSpec spec;
  const index_t sw =
      choose_stack_width(src, spec, 1, Strategy::kSplitStackWidth, 128);
  ASSERT_GT(sw, 0);
  // sw fits; sw - 1 (if valid) must overflow the machine.
  EXPECT_LE(count_chunks(src, sw), spec.usable_pes());
  if (sw > 1) {
    EXPECT_GT(count_chunks(src, sw - 1), spec.usable_pes());
  }
}

TEST(ChooseStackWidth, ZeroWhenNothingFits) {
  GridSource src(70000, 50000, 50, 20, 30);  // enormous demand
  WseSpec tiny = WseSpec{};
  tiny.usable_rows = 10;
  tiny.usable_cols = 10;
  EXPECT_EQ(choose_stack_width(src, tiny, 1, Strategy::kSplitStackWidth, 8),
            0);
}

TEST(ConstantBatch, Fig14SaturationBehaviour) {
  const WseSpec spec;
  const CostModelParams cost;
  // Small N: overhead-dominated, low bandwidth. Large N: saturates near
  // 2 PB/s relative, with absolute ~3x relative (Fig. 14).
  const auto small = simulate_constant_batch(spec, cost, 8);
  const auto large = simulate_constant_batch(spec, cost, 256);
  EXPECT_LT(small.relative_bw, large.relative_bw);
  EXPECT_GT(large.relative_bw, 1.5e15);
  EXPECT_LT(large.relative_bw, 3.0e15);
  EXPECT_NEAR(large.absolute_bw / large.relative_bw, 3.0, 0.25);
  // Monotone saturation.
  double prev = 0.0;
  for (index_t n : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const auto pt = simulate_constant_batch(spec, cost, n);
    EXPECT_GE(pt.relative_bw, prev * 0.999);
    prev = pt.relative_bw;
  }
}

TEST(CostModel, MvmCyclesFormula) {
  const CostModelParams p;
  EXPECT_DOUBLE_EQ(mvm_cycles(p, 100.0, 10.0),
                   1.25 * 100 + 6.0 * 10 + 150.0);
}

TEST(CostModel, PaddedArrayBytes) {
  EXPECT_EQ(padded_array_bytes(1), 32);
  EXPECT_EQ(padded_array_bytes(16), 32);
  EXPECT_EQ(padded_array_bytes(17), 48);
  EXPECT_EQ(padded_array_bytes(0), 16);
}

}  // namespace
}  // namespace tlrwse::wse
