// Tests for operator combinators and the time-gated MDD preconditioner.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/mdc/combinators.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/mdd/preconditioner.hpp"

namespace tlrwse::mdc {
namespace {

class DenseOp final : public LinearOperator {
 public:
  explicit DenseOp(la::MatrixF a) : a_(std::move(a)) {}
  [[nodiscard]] index_t rows() const override { return a_.rows(); }
  [[nodiscard]] index_t cols() const override { return a_.cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    la::gemv(a_, x, y);
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    la::gemv_adjoint(a_, y, x);
  }

 private:
  la::MatrixF a_;
};

std::shared_ptr<DenseOp> random_op(Rng& rng, index_t m, index_t n) {
  return std::make_shared<DenseOp>(
      tlrwse::testing::random_matrix<float>(rng, m, n));
}

void dot_test(const LinearOperator& op, Rng& rng, double tol = 1e-3) {
  std::vector<float> x(static_cast<std::size_t>(op.cols()));
  std::vector<float> y(static_cast<std::size_t>(op.rows()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  std::vector<float> ax(y.size()), aty(x.size());
  op.apply(x, std::span<float>(ax));
  op.apply_adjoint(y, std::span<float>(aty));
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += double(ax[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, tol * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

TEST(Chain, MatchesManualComposition) {
  Rng rng(3);
  auto a = random_op(rng, 7, 5);
  auto b = random_op(rng, 5, 9);
  const auto c = chain(a, b);
  EXPECT_EQ(c->rows(), 7);
  EXPECT_EQ(c->cols(), 9);
  std::vector<float> x(9);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> mid(5), y1(7), y2(7);
  b->apply(x, std::span<float>(mid));
  a->apply(mid, std::span<float>(y1));
  c->apply(x, std::span<float>(y2));
  for (std::size_t i = 0; i < 7; ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  dot_test(*c, rng);
}

TEST(Chain, RejectsDimensionMismatch) {
  Rng rng(5);
  EXPECT_THROW(ChainedOperator(random_op(rng, 7, 5), random_op(rng, 4, 9)),
               std::invalid_argument);
}

TEST(Sum, AddsActions) {
  Rng rng(7);
  auto a = random_op(rng, 6, 4);
  auto b = random_op(rng, 6, 4);
  const auto s = sum(a, b);
  std::vector<float> x(4);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> ya(6), yb(6), ys(6);
  a->apply(x, std::span<float>(ya));
  b->apply(x, std::span<float>(yb));
  s->apply(x, std::span<float>(ys));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(ys[i], ya[i] + yb[i], 1e-5);
  dot_test(*s, rng);
}

TEST(Sum, RejectsShapeMismatch) {
  Rng rng(9);
  EXPECT_THROW(SumOperator(random_op(rng, 6, 4), random_op(rng, 6, 5)),
               std::invalid_argument);
}

TEST(Scaled, ScalesBothDirections) {
  Rng rng(11);
  auto a = random_op(rng, 5, 5);
  const auto s = scaled(a, -2.5f);
  std::vector<float> x(5);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> ya(5), ys(5);
  a->apply(x, std::span<float>(ya));
  s->apply(x, std::span<float>(ys));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(ys[i], -2.5f * ya[i]);
  dot_test(*s, rng);
}

TEST(Diagonal, MasksAndIsSelfAdjoint) {
  DiagonalOperator d({1.0f, 0.0f, 2.0f});
  std::vector<float> x{3.0f, 4.0f, 5.0f}, y(3);
  d.apply(x, std::span<float>(y));
  EXPECT_EQ(y, (std::vector<float>{3.0f, 0.0f, 10.0f}));
  Rng rng(13);
  dot_test(d, rng, 1e-6);
}

TEST(Identity, PassesThrough) {
  IdentityOperator id(4);
  std::vector<float> x{1, 2, 3, 4}, y(4);
  id.apply(x, std::span<float>(y));
  EXPECT_EQ(x, y);
  EXPECT_THROW(IdentityOperator(0), std::invalid_argument);
}

TEST(Combinators, NestedCompositeIsConsistent) {
  // (2A + I*B-chain) style composite still passes the dot test.
  Rng rng(17);
  auto a = random_op(rng, 6, 6);
  auto b = random_op(rng, 6, 6);
  const auto composite = sum(scaled(a, 2.0f), chain(a, b));
  dot_test(*composite, rng);
}

}  // namespace
}  // namespace tlrwse::mdc

namespace tlrwse::mdd {
namespace {

const seismic::SeismicDataset& gate_dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(10, 8, 8, 6);
    // 2 s window: the deepest primary (~1.2 s two-way) must fit, or its
    // circular-FFT wraparound lands before the causality gate opens.
    cfg.nt = 512;
    cfg.f_min = 4.0;
    cfg.f_max = 35.0;
    cfg.water_multiples = 2;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

TEST(CausalityGate, ZeroEarlyOneLate) {
  const auto& data = gate_dataset();
  const index_t v = data.num_receivers() / 2;
  const auto gate = causality_gate(data, v);
  ASSERT_EQ(gate.size(),
            static_cast<std::size_t>(data.config.nt * data.num_receivers()));
  // At t = 0 the gate is closed everywhere; at the end it is open.
  const index_t nt = data.config.nt;
  for (index_t r = 0; r < data.num_receivers(); ++r) {
    EXPECT_EQ(gate[static_cast<std::size_t>(r * nt)], 0.0f);
    EXPECT_EQ(gate[static_cast<std::size_t>(r * nt + nt - 1)], 1.0f);
    // Monotone non-decreasing ramp.
    for (index_t t = 1; t < nt; ++t) {
      EXPECT_GE(gate[static_cast<std::size_t>(r * nt + t)],
                gate[static_cast<std::size_t>(r * nt + t - 1)] - 1e-6f);
    }
  }
}

TEST(CausalityGate, OpensLaterAtLargerOffset) {
  const auto& data = gate_dataset();
  const index_t v = 0;
  const auto gate = causality_gate(data, v);
  const index_t nt = data.config.nt;
  auto open_time = [&](index_t r) {
    for (index_t t = 0; t < nt; ++t) {
      if (gate[static_cast<std::size_t>(r * nt + t)] > 0.0f) return t;
    }
    return nt;
  };
  // The most distant receiver opens no earlier than the virtual source
  // itself.
  index_t far = 0;
  double dmax = -1.0;
  for (index_t r = 0; r < data.num_receivers(); ++r) {
    const double d = seismic::horizontal_distance(
        data.receiver_pos[static_cast<std::size_t>(v)],
        data.receiver_pos[static_cast<std::size_t>(r)]);
    if (d > dmax) {
      dmax = d;
      far = r;
    }
  }
  EXPECT_GE(open_time(far), open_time(v));
}

TEST(GatedMdd, UsableSolutionConfinedToTheGate) {
  // On clean consistent data the un-gated solve is already near-exact, and
  // the gate clips part of the band-limited wavelet's precursor, so the
  // gate is NOT expected to win here — its claims are support control and
  // robustness (next test). This test checks the former.
  const auto& data = gate_dataset();
  const index_t v = data.num_receivers() / 2;
  const auto rhs = virtual_source_rhs(data, v);
  const auto truth = true_reflectivity_traces(data, v);
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  const auto op = make_mdc_operator(data, KernelBackend::kTlrFused, cc);

  LsqrConfig lsqr;
  lsqr.max_iters = 15;
  const auto gate = causality_gate(data, v);
  const auto gated = solve_mdd_gated(*op, rhs, gate, lsqr);

  EXPECT_LT(nmse(gated.x, truth), 0.15);  // usable solution
  // The gated solution is exactly zero where the gate is closed.
  for (std::size_t i = 0; i < gate.size(); ++i) {
    if (gate[i] == 0.0f) {
      EXPECT_EQ(gated.x[i], 0.0f);
    }
  }
}

TEST(GatedMdd, SuppressesAcausalNoiseEnergy) {
  // The Vargas-style benefit: with noisy data, the un-gated solution leaks
  // energy into acausal times (where the truth is identically zero); the
  // gate forbids that part of the model space entirely.
  const auto& data = gate_dataset();
  const index_t v = data.num_receivers() / 2;
  auto rhs = virtual_source_rhs(data, v);
  const auto truth = true_reflectivity_traces(data, v);

  // 20% RMS Gaussian noise on the observed data.
  double rms = 0.0;
  for (float x : rhs) rms += static_cast<double>(x) * x;
  rms = std::sqrt(rms / static_cast<double>(rhs.size()));
  Rng rng(99);
  for (float& x : rhs) {
    x += static_cast<float>(0.2 * rms * rng.normal());
  }

  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  const auto op = make_mdc_operator(data, KernelBackend::kTlrFused, cc);
  LsqrConfig lsqr;
  lsqr.max_iters = 15;
  const auto plain = solve_mdd(*op, rhs, lsqr);
  const auto gate = causality_gate(data, v);
  const auto gated = solve_mdd_gated(*op, rhs, gate, lsqr);

  // Acausal energy (where the gate is closed, i.e. where the truth lives
  // at zero): plain leaks, gated is zero by construction.
  double plain_acausal = 0.0;
  for (std::size_t i = 0; i < gate.size(); ++i) {
    if (gate[i] == 0.0f) {
      plain_acausal += static_cast<double>(plain.x[i]) * plain.x[i];
    }
  }
  EXPECT_GT(plain_acausal, 0.0);
  double gated_acausal = 0.0;
  for (std::size_t i = 0; i < gate.size(); ++i) {
    if (gate[i] == 0.0f) {
      gated_acausal += static_cast<double>(gated.x[i]) * gated.x[i];
    }
  }
  EXPECT_EQ(gated_acausal, 0.0);
  // And the gated solution stays competitive overall on noisy data.
  EXPECT_LT(nmse(gated.x, truth), nmse(plain.x, truth) * 2.0);
}

TEST(GatedMdd, GateSizeValidated) {
  const auto& data = gate_dataset();
  const index_t v = 1;
  const auto rhs = virtual_source_rhs(data, v);
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-3;
  const auto op = make_mdc_operator(data, KernelBackend::kTlrFused, cc);
  std::vector<float> bad_gate(5, 1.0f);
  EXPECT_THROW((void)solve_mdd_gated(*op, rhs, bad_gate, LsqrConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::mdd
