// Out-of-core streaming tests: StreamPlan compilation and next-use
// arithmetic, typed budget rejection, bitwise parity of streamed solves
// against fully resident operators (TLRA, TLRS, and injected dense
// kernels; Belady and LRU eviction), hostile streams (archive truncated
// mid-shard, archive deleted between loads — typed kIo, never a hang),
// cancellation during a prefetch stall, concurrent sweeps over one
// streamer, and the serve-layer streamed-resident entries.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "test_helpers.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/oocache/streamed_operator.hpp"
#include "tlrwse/serve/solve_service.hpp"

namespace tlrwse::oocache {
namespace {

struct TempFile {
  std::string path;
  // The pid keeps concurrent ctest shards of this binary (each TEST runs
  // as its own process) from clobbering each other's fixture files.
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() /
              (std::to_string(::getpid()) + "." + name))
                 .string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

tlr::CompressionConfig cc() {
  tlr::CompressionConfig c;
  c.nb = 12;
  c.acc = 1e-4;
  return c;
}

/// One TLRA archive on disk, shared by every streaming test (built once).
const std::string& tlra_path() {
  static const TempFile file("tlrwse_oocache.tlra");
  static const bool built = [] {
    io::save_archive(file.path, io::build_archive(dataset(), cc()));
    return true;
  }();
  (void)built;
  return file.path;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// --- StreamPlan -------------------------------------------------------------

TEST(StreamPlan, PacksGranulesToHalfBudget) {
  const std::vector<double> bytes(8, 10.0);
  const std::vector<index_t> freqs(8, 1);
  StreamPlanConfig cfg;
  cfg.budget_bytes = 40.0;  // target 20 -> 2 granules per shard
  const StreamPlan plan = compile_stream_plan(bytes, freqs, cfg);
  ASSERT_EQ(plan.num_shards(), 4);
  for (index_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.shard(s).bytes, 20.0);
    EXPECT_EQ(plan.shard(s).q_end - plan.shard(s).q_begin, 2);
  }
  EXPECT_EQ(plan.num_freqs(), 8);
  EXPECT_EQ(plan.total_bytes(), 80.0);
  EXPECT_EQ(plan.window_bytes(), 40.0);  // any adjacent pair
}

TEST(StreamPlan, OversizedGranuleBecomesItsOwnShard) {
  const std::vector<double> bytes{50.0, 10.0, 10.0};
  const std::vector<index_t> freqs{2, 1, 1};
  StreamPlanConfig cfg;
  cfg.budget_bytes = 40.0;  // target max(20, 50) = 50
  const StreamPlan plan = compile_stream_plan(bytes, freqs, cfg);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.shard(0).bytes, 50.0);
  EXPECT_EQ(plan.shard(1).bytes, 20.0);
  EXPECT_EQ(plan.shard(0).q_end, 2);
  EXPECT_EQ(plan.shard(1).q_end, 4);
  // Cyclic window wraps: shard 1 + shard 0 of the next sweep.
  EXPECT_EQ(plan.window_bytes(), 70.0);
}

TEST(StreamPlan, NextUseWalksTheCyclicSweep) {
  const std::vector<double> bytes(4, 1.0);
  const std::vector<index_t> freqs(4, 1);
  StreamPlanConfig cfg;
  cfg.budget_bytes = 2.0;  // one granule per shard
  const StreamPlan plan = compile_stream_plan(bytes, freqs, cfg);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.shard_at_step(0), 0);
  EXPECT_EQ(plan.shard_at_step(5), 1);
  EXPECT_EQ(plan.next_use(1, 5), 5u);  // due right now
  EXPECT_EQ(plan.next_use(2, 5), 6u);
  EXPECT_EQ(plan.next_use(0, 5), 8u);  // wraps into the next sweep
}

TEST(StreamPlan, RejectsNonPartitionShards) {
  std::vector<StreamShard> shards(2);
  shards[0] = StreamShard{0, 2, 0, 1, 1.0};
  shards[1] = StreamShard{3, 4, 1, 2, 1.0};  // gap: q 2 unowned
  StreamPlanConfig cfg;
  cfg.budget_bytes = 4.0;
  EXPECT_THROW(StreamPlan(std::move(shards), cfg), std::invalid_argument);
}

TEST(StreamPlan, ArchiveExtentsPeekFeedsThePlanner) {
  const io::ArchiveInfo info = io::peek_archive_extents(tlra_path());
  ASSERT_TRUE(info.has_extents());
  EXPECT_GT(info.payload_bytes, 0.0);
  EXPECT_EQ(static_cast<index_t>(info.extents.size()), info.num_freqs());
  index_t q = 0;
  std::int64_t prev_end = 0;
  double payload = 0.0;
  for (const io::ShardExtent& e : info.extents) {
    EXPECT_EQ(e.first_freq, q);
    EXPECT_GE(e.offset, prev_end);  // ascending, non-overlapping
    EXPECT_GT(e.bytes, 0);
    q += e.num_freqs;
    prev_end = e.offset + e.bytes;
    payload += e.payload_bytes;
  }
  EXPECT_EQ(q, info.num_freqs());
  EXPECT_NEAR(payload, info.payload_bytes, 1.0);

  StreamPlanConfig cfg;
  cfg.budget_bytes = info.payload_bytes / 4.0;
  const StreamPlan plan = compile_stream_plan(info, cfg);
  EXPECT_GT(plan.num_shards(), 1);
  EXPECT_EQ(plan.num_freqs(), info.num_freqs());
  EXPECT_NEAR(plan.total_bytes(), info.payload_bytes, 1.0);
}

// --- Injected sources -------------------------------------------------------

/// Dense kernels fabricated per frequency: granule q is an oscillatory
/// ns x nr matrix, so a streamed operator over this source can be checked
/// bitwise against a resident MdcOperator holding the same matrices.
struct DenseSource final : ShardSource {
  index_t ns, nr, nq;
  std::atomic<int> loads{0};
  int fail_after = -1;          // >=0: throw once this many loads happened
  int delay_ms = 0;             // per-load sleep (stall/cancel tests)

  DenseSource(index_t ns_, index_t nr_, index_t nq_)
      : ns(ns_), nr(nr_), nq(nq_) {}
  [[nodiscard]] index_t rows() const override { return ns; }
  [[nodiscard]] index_t cols() const override { return nr; }
  [[nodiscard]] static la::MatrixCF matrix_for(index_t ns, index_t nr,
                                               index_t q) {
    return tlrwse::testing::oscillatory_matrix<cf32>(
        ns, nr, 4.0 + 2.5 * static_cast<double>(q));
  }
  ShardKernels load(index_t q_begin, index_t q_end) override {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    const int n = loads.fetch_add(1);
    if (fail_after >= 0 && n >= fail_after) {
      throw std::runtime_error("injected source failure");
    }
    ShardKernels out;
    for (index_t q = q_begin; q < q_end; ++q) {
      out.kernels.push_back(
          std::make_unique<mdc::DenseMvm>(matrix_for(ns, nr, q)));
      out.bytes += static_cast<double>(ns * nr) * sizeof(cf32);
    }
    return out;
  }
};

/// Streamer over a DenseSource with one single-frequency granule per bin.
std::shared_ptr<ShardStreamer> dense_streamer(
    const std::shared_ptr<DenseSource>& src, double budget_fraction,
    StreamConfig cfg = {}) {
  const double granule =
      static_cast<double>(src->ns * src->nr) * sizeof(cf32);
  const std::vector<double> bytes(static_cast<std::size_t>(src->nq), granule);
  const std::vector<index_t> freqs(static_cast<std::size_t>(src->nq), 1);
  StreamPlanConfig plan_cfg;
  plan_cfg.budget_bytes =
      std::max(granule * 2.0, granule * src->nq * budget_fraction);
  plan_cfg.cyclic = cfg.cyclic_plan;
  cfg.budget_bytes = plan_cfg.budget_bytes;
  return std::make_shared<ShardStreamer>(
      src, compile_stream_plan(bytes, freqs, plan_cfg), cfg);
}

constexpr index_t kNt = 64;
const std::vector<index_t> kBins{3, 5, 7, 9, 11, 14, 17, 20, 23, 26};

std::unique_ptr<mdc::MdcOperator> dense_resident(index_t ns, index_t nr) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  for (std::size_t q = 0; q < kBins.size(); ++q) {
    kernels.push_back(std::make_unique<mdc::DenseMvm>(
        DenseSource::matrix_for(ns, nr, static_cast<index_t>(q))));
  }
  return std::make_unique<mdc::MdcOperator>(kNt, kBins, std::move(kernels));
}

// --- Typed budget rejection -------------------------------------------------

TEST(ShardStreamer, BudgetBelowWindowIsTypedRejection) {
  auto src = std::make_shared<DenseSource>(6, 5, 10);
  const std::vector<double> bytes(10, 100.0);
  const std::vector<index_t> freqs(10, 1);
  StreamPlanConfig plan_cfg;
  plan_cfg.budget_bytes = 150.0;  // one granule per shard, window = 200
  StreamPlan plan = compile_stream_plan(bytes, freqs, plan_cfg);
  StreamConfig cfg;
  cfg.budget_bytes = 150.0;
  try {
    ShardStreamer streamer(src, plan, cfg);
    FAIL() << "expected StreamError(kBudgetTooSmall)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamError::Code::kBudgetTooSmall);
    EXPECT_NE(std::string(e.what()).find("double-buffer"), std::string::npos);
  }
  EXPECT_EQ(src->loads.load(), 0) << "rejected stream must not touch disk";

  // grow_to_window turns the same request into a servable stream.
  cfg.grow_to_window = true;
  ShardStreamer grown(src, plan, cfg);
  EXPECT_EQ(grown.budget_bytes(), plan.window_bytes());
}

// --- Bitwise parity ---------------------------------------------------------

TEST(StreamedOperator, TlraQuarterBudgetSolveIsBitwiseIdentical) {
  const auto archive = io::load_archive(tlra_path());
  const auto resident = io::make_operator(archive);
  const double payload = archive.compressed_bytes();

  StreamConfig cfg;
  cfg.budget_bytes = payload / 4.0;
  cfg.grow_to_window = true;  // tiny test archives: never reject, still tight
  auto streamed = make_streamed_operator(tlra_path(), cfg);
  ASSERT_GT(streamed.streamer->plan().num_shards(), 1)
      << "quarter budget must actually shard the archive";

  const index_t v = dataset().num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 8;
  const auto ref = mdd::solve_mdd(*resident, rhs, lsqr);
  const auto got = mdd::solve_mdd(*streamed.op, rhs, lsqr);
  EXPECT_TRUE(bitwise_equal(ref.x, got.x));
  EXPECT_EQ(ref.iterations, got.iterations);

  const StreamStats st = streamed.streamer->stats();
  EXPECT_GT(st.loads, 0u);
  EXPECT_GT(st.evictions, 0u) << "a sharded sweep under budget must evict";
  EXPECT_GT(st.bytes_streamed, payload) << "multiple sweeps re-stream";
  EXPECT_LE(st.peak_resident_bytes,
            streamed.streamer->budget_bytes() + 1.0)
      << "residency must respect the budget";
}

TEST(StreamedOperator, SharedBasisArchiveStreamsBands) {
  TempFile file("tlrwse_oocache.tlrs");
  tlr::SharedBasisConfig sb;
  sb.nb = cc().nb;
  sb.acc = cc().acc;
  const auto shared = io::build_shared_archive(dataset(), sb, 4);
  io::save_shared_archive(file.path, shared);
  const auto resident = io::make_operator(io::load_shared_archive(file.path));

  StreamConfig cfg;
  cfg.budget_bytes = shared.shared_bytes() / 4.0;
  cfg.grow_to_window = true;
  auto streamed = make_streamed_operator(file.path, cfg);
  ASSERT_TRUE(streamed.info.shared_basis);
  ASSERT_GT(streamed.streamer->plan().num_shards(), 1);

  const index_t v = dataset().num_receivers() / 3;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 8;
  const auto ref = mdd::solve_mdd(*resident, rhs, lsqr);
  const auto got = mdd::solve_mdd(*streamed.op, rhs, lsqr);
  EXPECT_TRUE(bitwise_equal(ref.x, got.x));
}

/// The all-fp16 quantized twin of tlra_path()'s archive, built once.
const std::string& half_tlra_path() {
  static const TempFile file("tlrwse_oocache_fp16.tlra");
  static const bool built = [] {
    auto archive = io::build_archive(dataset(), cc());
    tlr::MixedPrecisionPolicy policy;
    policy.fp16_below = 2.0;  // every tile
    policy.bf16_below = 0.0;
    io::quantize_archive(archive, policy);
    io::save_archive(file.path, archive);
    return true;
  }();
  (void)built;
  return file.path;
}

TEST(StreamedOperator, HalfArchiveStreamsBitwiseAtHalfThePayload) {
  // A packed fp16 archive must (a) be priced by the stream planner at its
  // true ~half payload and (b) stream bitwise identical to the fully
  // resident operator over the same file — streaming only changes
  // residency, never the widened arithmetic.
  const auto archive = io::load_archive(half_tlra_path());
  const auto resident = io::make_operator(archive);
  const double payload = archive.compressed_bytes();
  const double fp32_payload =
      io::peek_archive_extents(tlra_path()).payload_bytes;
  EXPECT_NEAR(payload, fp32_payload / 2.0, 1e-6 * fp32_payload);
  EXPECT_DOUBLE_EQ(io::peek_archive_extents(half_tlra_path()).payload_bytes,
                   payload);

  StreamConfig cfg;
  cfg.budget_bytes = payload / 4.0;
  cfg.grow_to_window = true;
  auto streamed = make_streamed_operator(half_tlra_path(), cfg);
  ASSERT_GT(streamed.streamer->plan().num_shards(), 1)
      << "quarter budget must actually shard the archive";

  const index_t v = dataset().num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 8;
  const auto ref = mdd::solve_mdd(*resident, rhs, lsqr);
  const auto got = mdd::solve_mdd(*streamed.op, rhs, lsqr);
  EXPECT_TRUE(bitwise_equal(ref.x, got.x));
  EXPECT_EQ(ref.iterations, got.iterations);
}

TEST(StreamedOperator, DenseKernelsStreamBitwiseUnderBeladyAndLru) {
  const auto resident = dense_resident(22, 17);
  std::vector<float> x(static_cast<std::size_t>(resident->cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.37 * static_cast<double>(i + 1));
  }
  std::vector<float> ref_y(static_cast<std::size_t>(resident->rows()));
  resident->apply(x, std::span<float>(ref_y));
  std::vector<float> ref_x(static_cast<std::size_t>(resident->cols()));
  resident->apply_adjoint(ref_y, std::span<float>(ref_x));

  for (const bool cyclic : {true, false}) {
    auto src = std::make_shared<DenseSource>(
        22, 17, static_cast<index_t>(kBins.size()));
    StreamConfig cfg;
    cfg.cyclic_plan = cyclic;  // false = LRU fallback eviction
    auto streamer = dense_streamer(src, 0.25, cfg);
    mdc::MdcOperator op(kNt, kBins, streamer);

    std::vector<float> y(static_cast<std::size_t>(op.rows()));
    op.apply(x, std::span<float>(y));
    EXPECT_TRUE(bitwise_equal(ref_y, y)) << "cyclic=" << cyclic;
    std::vector<float> xt(static_cast<std::size_t>(op.cols()));
    op.apply_adjoint(y, std::span<float>(xt));
    EXPECT_TRUE(bitwise_equal(ref_x, xt)) << "cyclic=" << cyclic;
  }
}

TEST(StreamedOperator, ConcurrentSweepsSerializeAndStayBitwise) {
  const auto resident = dense_resident(22, 17);
  std::vector<float> x(static_cast<std::size_t>(resident->cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(0.21 * static_cast<double>(i + 1));
  }
  std::vector<float> ref_y(static_cast<std::size_t>(resident->rows()));
  resident->apply(x, std::span<float>(ref_y));

  auto src = std::make_shared<DenseSource>(
      22, 17, static_cast<index_t>(kBins.size()));
  auto streamer = dense_streamer(src, 0.3);
  mdc::MdcOperator op(kNt, kBins, streamer);

  constexpr int kThreads = 3;
  std::vector<std::vector<float>> ys(
      kThreads, std::vector<float>(static_cast<std::size_t>(op.rows())));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { op.apply(x, std::span<float>(ys[static_cast<std::size_t>(t)])); });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(bitwise_equal(ref_y, ys[static_cast<std::size_t>(t)]))
        << "thread " << t;
  }
}

// --- Hostile streams --------------------------------------------------------

TEST(ShardStreamer, TruncatedArchiveSurfacesTypedIoError) {
  TempFile file("tlrwse_oocache_trunc.tlra");
  std::filesystem::copy_file(tlra_path(), file.path);
  const io::ArchiveInfo info = io::peek_archive_extents(file.path);
  // Chop the file mid-way through the last granule: the extents peek
  // succeeded, so the failure must come from the prefetch thread's slice
  // load and surface as StreamError(kIo) on the consumer's acquire.
  const io::ShardExtent& last = info.extents.back();
  std::filesystem::resize_file(
      file.path, static_cast<std::uintmax_t>(last.offset + last.bytes / 2));

  StreamPlanConfig plan_cfg;
  plan_cfg.budget_bytes = info.payload_bytes / 4.0;
  StreamPlan plan = compile_stream_plan(info, plan_cfg);
  StreamConfig cfg;
  cfg.budget_bytes = plan_cfg.budget_bytes;
  cfg.grow_to_window = true;
  auto streamer = std::make_shared<ShardStreamer>(
      std::make_shared<ArchiveShardSource>(file.path, info), plan, cfg);
  mdc::MdcOperator op(info.nt, info.freq_bins, streamer);

  std::vector<float> x(static_cast<std::size_t>(op.cols()), 1.0F);
  std::vector<float> y(static_cast<std::size_t>(op.rows()));
  try {
    op.apply(x, std::span<float>(y));
    FAIL() << "expected StreamError(kIo)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamError::Code::kIo);
    EXPECT_NE(std::string(e.what()).find("tlrwse::oocache"),
              std::string::npos);
  }
  // The stream stays failed (no hang, no partial re-serve) on reuse.
  EXPECT_THROW(op.apply(x, std::span<float>(y)), StreamError);
}

TEST(ShardStreamer, ArchiveDeletedBetweenLoadsSurfacesTypedIoError) {
  TempFile file("tlrwse_oocache_gone.tlra");
  std::filesystem::copy_file(tlra_path(), file.path);
  const io::ArchiveInfo info = io::peek_archive_extents(file.path);
  StreamPlanConfig plan_cfg;
  plan_cfg.budget_bytes = info.payload_bytes / 4.0;
  StreamPlan plan = compile_stream_plan(info, plan_cfg);
  StreamConfig cfg;
  cfg.budget_bytes = plan_cfg.budget_bytes;
  cfg.grow_to_window = true;
  cfg.prefetch = false;  // synchronous loads: the deletion point is exact
  auto streamer = std::make_shared<ShardStreamer>(
      std::make_shared<ArchiveShardSource>(file.path, info), plan, cfg);
  mdc::MdcOperator op(info.nt, info.freq_bins, streamer);

  // First sweep streams the (present) file end to end.
  std::vector<float> x(static_cast<std::size_t>(op.cols()), 1.0F);
  std::vector<float> y(static_cast<std::size_t>(op.rows()));
  op.apply(x, std::span<float>(y));

  // Delete it; the next sweep's first evicted-and-reloaded shard fails.
  std::filesystem::remove(file.path);
  try {
    op.apply(x, std::span<float>(y));
    FAIL() << "expected StreamError(kIo)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamError::Code::kIo);
  }
}

TEST(ShardStreamer, CancelDuringPrefetchStallThrowsCancelled) {
  auto src = std::make_shared<DenseSource>(22, 17,
                                           static_cast<index_t>(kBins.size()));
  src->delay_ms = 100;  // every load stalls the consumer
  auto streamer = dense_streamer(src, 0.25);
  mdc::MdcOperator op(kNt, kBins, streamer);

  std::vector<float> x(static_cast<std::size_t>(op.cols()), 1.0F);
  std::vector<float> y(static_cast<std::size_t>(op.rows()));
  {
    const auto start = std::chrono::steady_clock::now();
    mdc::CancelScope cancel([start] {
      return std::chrono::steady_clock::now() - start >
             std::chrono::milliseconds(30);
    });
    EXPECT_THROW(op.apply(x, std::span<float>(y)), mdc::CancelledError);
  }
  // The streamer survives a cancelled sweep: once the deadline scope is gone
  // the same operator serves the full apply.
  op.apply(x, std::span<float>(y));
  const auto resident = dense_resident(22, 17);
  std::vector<float> ref(static_cast<std::size_t>(resident->rows()));
  resident->apply(x, std::span<float>(ref));
  EXPECT_TRUE(bitwise_equal(ref, y));
}

// --- Serve integration ------------------------------------------------------

TEST(SolveServiceStreaming, StreamedEntryMatchesResidentBitwise) {
  const auto archive = io::load_archive(tlra_path());
  const auto reference_op = io::make_operator(archive);
  const double payload = archive.compressed_bytes();
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 6;
  const auto ref = mdd::solve_mdd(*reference_op, rhs, lsqr);

  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_resident_bytes = payload / 4.0;  // forces the streamed path
  serve::SolveService service(cfg);
  serve::SolveRequest req;
  req.op = serve::OperatorKey{tlra_path(), cc().nb, cc().acc};
  req.kind = serve::RequestKind::kLsqr;
  req.vsrc = v;
  req.rhs = rhs;
  req.lsqr = lsqr;
  const auto resp = service.submit(std::move(req)).get();
  ASSERT_EQ(resp.status, serve::SolveStatus::kOk) << resp.error;
  EXPECT_TRUE(bitwise_equal(ref.x, resp.x));

  // The cache charged the stream budget, not the full payload: admission
  // of an over-budget archive is exactly what the streamed entry buys.
  const serve::CacheStats cache = service.cache().stats();
  EXPECT_EQ(cache.entries, 1u);
  EXPECT_LT(cache.bytes_resident, payload);
}

TEST(SolveServiceStreaming, UnservableBudgetIsTypedLoadFailure) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_resident_bytes = 64.0;  // below any double-buffer window
  serve::SolveService service(cfg);
  serve::SolveRequest req;
  req.op = serve::OperatorKey{tlra_path(), cc().nb, cc().acc};
  req.kind = serve::RequestKind::kAdjoint;
  req.vsrc = 0;
  req.rhs = mdd::virtual_source_rhs(dataset(), 0);
  const auto resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, serve::SolveStatus::kError);
  EXPECT_NE(resp.error.find("double-buffer"), std::string::npos)
      << resp.error;
}

}  // namespace
}  // namespace tlrwse::oocache
