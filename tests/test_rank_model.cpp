// Tests for the paper-scale analytic rank model (Fig. 12 calibration).
#include <gtest/gtest.h>

#include <tuple>

#include "tlrwse/common/units.hpp"
#include "tlrwse/seismic/rank_model.hpp"

namespace tlrwse::seismic {
namespace {

TEST(Calibration, Fig12TableLookup) {
  EXPECT_DOUBLE_EQ(calibrated_total_gb(70, 1e-4), 112.0);
  EXPECT_DOUBLE_EQ(calibrated_total_gb(25, 1e-4), 110.0);
  EXPECT_DOUBLE_EQ(calibrated_total_gb(50, 7e-4), 39.0);
  EXPECT_THROW((void)calibrated_total_gb(33, 1e-4), std::invalid_argument);
}

/// Smaller grid so the full total_bytes() sweep stays fast in tests; the
/// byte calibration is scale-free (it depends on the target GB only).
RankModelConfig test_config(index_t nb, double acc) {
  RankModelConfig cfg;
  cfg.nb = nb;
  cfg.acc = acc;
  cfg.num_freqs = 23;  // 1/10 of the paper's 230
  return cfg;
}

class NbAcc : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NbAcc, SizeRampIsLinearIncreasing) {
  const auto [nb, acc] = GetParam();
  const RankModel model(test_config(nb, acc));
  double prev = 0.0;
  for (index_t q = 0; q < model.config().num_freqs; ++q) {
    const double s = model.size_per_matrix_bytes(q);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Ratio between highest and lowest frequency ~= configured ratio.
  const double ratio = model.size_per_matrix_bytes(model.config().num_freqs - 1) /
                       model.size_per_matrix_bytes(0);
  EXPECT_NEAR(ratio, model.config().low_to_high_ratio, 1e-9);
}

TEST_P(NbAcc, MeanSizeMatchesCalibration) {
  const auto [nb, acc] = GetParam();
  const RankModel model(test_config(nb, acc));
  double sum = 0.0;
  for (index_t q = 0; q < model.config().num_freqs; ++q) {
    sum += model.size_per_matrix_bytes(q);
  }
  const double mean = sum / static_cast<double>(model.config().num_freqs);
  const double target_mean = calibrated_total_gb(nb, acc) * kGB / 230.0;
  EXPECT_NEAR(mean / target_mean, 1.0, 1e-9);
}

TEST_P(NbAcc, ActualTileRanksReproduceTargetSize) {
  const auto [nb, acc] = GetParam();
  const RankModel model(test_config(nb, acc));
  // Middle frequency: rank clamping distortion should stay under 15%.
  const index_t q = model.config().num_freqs / 2;
  const auto ranks = model.tile_ranks(q);
  const double actual = model.actual_bytes(ranks);
  const double target = model.size_per_matrix_bytes(q);
  EXPECT_NEAR(actual / target, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Configs, NbAcc,
                         ::testing::Values(std::make_tuple(25, 1e-4),
                                           std::make_tuple(50, 1e-4),
                                           std::make_tuple(70, 1e-4),
                                           std::make_tuple(50, 3e-4),
                                           std::make_tuple(70, 3e-4),
                                           std::make_tuple(70, 7e-4)));

TEST(RankModel, CompressionFactorAboutSevenAtTightAcc) {
  RankModelConfig cfg = test_config(70, 1e-4);
  const RankModel model(cfg);
  // Dense = 763 GB over 230 freqs; compare per-frequency means.
  const double dense_per_freq =
      model.dense_total_bytes() / static_cast<double>(cfg.num_freqs);
  double sum = 0.0;
  for (index_t q = 0; q < cfg.num_freqs; ++q) {
    sum += model.size_per_matrix_bytes(q);
  }
  const double comp_per_freq = sum / static_cast<double>(cfg.num_freqs);
  EXPECT_NEAR(dense_per_freq / comp_per_freq, 763.0 / 112.0, 0.5);
}

TEST(RankModel, RanksRespectTileCaps) {
  const RankModel model(test_config(70, 1e-4));
  const auto& g = model.grid();
  const auto ranks = model.tile_ranks(model.config().num_freqs - 1);
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto k = ranks[static_cast<std::size_t>(g.tile_index(i, j))];
      EXPECT_GE(k, 0);
      EXPECT_LE(k, std::min(g.tile_rows(i), g.tile_cols(j)));
    }
  }
}

TEST(RankModel, DiagonalTilesHaveHigherRanks) {
  const RankModel model(test_config(70, 1e-4));
  const auto& g = model.grid();
  const auto ranks = model.tile_ranks(10);
  // Average rank of near-diagonal band vs far-off-diagonal corner.
  double diag_sum = 0.0, corner_sum = 0.0;
  index_t diag_n = 0, corner_n = 0;
  for (index_t j = 0; j < g.nt(); ++j) {
    const index_t i_diag = j * g.mt() / g.nt();
    diag_sum += static_cast<double>(
        ranks[static_cast<std::size_t>(g.tile_index(i_diag, j))]);
    ++diag_n;
  }
  for (index_t j = 0; j < g.nt() / 4; ++j) {
    corner_sum += static_cast<double>(
        ranks[static_cast<std::size_t>(g.tile_index(g.mt() - 1 - j % 4, j))]);
    ++corner_n;
  }
  EXPECT_GT(diag_sum / diag_n, corner_sum / corner_n);
}

TEST(RankModel, Deterministic) {
  const RankModel a(test_config(50, 3e-4));
  const RankModel b(test_config(50, 3e-4));
  EXPECT_EQ(a.tile_ranks(7), b.tile_ranks(7));
}

TEST(RankModel, DenseTotalMatchesPaper) {
  RankModelConfig cfg;  // full 230 frequencies
  const RankModel model(cfg);
  // 26040 x 15930 x 8 B x 230 = 763 GB (paper Sec. 6.1).
  EXPECT_NEAR(model.dense_total_bytes() / kGB, 763.0, 1.0);
}

TEST(RankModel, FrequencyAxis) {
  RankModelConfig cfg;
  const RankModel model(cfg);
  EXPECT_NEAR(model.frequency_hz(229), 50.0, 1e-9);
  EXPECT_GT(model.frequency_hz(0), 0.0);
  EXPECT_THROW((void)model.frequency_hz(230), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::seismic
