// Property tests for the uniform tile partition.
#include <gtest/gtest.h>

#include <tuple>

#include "tlrwse/tlr/tile_grid.hpp"

namespace tlrwse::tlr {
namespace {

class GridShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GridShapes, PartitionCoversMatrixExactly) {
  const auto [rows, cols, nb] = GetParam();
  const TileGrid g(rows, cols, nb);

  // Tile counts.
  EXPECT_EQ(g.mt(), (rows + nb - 1) / nb);
  EXPECT_EQ(g.nt(), (cols + nb - 1) / nb);
  EXPECT_EQ(g.num_tiles(), g.mt() * g.nt());

  // Row/column extents tile the matrix with no gaps or overlap.
  index_t covered_rows = 0;
  for (index_t i = 0; i < g.mt(); ++i) {
    EXPECT_EQ(g.row_offset(i), covered_rows);
    EXPECT_GE(g.tile_rows(i), 1);
    EXPECT_LE(g.tile_rows(i), nb);
    covered_rows += g.tile_rows(i);
  }
  EXPECT_EQ(covered_rows, rows);

  index_t covered_cols = 0;
  for (index_t j = 0; j < g.nt(); ++j) {
    EXPECT_EQ(g.col_offset(j), covered_cols);
    EXPECT_GE(g.tile_cols(j), 1);
    EXPECT_LE(g.tile_cols(j), nb);
    covered_cols += g.tile_cols(j);
  }
  EXPECT_EQ(covered_cols, cols);

  // All tiles except the last row/column are full.
  for (index_t i = 0; i + 1 < g.mt(); ++i) EXPECT_EQ(g.tile_rows(i), nb);
  for (index_t j = 0; j + 1 < g.nt(); ++j) EXPECT_EQ(g.tile_cols(j), nb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridShapes,
    ::testing::Values(std::make_tuple(100, 60, 10),    // exact division
                      std::make_tuple(103, 61, 10),    // ragged both
                      std::make_tuple(70, 70, 70),     // single tile
                      std::make_tuple(71, 69, 70),     // barely ragged
                      std::make_tuple(1, 1, 70),       // tiny
                      std::make_tuple(26040, 15930, 70),   // paper nb=70
                      std::make_tuple(26040, 15930, 25),   // paper nb=25
                      std::make_tuple(26040, 15930, 50))); // paper nb=50

TEST(TileGrid, PaperScaleTileCounts) {
  const TileGrid g70(26040, 15930, 70);
  EXPECT_EQ(g70.mt(), 372);
  EXPECT_EQ(g70.nt(), 228);
  const TileGrid g25(26040, 15930, 25);
  EXPECT_EQ(g25.mt(), 1042);
  EXPECT_EQ(g25.nt(), 638);
}

TEST(TileGrid, TileIndexIsColumnMajorBijection) {
  const TileGrid g(50, 30, 7);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_tiles()), false);
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t idx = g.tile_index(i, j);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, g.num_tiles());
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
}

TEST(TileGrid, InvalidArgsThrow) {
  EXPECT_THROW(TileGrid(10, 10, 0), std::invalid_argument);
  EXPECT_THROW(TileGrid(-1, 10, 5), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::tlr
