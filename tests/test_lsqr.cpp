// Tests for the LSQR solver on small dense operators with known solutions.
#include <gtest/gtest.h>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/mdd/lsqr.hpp"

namespace tlrwse::mdd {
namespace {

/// Dense real matrix as a LinearOperator.
class DenseOp final : public mdc::LinearOperator {
 public:
  explicit DenseOp(la::MatrixF a) : a_(std::move(a)) {}
  [[nodiscard]] index_t rows() const override { return a_.rows(); }
  [[nodiscard]] index_t cols() const override { return a_.cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    la::gemv(a_, x, y);
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    la::gemv_adjoint(a_, y, x);
  }

 private:
  la::MatrixF a_;
};

la::MatrixF well_conditioned(Rng& rng, index_t m, index_t n) {
  la::MatrixF a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  // Boost the diagonal for conditioning.
  for (index_t i = 0; i < std::min(m, n); ++i) a(i, i) += 5.0f;
  return a;
}

TEST(Lsqr, SolvesSquareSystem) {
  Rng rng(3);
  DenseOp op(well_conditioned(rng, 12, 12));
  std::vector<float> x_true(12);
  for (auto& v : x_true) v = static_cast<float>(rng.normal());
  std::vector<float> b(12);
  op.apply(x_true, std::span<float>(b));

  LsqrConfig cfg;
  cfg.max_iters = 100;
  cfg.atol = 1e-10;
  cfg.btol = 1e-10;
  const auto res = lsqr_solve(op, b, cfg);
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(res.x[i], x_true[i], 5e-3);
  }
  EXPECT_LT(res.residual_norm, 1e-3);
}

TEST(Lsqr, OverdeterminedLeastSquares) {
  Rng rng(5);
  DenseOp op(well_conditioned(rng, 20, 8));
  std::vector<float> x_true(8);
  for (auto& v : x_true) v = static_cast<float>(rng.normal());
  std::vector<float> b(20);
  op.apply(x_true, std::span<float>(b));
  // Perturb b: the solution should still be close to x_true (LS sense).
  for (auto& v : b) v += 0.001f * static_cast<float>(rng.normal());

  LsqrConfig cfg;
  cfg.max_iters = 200;
  const auto res = lsqr_solve(op, b, cfg);
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    EXPECT_NEAR(res.x[i], x_true[i], 1e-2);
  }
}

TEST(Lsqr, ResidualHistoryMonotoneNonIncreasing) {
  Rng rng(7);
  DenseOp op(well_conditioned(rng, 15, 10));
  std::vector<float> b(15);
  for (auto& v : b) v = static_cast<float>(rng.normal());
  LsqrConfig cfg;
  cfg.max_iters = 30;
  const auto res = lsqr_solve(op, b, cfg);
  for (std::size_t i = 1; i < res.residual_history.size(); ++i) {
    EXPECT_LE(res.residual_history[i], res.residual_history[i - 1] + 1e-6);
  }
}

TEST(Lsqr, ZeroRhsGivesZeroSolution) {
  Rng rng(9);
  DenseOp op(well_conditioned(rng, 6, 6));
  std::vector<float> b(6, 0.0f);
  const auto res = lsqr_solve(op, b);
  for (float v : res.x) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Lsqr, RespectsIterationBudget) {
  Rng rng(11);
  DenseOp op(well_conditioned(rng, 30, 30));
  std::vector<float> b(30);
  for (auto& v : b) v = static_cast<float>(rng.normal());
  LsqrConfig cfg;
  cfg.max_iters = 5;
  cfg.atol = 0;
  cfg.btol = 0;
  const auto res = lsqr_solve(op, b, cfg);
  EXPECT_EQ(res.iterations, 5);
  EXPECT_EQ(res.stop, LsqrResult::Stop::kMaxIters);
}

TEST(Lsqr, ShouldStopHookAbortsWithConsistentIterate) {
  Rng rng(21);
  DenseOp op(well_conditioned(rng, 30, 30));
  std::vector<float> b(30);
  for (auto& v : b) v = static_cast<float>(rng.normal());

  // Abort after 3 iterations: the result must be exactly the 3-iteration
  // iterate (the hook is polled after the x update, never perturbing it).
  LsqrConfig budget;
  budget.max_iters = 3;
  budget.atol = 0;
  budget.btol = 0;
  const auto ref = lsqr_solve(op, b, budget);

  LsqrConfig hooked = budget;
  hooked.max_iters = 50;
  int polls = 0;
  hooked.should_stop = [&polls] { return ++polls >= 3; };
  const auto res = lsqr_solve(op, b, hooked);
  EXPECT_EQ(res.stop, LsqrResult::Stop::kAborted);
  EXPECT_EQ(res.iterations, 3);
  ASSERT_EQ(res.x.size(), ref.x.size());
  for (std::size_t i = 0; i < res.x.size(); ++i) {
    EXPECT_EQ(res.x[i], ref.x[i]);
  }
}

TEST(Lsqr, DampingShrinksSolutionNorm) {
  Rng rng(13);
  DenseOp op(well_conditioned(rng, 16, 16));
  std::vector<float> b(16);
  for (auto& v : b) v = static_cast<float>(rng.normal());
  LsqrConfig plain_cfg;
  plain_cfg.max_iters = 60;
  LsqrConfig damped_cfg = plain_cfg;
  damped_cfg.damp = 2.0;
  const auto plain = lsqr_solve(op, b, plain_cfg);
  const auto damped = lsqr_solve(op, b, damped_cfg);
  double n_plain = 0.0, n_damped = 0.0;
  for (float v : plain.x) n_plain += static_cast<double>(v) * v;
  for (float v : damped.x) n_damped += static_cast<double>(v) * v;
  EXPECT_LT(n_damped, n_plain);
}

TEST(Lsqr, WrongRhsSizeThrows) {
  Rng rng(15);
  DenseOp op(well_conditioned(rng, 4, 4));
  std::vector<float> b(3);
  EXPECT_THROW(lsqr_solve(op, b), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::mdd
