// Tests for Householder QR and rank-revealing truncated QR.
#include <gtest/gtest.h>

#include <tuple>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/qr.hpp"

namespace tlrwse::la {
namespace {

template <typename T>
Matrix<T> random_matrix(Rng& rng, index_t m, index_t n) {
  Matrix<T> a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  return a;
}

/// ||Q^H Q - I||_F.
template <typename T>
double orthogonality_defect(const Matrix<T>& Q) {
  const auto g = matmul(Q.adjoint(), Q);
  const auto eye = Matrix<T>::identity(Q.cols());
  return frobenius_distance(g, eye);
}

class QrShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrShapes, ReconstructsAndIsOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(m * 71 + n);
  const auto a = random_matrix<cf64>(rng, m, n);
  const auto f = qr(a);
  EXPECT_LT(orthogonality_defect(f.Q), 1e-10);
  const auto qr_prod = matmul(f.Q, f.R);
  EXPECT_LT(frobenius_distance(qr_prod, a), 1e-10 * frobenius_norm(a) + 1e-12);
  // R upper triangular.
  for (index_t j = 0; j < f.R.cols(); ++j) {
    for (index_t i = j + 1; i < f.R.rows(); ++i) {
      EXPECT_EQ(f.R(i, j), cf64{});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(5, 5),
                                           std::make_tuple(12, 4),
                                           std::make_tuple(4, 12),
                                           std::make_tuple(30, 30),
                                           std::make_tuple(50, 20)));

TEST(Qr, RealMatrixWorks) {
  Rng rng(31);
  const auto a = random_matrix<double>(rng, 10, 6);
  const auto f = qr(a);
  EXPECT_LT(orthogonality_defect(f.Q), 1e-12);
  EXPECT_LT(frobenius_distance(matmul(f.Q, f.R), a), 1e-12 * frobenius_norm(a));
}

TEST(Qr, ZeroMatrix) {
  const MatrixD a(4, 3, 0.0);
  const auto f = qr(a);
  EXPECT_LT(frobenius_norm(f.R), 1e-300);
}

/// Builds a rank-k matrix U * V^H with well separated singular values.
template <typename T>
Matrix<T> rank_k_matrix(Rng& rng, index_t m, index_t n, index_t k) {
  auto u = random_matrix<T>(rng, m, k);
  auto v = random_matrix<T>(rng, k, n);
  return matmul(u, v);
}

class RrqrRanks : public ::testing::TestWithParam<int> {};

TEST_P(RrqrRanks, RecoversExactRank) {
  const int k = GetParam();
  Rng rng(401 + k);
  const auto a = rank_k_matrix<cf64>(rng, 24, 18, k);
  const auto f = rrqr_truncated(a, 1e-10);
  EXPECT_EQ(f.rank, k);
  const auto rec = matmul(f.U, f.Vh);
  EXPECT_LT(frobenius_distance(rec, a), 1e-8 * frobenius_norm(a));
}

INSTANTIATE_TEST_SUITE_P(Ranks, RrqrRanks, ::testing::Values(1, 2, 3, 5, 9));

TEST(Rrqr, ToleranceControlsError) {
  Rng rng(55);
  // A matrix with geometrically decaying singular values: D * random.
  MatrixCD a(20, 20);
  for (index_t j = 0; j < 20; ++j) {
    for (index_t i = 0; i < 20; ++i) {
      a(i, j) = rng.cnormal<double>() * std::pow(0.5, static_cast<double>(j));
    }
  }
  for (double tol : {1e-1, 1e-3, 1e-6}) {
    const auto f = rrqr_truncated(a, tol);
    const auto rec = matmul(f.U, f.Vh);
    // The Frobenius tail bound: error <= tol * ||A||_F (with slack for the
    // greedy pivot heuristic).
    EXPECT_LT(frobenius_distance(rec, a), 3.0 * tol * frobenius_norm(a))
        << "tol=" << tol << " rank=" << f.rank;
  }
  // Tighter tolerance must not decrease rank.
  EXPECT_LE(rrqr_truncated(a, 1e-1).rank, rrqr_truncated(a, 1e-6).rank);
}

TEST(Rrqr, MaxRankCaps) {
  Rng rng(66);
  const auto a = random_matrix<cf64>(rng, 16, 16);
  const auto f = rrqr_truncated(a, 1e-14, 5);
  EXPECT_EQ(f.rank, 5);
  EXPECT_EQ(f.U.cols(), 5);
  EXPECT_EQ(f.Vh.rows(), 5);
}

TEST(Rrqr, UHasOrthonormalColumns) {
  Rng rng(77);
  const auto a = rank_k_matrix<cf64>(rng, 15, 10, 4);
  const auto f = rrqr_truncated(a, 1e-10);
  EXPECT_LT(orthogonality_defect(f.U), 1e-10);
}

TEST(Rrqr, ZeroMatrixHasRankZero) {
  const MatrixCD a(8, 6, cf64{});
  const auto f = rrqr_truncated(a, 1e-4);
  EXPECT_EQ(f.rank, 0);
}

}  // namespace
}  // namespace tlrwse::la
