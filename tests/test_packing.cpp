// Tests for the undersized-machine chunk packing (time-shared execution).
#include <gtest/gtest.h>

#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

class FlatSource final : public RankSource {
 public:
  FlatSource(index_t rows, index_t cols, index_t nb, index_t nf, index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
    std::vector<index_t> r(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        r[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            rank_, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return r;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

/// A tiny "machine" so a handful of chunks oversubscribes it.
WseSpec tiny_machine(index_t pes) {
  WseSpec spec;
  spec.usable_rows = pes;
  spec.usable_cols = 1;
  return spec;
}

TEST(Packing, OnePePerChunkMatchesUnpackedWorstCase) {
  FlatSource src(200, 140, 20, 2, 6);
  ClusterConfig cfg;
  cfg.stack_width = 12;
  const auto unpacked = simulate_cluster(src, cfg);
  // Enough PEs: packing degenerates to one chunk per PE.
  const auto packed = simulate_packed_cluster(src, cfg, 1);
  // Default spec has 745500 PEs >> chunks.
  EXPECT_EQ(packed.pes, packed.chunks);
  EXPECT_DOUBLE_EQ(packed.worst_pe_cycles, unpacked.worst_cycles);
  EXPECT_NEAR(packed.relative_bw, unpacked.relative_bw, 1.0);
}

TEST(Packing, HalvingPesRoughlyDoublesMakespan) {
  FlatSource src(200, 140, 20, 4, 6);
  ClusterConfig cfg;
  cfg.stack_width = 12;
  cfg.spec = tiny_machine(16);
  const auto full = simulate_packed_cluster(src, cfg, 2);   // 32 PEs
  const auto half = simulate_packed_cluster(src, cfg, 1);   // 16 PEs
  EXPECT_GT(half.worst_pe_cycles, 1.7 * full.worst_pe_cycles);
  EXPECT_LT(half.worst_pe_cycles, 2.3 * full.worst_pe_cycles);
  EXPECT_LT(half.relative_bw, full.relative_bw);
}

TEST(Packing, LptKeepsImbalanceLow) {
  FlatSource src(200, 140, 20, 4, 6);
  ClusterConfig cfg;
  cfg.stack_width = 12;
  cfg.spec = tiny_machine(7);  // odd PE count vs many chunks
  const auto rep = simulate_packed_cluster(src, cfg, 1);
  EXPECT_GT(rep.chunks, rep.pes);
  EXPECT_GE(rep.imbalance, 1.0);
  EXPECT_LT(rep.imbalance, 1.2);  // LPT is near-optimal for many chunks
}

TEST(Packing, Validation) {
  FlatSource src(40, 40, 20, 1, 2);
  ClusterConfig cfg;
  EXPECT_THROW((void)simulate_packed_cluster(src, cfg, 0),
               std::invalid_argument);
  cfg.strategy = Strategy::kScatterRealMvms;
  EXPECT_THROW((void)simulate_packed_cluster(src, cfg, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::wse
