// End-to-end MDD tests on a tiny synthetic dataset: inversion beats the
// adjoint, tighter compression accuracy beats looser (the Fig. 11/12
// behaviours at test scale).
#include <gtest/gtest.h>

#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace tlrwse::mdd {
namespace {

const seismic::SeismicDataset& tiny_dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(10, 8, 8, 6);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

TEST(Mdd, RhsAndTruthShapes) {
  const auto& data = tiny_dataset();
  const index_t v = data.num_receivers() / 2;
  const auto rhs = virtual_source_rhs(data, v);
  const auto truth = true_reflectivity_traces(data, v);
  EXPECT_EQ(rhs.size(),
            static_cast<std::size_t>(data.config.nt * data.num_sources()));
  EXPECT_EQ(truth.size(),
            static_cast<std::size_t>(data.config.nt * data.num_receivers()));
  EXPECT_GT(energy(rhs), 0.0);
  EXPECT_GT(energy(truth), 0.0);
}

TEST(Mdd, InversionRecoversTruthAndBeatsAdjoint) {
  const auto& data = tiny_dataset();
  const index_t v = data.num_receivers() / 2;
  const auto rhs = virtual_source_rhs(data, v);
  const auto truth = true_reflectivity_traces(data, v);

  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-5;
  const auto op = make_mdc_operator(data, KernelBackend::kDense, cc);

  const auto adj = adjoint_reflectivity(*op, rhs);
  LsqrConfig lsqr;
  lsqr.max_iters = 60;
  const auto inv = solve_mdd(*op, rhs, lsqr);

  // Scale-invariant comparison for the adjoint (it has arbitrary scale):
  // use correlation; the inversion should approach the truth in NMSE.
  const double nmse_inv = nmse(inv.x, truth);
  const double corr_adj = correlation(adj, truth);
  const double corr_inv = correlation(inv.x, truth);
  EXPECT_LT(nmse_inv, 0.5);
  EXPECT_GT(corr_inv, corr_adj);
  EXPECT_GT(corr_inv, 0.8);
}

TEST(Mdd, TlrBackendCloseToDense) {
  const auto& data = tiny_dataset();
  const index_t v = 3;
  const auto rhs = virtual_source_rhs(data, v);

  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-5;
  const auto dense_op = make_mdc_operator(data, KernelBackend::kDense, cc);
  const auto tlr_op = make_mdc_operator(data, KernelBackend::kTlrFused, cc);

  LsqrConfig lsqr;
  lsqr.max_iters = 30;
  const auto xd = solve_mdd(*dense_op, rhs, lsqr);
  const auto xt = solve_mdd(*tlr_op, rhs, lsqr);
  EXPECT_LT(nmse(xt.x, xd.x), 1e-3);
}

TEST(Mdd, SharedBasisBackendCloseToDense) {
  // The runtime format switch: kTlrSharedBasis fits one basis set across
  // the whole frequency band and must invert as well as the dense path.
  const auto& data = tiny_dataset();
  const index_t v = 3;
  const auto rhs = virtual_source_rhs(data, v);

  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-5;
  const auto dense_op = make_mdc_operator(data, KernelBackend::kDense, cc);
  const auto shared_op =
      make_mdc_operator(data, KernelBackend::kTlrSharedBasis, cc);
  EXPECT_EQ(shared_op->num_freqs(), dense_op->num_freqs());

  LsqrConfig lsqr;
  lsqr.max_iters = 30;
  const auto xd = solve_mdd(*dense_op, rhs, lsqr);
  const auto xs = solve_mdd(*shared_op, rhs, lsqr);
  EXPECT_LT(nmse(xs.x, xd.x), 1e-3);
}

TEST(Mdd, LooserAccuracyDegradesSolution) {
  // Fig. 12 (top): loosening acc trades solution quality for compression.
  const auto& data = tiny_dataset();
  const index_t v = data.num_receivers() / 2;
  const auto rhs = virtual_source_rhs(data, v);
  const auto truth = true_reflectivity_traces(data, v);

  LsqrConfig lsqr;
  lsqr.max_iters = 40;

  tlr::CompressionConfig tight;
  tight.nb = 16;
  tight.acc = 1e-5;
  tlr::CompressionConfig loose = tight;
  loose.acc = 3e-2;

  const auto op_tight = make_mdc_operator(data, KernelBackend::kTlrFused, tight);
  const auto op_loose = make_mdc_operator(data, KernelBackend::kTlrFused, loose);
  const auto x_tight = solve_mdd(*op_tight, rhs, lsqr);
  const auto x_loose = solve_mdd(*op_loose, rhs, lsqr);

  EXPECT_LE(nmse(x_tight.x, truth), nmse(x_loose.x, truth));
  // ...while the loose kernels are smaller.
  const auto stats_tight = kernel_compression_stats(data, tight);
  const auto stats_loose = kernel_compression_stats(data, loose);
  EXPECT_LT(stats_loose.compressed_bytes, stats_tight.compressed_bytes);
}

TEST(Mdd, KernelStatsRatioAboveOne) {
  const auto& data = tiny_dataset();
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-3;
  const auto stats = kernel_compression_stats(data, cc);
  EXPECT_GT(stats.ratio(), 1.0);
  EXPECT_GT(stats.dense_bytes, 0.0);
}

TEST(Mdd, InvalidVirtualSourceThrows) {
  const auto& data = tiny_dataset();
  EXPECT_THROW(virtual_source_rhs(data, data.num_receivers()),
               std::invalid_argument);
  EXPECT_THROW(true_reflectivity_traces(data, -1), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::mdd
