// Tests for the SRAM-driven sizing APIs (max stack width, minimum system
// count) and the CO2 time-lapse model variant.
#include <gtest/gtest.h>

#include "tlrwse/seismic/model.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

class FixedSource final : public RankSource {
 public:
  FixedSource(index_t rows, index_t cols, index_t nb, index_t nf, index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
    std::vector<index_t> r(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        r[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            rank_, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return r;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

TEST(Sizing, MaxWidthFitsAndNextWidthOverflows) {
  FixedSource src(700, 490, 70, 2, 12);
  const WseSpec spec;
  const index_t sw = max_stack_width_for_sram(
      src, spec, Strategy::kSplitStackWidth, 256);
  ASSERT_GT(sw, 0);
  // The reported width fits; one more overflows at least one chunk.
  double worst_at = 0.0, worst_next = 0.0;
  for_each_chunk(src, sw, [&](const Chunk& c) {
    worst_at = std::max(worst_at,
                        static_cast<double>(chunk_sram_bytes_strategy1(c)));
  });
  for_each_chunk(src, sw + 1, [&](const Chunk& c) {
    worst_next = std::max(worst_next,
                          static_cast<double>(chunk_sram_bytes_strategy1(c)));
  });
  EXPECT_LE(worst_at, static_cast<double>(spec.data_sram_bytes()));
  EXPECT_GT(worst_next, static_cast<double>(spec.data_sram_bytes()));
}

TEST(Sizing, Strategy2AllowsWiderStacks) {
  // Per-PE footprint under strategy 2 is roughly half (one real base
  // instead of four split planes) -> wider SRAM-max stacks.
  FixedSource src(700, 490, 70, 1, 12);
  const WseSpec spec;
  const index_t s1 =
      max_stack_width_for_sram(src, spec, Strategy::kSplitStackWidth, 512);
  const index_t s2 =
      max_stack_width_for_sram(src, spec, Strategy::kScatterRealMvms, 512);
  EXPECT_GT(s2, s1);
}

TEST(Sizing, MinimumSystemsScalesWithData) {
  const WseSpec spec;
  FixedSource small(700, 490, 70, 1, 12);
  FixedSource big(700, 490, 70, 8, 12);
  const auto m1 = minimum_systems(small, spec, Strategy::kSplitStackWidth);
  const auto m8 = minimum_systems(big, spec, Strategy::kSplitStackWidth);
  EXPECT_GE(m8, m1);
  EXPECT_GE(m1, 1);
}

TEST(Sizing, ZeroWhenTilesCannotFit) {
  // A single gigantic tile column that cannot fit even at width 1.
  FixedSource src(60000, 12000, 12000, 1, 1);
  WseSpec spec;
  EXPECT_EQ(max_stack_width_for_sram(src, spec, Strategy::kSplitStackWidth, 8),
            0);
  EXPECT_THROW((void)minimum_systems(src, spec, Strategy::kSplitStackWidth),
               std::invalid_argument);
}

TEST(Sizing, DataSramExcludesReserve) {
  const WseSpec spec;
  EXPECT_EQ(spec.data_sram_bytes(),
            spec.sram_bytes_per_pe - spec.reserved_sram_bytes);
  EXPECT_GT(spec.data_sram_bytes(), 0);
}

}  // namespace
}  // namespace tlrwse::wse

namespace tlrwse::seismic {
namespace {

TEST(Co2Monitor, WeakensOnlyTheTarget) {
  const auto base = SubsurfaceModel::overthrust_like();
  const auto mon = SubsurfaceModel::co2_monitor(1.0);
  ASSERT_EQ(base.interfaces.size(), mon.interfaces.size());
  for (std::size_t i = 0; i + 1 < base.interfaces.size(); ++i) {
    EXPECT_EQ(mon.interfaces[i].reflectivity, base.interfaces[i].reflectivity);
  }
  EXPECT_LT(mon.interfaces.back().reflectivity,
            base.interfaces.back().reflectivity);
  // Zero saturation = baseline.
  const auto zero = SubsurfaceModel::co2_monitor(0.0);
  EXPECT_EQ(zero.interfaces.back().reflectivity,
            base.interfaces.back().reflectivity);
}

TEST(Co2Monitor, SaturationMonotone) {
  double prev = SubsurfaceModel::co2_monitor(0.0).interfaces.back().reflectivity;
  for (double s : {0.25, 0.5, 0.75, 1.0}) {
    const double r = SubsurfaceModel::co2_monitor(s).interfaces.back().reflectivity;
    EXPECT_LT(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace tlrwse::seismic
