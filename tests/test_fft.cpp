// Tests for the FFT substrate: radix-2 and Bluestein paths against a naive
// DFT, real-transform round trips, Parseval, and batched transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/fft/fft.hpp"

namespace tlrwse::fft {
namespace {

std::vector<cf64> naive_dft(const std::vector<cf64>& x) {
  const auto n = static_cast<index_t>(x.size());
  std::vector<cf64> out(x.size());
  for (index_t k = 0; k < n; ++k) {
    cf64 acc{};
    for (index_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi_v<double> *
                         static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[static_cast<std::size_t>(t)] * cf64{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const index_t n = GetParam();
  Rng rng(n);
  std::vector<cf64> x(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  auto y = x;
  FftPlan plan(n);
  plan.forward(std::span<cf64>(y));
  const auto ref = naive_dft(x);
  for (index_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-9 * n)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(FftSizes, RoundTripIdentity) {
  const index_t n = GetParam();
  Rng rng(n + 999);
  std::vector<cf64> x(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  auto y = x;
  FftPlan plan(n);
  plan.forward(std::span<cf64>(y));
  plan.inverse(std::span<cf64>(y));
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(y[k] - x[k]), 0.0, 1e-10 * n);
  }
}

TEST_P(FftSizes, Parseval) {
  const index_t n = GetParam();
  Rng rng(n + 5);
  std::vector<cf64> x(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.forward(std::span<cf64>(x));
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * n);
}

// Powers of two exercise radix-2; the rest exercise Bluestein, including
// primes and the paper-like 1125 (4.5 s at 4 ms).
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 3, 5, 7, 12,
                                           100, 230, 97, 1125));

TEST(Fft, SinglePrecisionWrapper) {
  Rng rng(77);
  std::vector<cf32> x(64);
  fill_normal(rng, x.data(), x.size());
  auto y = x;
  FftPlan plan(64);
  plan.forward(std::span<cf32>(y));
  plan.inverse(std::span<cf32>(y));
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(y[k] - x[k]), 0.0, 1e-4);
  }
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cf64> x(16, cf64{});
  x[0] = {1.0, 0.0};
  FftPlan plan(16);
  plan.forward(std::span<cf64>(x));
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cf64{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft, InvalidSizeThrows) { EXPECT_THROW(FftPlan(0), std::invalid_argument); }

TEST(Rfft, FrequencyGrid) {
  const auto f = rfft_frequencies(256, 0.004);
  ASSERT_EQ(f.size(), 129u);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_NEAR(f[1], 1.0 / (256 * 0.004), 1e-12);  // ~0.977 Hz
  EXPECT_NEAR(f.back(), 125.0, 1e-9);             // Nyquist at dt = 4 ms
}

TEST(Rfft, RoundTripRealSignal) {
  Rng rng(88);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.normal();
  const auto spec = rfft(std::span<const double>(x));
  ASSERT_EQ(spec.size(), 101u);
  const auto back = irfft(std::span<const cf64>(spec), 200);
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(back[t], x[t], 1e-9);
  }
}

TEST(Rfft, CosineHitsSingleBin) {
  const index_t nt = 128;
  std::vector<double> x(static_cast<std::size_t>(nt));
  for (index_t t = 0; t < nt; ++t) {
    x[static_cast<std::size_t>(t)] =
        std::cos(2.0 * std::numbers::pi_v<double> * 5.0 *
                 static_cast<double>(t) / static_cast<double>(nt));
  }
  const auto spec = rfft(std::span<const double>(x));
  for (std::size_t k = 0; k < spec.size(); ++k) {
    if (k == 5) {
      EXPECT_NEAR(std::abs(spec[k]), nt / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
    }
  }
}

TEST(RfftBatch, MatchesPerTrace) {
  Rng rng(99);
  const index_t nt = 64, ntr = 5;
  std::vector<float> page(static_cast<std::size_t>(nt * ntr));
  for (auto& v : page) v = static_cast<float>(rng.normal());
  const index_t nf = nt / 2 + 1;
  std::vector<cf32> freq(static_cast<std::size_t>(nf * ntr));
  rfft_batch(std::span<const float>(page), nt, ntr, std::span<cf32>(freq));
  for (index_t tr = 0; tr < ntr; ++tr) {
    std::vector<double> trace(static_cast<std::size_t>(nt));
    for (index_t t = 0; t < nt; ++t) {
      trace[static_cast<std::size_t>(t)] =
          page[static_cast<std::size_t>(tr * nt + t)];
    }
    const auto ref = rfft(std::span<const double>(trace));
    for (index_t k = 0; k < nf; ++k) {
      EXPECT_NEAR(std::abs(static_cast<cf64>(
                      freq[static_cast<std::size_t>(tr * nf + k)]) -
                           ref[static_cast<std::size_t>(k)]),
                  0.0, 1e-3);
    }
  }
}

TEST(RfftBatch, RoundTrip) {
  Rng rng(111);
  const index_t nt = 128, ntr = 7;
  std::vector<float> page(static_cast<std::size_t>(nt * ntr));
  for (auto& v : page) v = static_cast<float>(rng.normal());
  const index_t nf = nt / 2 + 1;
  std::vector<cf32> freq(static_cast<std::size_t>(nf * ntr));
  rfft_batch(std::span<const float>(page), nt, ntr, std::span<cf32>(freq));
  std::vector<float> back(page.size());
  irfft_batch(std::span<const cf32>(freq), nt, ntr, std::span<float>(back));
  for (std::size_t i = 0; i < page.size(); ++i) {
    EXPECT_NEAR(back[i], page[i], 1e-3);
  }
}

TEST(RfftBatch, SizeValidation) {
  std::vector<float> page(64);
  std::vector<cf32> freq(10);
  EXPECT_THROW(
      rfft_batch(std::span<const float>(page), 64, 1, std::span<cf32>(freq)),
      std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::fft
