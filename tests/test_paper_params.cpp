// Tests at the paper's actual parameterisation where feasible: the 4.5 s /
// 4 ms time axis (nt = 1125, a Bluestein FFT size), the 230-frequency band
// bookkeeping, and the paper-scale geometry constants flowing through the
// rank model into the mapping.
#include <gtest/gtest.h>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse {
namespace {

TEST(PaperParams, TimeAxisRoundTripAt1125Samples) {
  // 4.5 s at 4 ms sampling = 1125 samples — not a power of two, so this
  // exercises the Bluestein path the paper's axis would need.
  const index_t nt = 1125;
  Rng rng(45);
  std::vector<double> trace(static_cast<std::size_t>(nt));
  for (auto& v : trace) v = rng.normal();
  const auto spec = fft::rfft(std::span<const double>(trace));
  EXPECT_EQ(spec.size(), static_cast<std::size_t>(nt / 2 + 1));
  const auto back = fft::irfft(std::span<const cf64>(spec), nt);
  for (index_t t = 0; t < nt; ++t) {
    EXPECT_NEAR(back[static_cast<std::size_t>(t)],
                trace[static_cast<std::size_t>(t)], 1e-8);
  }
}

TEST(PaperParams, BandHolds230MatricesUpTo50Hz) {
  // df = 1/4.5 s; bins up to 50 Hz minus the DC bin: ~225-230 matrices
  // depending on the inclusive band edges — the paper stores 230.
  const index_t nt = 1125;
  const double dt = 0.004;
  const auto freqs = fft::rfft_frequencies(nt, dt);
  index_t in_band = 0;
  for (double f : freqs) {
    if (f > 0.0 && f <= 51.2) ++in_band;
  }
  EXPECT_NEAR(static_cast<double>(in_band), 230.0, 5.0);
}

TEST(PaperParams, RankModelGridMatchesAcquisition) {
  // 217 x 120 sources and 177 x 90 receivers give the 26040 x 15930
  // matrices the rank model is built on.
  seismic::RankModelConfig cfg;
  const seismic::RankModel model(cfg);
  EXPECT_EQ(model.grid().rows(), 217 * 120);
  EXPECT_EQ(model.grid().cols(), 177 * 90);
}

TEST(PaperParams, FortyEightSystemsFieldThePaperPeCount) {
  const wse::WseSpec spec;
  EXPECT_EQ(48 * spec.usable_pes(), 35784000);
}

TEST(PaperParams, SingleFrequencySliceMapsWithinOneSystem) {
  // One paper-scale frequency matrix (1/230 of the dataset) fits easily
  // within a single CS-2 at the Table 1 stack width.
  seismic::RankModelConfig cfg;
  cfg.nb = 70;
  cfg.acc = 1e-4;
  cfg.num_freqs = 1;
  struct Source final : wse::RankSource {
    explicit Source(const seismic::RankModelConfig& c) : model(c) {}
    seismic::RankModel model;
    [[nodiscard]] index_t num_freqs() const override { return 1; }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return model.grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
      return model.tile_ranks(q);
    }
  } source(cfg);
  wse::ClusterConfig ccfg;
  ccfg.stack_width = 23;
  const auto rep = wse::simulate_cluster(source, ccfg);
  EXPECT_EQ(rep.systems, 1);
  EXPECT_TRUE(rep.fits_sram);
  // (With num_freqs = 1 the model emits the LOWEST-frequency slice, the
  // smallest of the ramp — the full 230-slice demand is covered by
  // bench_table1_occupancy, not extrapolated from here.)
  EXPECT_GT(rep.pes_used, 0);
}

}  // namespace
}  // namespace tlrwse
