// Additional MDC operator coverage: parameterized nt sweep, the real-split
// TLR backend inside the operator, adjoint consistency across backends,
// and linearity properties.
#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::mdc {
namespace {

std::unique_ptr<MdcOperator> build_op(index_t nt, index_t ns, index_t nr,
                                      const std::vector<index_t>& bins,
                                      TlrKernel kernel, double acc = 1e-5) {
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  for (std::size_t q = 0; q < bins.size(); ++q) {
    const auto K = tlrwse::testing::oscillatory_matrix<cf32>(
        ns, nr, 6.0 + 2.0 * static_cast<double>(q));
    tlr::CompressionConfig cc;
    cc.nb = 8;
    cc.acc = acc;
    kernels.push_back(std::make_unique<TlrMvm>(
        tlr::StackedTlr<cf32>(tlr::compress_tlr(K, cc)), kernel));
  }
  return std::make_unique<MdcOperator>(nt, bins, std::move(kernels));
}

class NtSweep : public ::testing::TestWithParam<int> {};

TEST_P(NtSweep, AdjointDotTestAcrossWindowLengths) {
  const index_t nt = GetParam();
  const std::vector<index_t> bins{2, nt / 4, nt / 2 - 1};
  const auto op = build_op(nt, 9, 6, bins, TlrKernel::kFused);
  Rng rng(nt);
  std::vector<float> x(static_cast<std::size_t>(op->cols()));
  std::vector<float> y(static_cast<std::size_t>(op->rows()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  std::vector<float> ax(y.size()), aty(x.size());
  op->apply(x, std::span<float>(ax));
  op->apply_adjoint(y, std::span<float>(aty));
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += double(ax[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-4 * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, NtSweep,
                         ::testing::Values(16, 64, 100, 256));

TEST(MdcBackends, AllKernelsProduceSameAction) {
  const std::vector<index_t> bins{3, 9};
  const auto fused = build_op(64, 10, 8, bins, TlrKernel::kFused);
  const auto phase3 = build_op(64, 10, 8, bins, TlrKernel::kThreePhase);
  const auto split = build_op(64, 10, 8, bins, TlrKernel::kRealSplit);
  Rng rng(17);
  std::vector<float> x(static_cast<std::size_t>(fused->cols()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y1(static_cast<std::size_t>(fused->rows()));
  std::vector<float> y2(y1.size()), y3(y1.size());
  fused->apply(x, std::span<float>(y1));
  phase3->apply(x, std::span<float>(y2));
  split->apply(x, std::span<float>(y3));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-4);
    EXPECT_NEAR(y1[i], y3[i], 1e-4);
  }
}

TEST(MdcOperator, LinearityOverSuperposition) {
  const std::vector<index_t> bins{4, 11};
  const auto op = build_op(64, 8, 6, bins, TlrKernel::kFused);
  Rng rng(23);
  std::vector<float> x1(static_cast<std::size_t>(op->cols()));
  std::vector<float> x2(x1.size());
  for (auto& v : x1) v = static_cast<float>(rng.normal());
  for (auto& v : x2) v = static_cast<float>(rng.normal());
  std::vector<float> xs(x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i) xs[i] = 2.0f * x1[i] - x2[i];
  std::vector<float> y1(static_cast<std::size_t>(op->rows()));
  std::vector<float> y2(y1.size()), ys(y1.size());
  op->apply(x1, std::span<float>(y1));
  op->apply(x2, std::span<float>(y2));
  op->apply(xs, std::span<float>(ys));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(ys[i], 2.0f * y1[i] - y2[i], 2e-4);
  }
}

TEST(MdcOperator, ZeroInputZeroOutput) {
  const std::vector<index_t> bins{5};
  const auto op = build_op(32, 4, 3, bins, TlrKernel::kFused);
  std::vector<float> x(static_cast<std::size_t>(op->cols()), 0.0f);
  std::vector<float> y(static_cast<std::size_t>(op->rows()), 1.0f);
  op->apply(x, std::span<float>(y));
  for (float v : y) EXPECT_EQ(v, 0.0f);
}

TEST(MdcOperator, SizeValidation) {
  const std::vector<index_t> bins{5};
  const auto op = build_op(32, 4, 3, bins, TlrKernel::kFused);
  std::vector<float> bad(10), y(static_cast<std::size_t>(op->rows()));
  EXPECT_THROW(op->apply(std::span<const float>(bad), std::span<float>(y)),
               std::invalid_argument);
  EXPECT_THROW(
      op->apply_adjoint(std::span<const float>(bad), std::span<float>(y)),
      std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::mdc
