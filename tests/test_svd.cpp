// Tests for the one-sided Jacobi SVD, tolerance truncation, and RSVD.
#include <gtest/gtest.h>

#include <tuple>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/svd.hpp"

namespace tlrwse::la {
namespace {

template <typename T>
Matrix<T> random_matrix(Rng& rng, index_t m, index_t n) {
  Matrix<T> a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  return a;
}

template <typename T>
double orthogonality_defect(const Matrix<T>& Q) {
  return frobenius_distance(matmul(Q.adjoint(), Q),
                            Matrix<T>::identity(Q.cols()));
}

template <typename T>
Matrix<T> recompose(const SvdResult<T>& f) {
  Matrix<T> us = f.U;
  for (index_t j = 0; j < us.cols(); ++j) {
    for (index_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= static_cast<T>(f.S[static_cast<std::size_t>(j)]);
    }
  }
  return matmul(us, f.V.adjoint());
}

class SvdShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvdShapes, FactorsAreValid) {
  const auto [m, n] = GetParam();
  Rng rng(m * 13 + n);
  const auto a = random_matrix<cf64>(rng, m, n);
  const auto f = svd_jacobi(a);
  EXPECT_LT(orthogonality_defect(f.U), 1e-9);
  EXPECT_LT(orthogonality_defect(f.V), 1e-9);
  EXPECT_LT(frobenius_distance(recompose(f), a),
            1e-9 * frobenius_norm(a) + 1e-12);
  // Descending, non-negative singular values.
  for (std::size_t i = 1; i < f.S.size(); ++i) {
    EXPECT_LE(f.S[i], f.S[i - 1]);
    EXPECT_GE(f.S[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(6, 6),
                                           std::make_tuple(10, 4),
                                           std::make_tuple(4, 10),
                                           std::make_tuple(25, 25),
                                           std::make_tuple(40, 17)));

TEST(Svd, DiagonalMatrixSingularValues) {
  MatrixD a(4, 4, 0.0);
  a(0, 0) = 3.0;
  a(1, 1) = -7.0;  // singular value is |.|
  a(2, 2) = 0.5;
  a(3, 3) = 1.0;
  const auto f = svd_jacobi(a);
  ASSERT_EQ(f.S.size(), 4u);
  EXPECT_NEAR(f.S[0], 7.0, 1e-12);
  EXPECT_NEAR(f.S[1], 3.0, 1e-12);
  EXPECT_NEAR(f.S[2], 1.0, 1e-12);
  EXPECT_NEAR(f.S[3], 0.5, 1e-12);
}

TEST(Svd, FrobeniusNormIdentity) {
  Rng rng(23);
  const auto a = random_matrix<cf64>(rng, 12, 9);
  const auto f = svd_jacobi(a);
  double sum2 = 0.0;
  for (double s : f.S) sum2 += s * s;
  EXPECT_NEAR(std::sqrt(sum2), frobenius_norm(a), 1e-9);
}

TEST(Svd, SingularPhaseInvariance) {
  // Multiplying a column by a unit phase must not change singular values.
  Rng rng(29);
  auto a = random_matrix<cf64>(rng, 8, 8);
  const auto s1 = svd_jacobi(a).S;
  const cf64 phase = std::polar(1.0, 0.7);
  for (index_t i = 0; i < 8; ++i) a(i, 3) *= phase;
  const auto s2 = svd_jacobi(a).S;
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-9);
}

TEST(TruncationRank, FrobeniusTailRule) {
  const std::vector<double> s{10.0, 1.0, 0.1, 0.01};
  // Full accuracy keeps everything.
  EXPECT_EQ(truncation_rank(s, 1e-8), 4);
  // tol = 0.05: tail must satisfy sqrt(sum tail^2) <= tol * ||s||.
  // ||s|| ~= 10.0504; dropping {0.1, 0.01} gives tail ~0.1005 <= 0.5025. OK.
  // Dropping {1, 0.1, 0.01} gives ~1.005 > 0.5025. So k = 2.
  EXPECT_EQ(truncation_rank(s, 0.05), 2);
  // Huge tolerance drops everything.
  EXPECT_EQ(truncation_rank(s, 2.0), 0);
  // Zero spectrum.
  EXPECT_EQ(truncation_rank(std::vector<double>{0.0, 0.0}, 1e-4), 0);
}

class CompressTols : public ::testing::TestWithParam<double> {};

TEST_P(CompressTols, SvdCompressionMeetsTolerance) {
  const double tol = GetParam();
  Rng rng(37);
  // Smooth kernel matrix (numerically low rank).
  MatrixCD a(30, 24);
  for (index_t j = 0; j < 24; ++j) {
    for (index_t i = 0; i < 30; ++i) {
      const double d = 1.0 + std::abs(static_cast<double>(i) / 30.0 -
                                      static_cast<double>(j) / 24.0);
      a(i, j) = std::polar(1.0 / d, 2.0 * d);
    }
  }
  const auto f = compress_svd(a, tol);
  const auto rec = reconstruct(f);
  EXPECT_LE(frobenius_distance(rec, a), 1.01 * tol * frobenius_norm(a) + 1e-14);
  EXPECT_LE(f.rank(), std::min<index_t>(30, 24));
}

INSTANTIATE_TEST_SUITE_P(Tols, CompressTols,
                         ::testing::Values(1e-1, 1e-2, 1e-4, 1e-8));

TEST(CompressSvd, MaxRankCaps) {
  Rng rng(41);
  const auto a = random_matrix<cf64>(rng, 12, 12);
  const auto f = compress_svd(a, 1e-14, 3);
  EXPECT_EQ(f.rank(), 3);
}

TEST(Rsvd, MatchesSvdOnLowRank) {
  Rng rng(43);
  const auto u = random_matrix<cf64>(rng, 40, 5);
  const auto v = random_matrix<cf64>(rng, 5, 30);
  const auto a = matmul(u, v);
  Rng rsvd_rng(7);
  const auto f = compress_rsvd(a, 1e-8, rsvd_rng, 4, 1);
  EXPECT_LE(f.rank(), 10);
  EXPECT_GE(f.rank(), 5);
  EXPECT_LT(frobenius_distance(reconstruct(f), a),
            1e-6 * frobenius_norm(a));
}

TEST(Rsvd, ZeroMatrixGivesRankZero) {
  const MatrixCD a(10, 8, cf64{});
  Rng rng(1);
  const auto f = compress_rsvd(a, 1e-4, rng);
  EXPECT_EQ(f.rank(), 0);
}

TEST(Rsvd, ToleranceSweepMonotone) {
  Rng rng(47);
  MatrixCD a(24, 24);
  for (index_t j = 0; j < 24; ++j) {
    for (index_t i = 0; i < 24; ++i) {
      a(i, j) = rng.cnormal<double>() * std::pow(0.6, static_cast<double>(j));
    }
  }
  Rng r1(3), r2(3);
  const auto loose = compress_rsvd(a, 1e-2, r1);
  const auto tight = compress_rsvd(a, 1e-6, r2);
  EXPECT_LE(loose.rank(), tight.rank());
}

}  // namespace
}  // namespace tlrwse::la
