// Tests for the fabric shuffle model and the host-transfer model — the
// quantitative backing of the paper's communication-avoiding design choice
// (Sec. 5.3) and its host-IO discussion (Sec. 6.6).
#include <gtest/gtest.h>

#include "tlrwse/wse/fabric.hpp"
#include "tlrwse/wse/host_io.hpp"

namespace tlrwse::wse {
namespace {

class UniformSource final : public RankSource {
 public:
  UniformSource(index_t rows, index_t cols, index_t nb, index_t nf,
                index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
    std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            rank_, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return ranks;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

TEST(Fabric, ShuffleMovesEveryRankRowOnce) {
  UniformSource src(200, 160, 20, 2, 5);
  const WseSpec spec;
  const auto rep = estimate_3phase_shuffle(src, spec, 16);
  // Total rank rows: mt*nt tiles x rank x freqs.
  const double expected = 10.0 * 8.0 * 5.0 * 2.0;
  EXPECT_DOUBLE_EQ(rep.shuffle_elements, expected);
  EXPECT_DOUBLE_EQ(rep.shuffle_bytes, 8.0 * expected);
}

TEST(Fabric, SomeTrafficTravelsNonZeroDistance) {
  UniformSource src(400, 300, 20, 4, 8);
  const WseSpec spec;
  const auto rep = estimate_3phase_shuffle(src, spec, 16);
  EXPECT_GT(rep.local_flit_hops + rep.cross_system_bytes, 0.0);
  EXPECT_GE(rep.mean_hops, 0.0);
  EXPECT_GE(rep.systems, 1);
}

TEST(Fabric, FusedLayoutAvoidsAllOfIt) {
  // The point of Fig. 9: the fused layout has zero shuffle traffic by
  // construction. The model only ever charges the 3-phase layout, so a
  // dataset with zero ranks — the degenerate fused-equivalent — moves
  // nothing.
  UniformSource src(40, 40, 20, 1, 0);
  const WseSpec spec;
  const auto rep = estimate_3phase_shuffle(src, spec, 8);
  EXPECT_DOUBLE_EQ(rep.shuffle_elements, 0.0);
  EXPECT_DOUBLE_EQ(rep.local_flit_hops, 0.0);
}

TEST(Fabric, RouterLoadScalesWithTraffic) {
  const WseSpec spec;
  UniformSource small(200, 160, 20, 1, 3);
  UniformSource big(200, 160, 20, 4, 10);
  const auto rs = estimate_3phase_shuffle(small, spec, 16);
  const auto rb = estimate_3phase_shuffle(big, spec, 16);
  EXPECT_GE(rb.local_flit_hops + rb.cross_system_bytes,
            rs.local_flit_hops + rs.cross_system_bytes);
  EXPECT_DOUBLE_EQ(rs.worst_router_cycles(spec),
                   3.0 * rs.avg_router_cycles(spec));
}

TEST(Fabric, InvalidStackWidthThrows) {
  UniformSource src(40, 40, 20, 1, 2);
  EXPECT_THROW((void)estimate_3phase_shuffle(src, WseSpec{}, 0),
               std::invalid_argument);
}

TEST(HostIo, CxlFasterThanEthernet) {
  const HostIoModel model;
  const double bytes = 20e9;  // one shard
  EXPECT_LT(model.transfer_sec(bytes, HostLink::kCxl),
            model.transfer_sec(bytes, HostLink::kEthernet));
}

TEST(HostIo, DoubleBufferingHidesIoWhenComputeDominates) {
  const HostIoModel model;
  const auto rep = double_buffer_overlap(model, HostLink::kEthernet, 20e9, 230,
                                         /*compute_sec_per_batch=*/1.0);
  EXPECT_FALSE(rep.io_bound);
  EXPECT_NEAR(rep.steady_efficiency, 1.0, 1e-9);
}

TEST(HostIo, FastKernelsAreIoBound) {
  // The paper's kernel takes microseconds: streaming the dataset over
  // ethernet can never keep up — exactly why transfers are excluded from
  // the timed region.
  const HostIoModel model;
  const auto rep = double_buffer_overlap(model, HostLink::kEthernet, 20e9, 230,
                                         /*compute_sec_per_batch=*/15e-6);
  EXPECT_TRUE(rep.io_bound);
  EXPECT_LT(rep.steady_efficiency, 0.05);
}

TEST(HostIo, MoreBatchesSmallerChunks) {
  const HostIoModel model;
  const auto few = double_buffer_overlap(model, HostLink::kCxl, 20e9, 10, 0.01);
  const auto many =
      double_buffer_overlap(model, HostLink::kCxl, 20e9, 1000, 0.01);
  EXPECT_GT(few.batch_io_sec, many.batch_io_sec);
  EXPECT_GE(many.steady_efficiency, few.steady_efficiency);
}

TEST(HostIo, Validation) {
  const HostIoModel model;
  EXPECT_THROW((void)double_buffer_overlap(model, HostLink::kCxl, 1e9, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)double_buffer_overlap(model, HostLink::kCxl, -1.0, 2, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::wse
