// Tests for Hilbert/Morton curves and permutation utilities, including the
// locality property that motivates Hilbert ordering in the paper.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "tlrwse/reorder/hilbert.hpp"
#include "tlrwse/reorder/permutation.hpp"

namespace tlrwse::reorder {
namespace {

class HilbertOrders : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HilbertOrders, BijectionOverFullGrid) {
  const std::uint32_t order = GetParam();
  const std::uint64_t n = 1ULL << order;
  std::set<std::uint64_t> seen;
  for (std::uint64_t y = 0; y < n; ++y) {
    for (std::uint64_t x = 0; x < n; ++x) {
      const auto d = hilbert_xy_to_d(order, x, y);
      EXPECT_LT(d, n * n);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
      const auto [rx, ry] = hilbert_d_to_xy(order, d);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), n * n);
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrders, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbours) {
  // The defining property of the Hilbert curve (and why it beats Morton for
  // tile compression): d and d+1 always map to 4-neighbour cells.
  const std::uint32_t order = 5;
  const std::uint64_t total = 1ULL << (2 * order);
  for (std::uint64_t d = 0; d + 1 < total; ++d) {
    const auto [x0, y0] = hilbert_d_to_xy(order, d);
    const auto [x1, y1] = hilbert_d_to_xy(order, d + 1);
    const auto dist = std::llabs(static_cast<long long>(x1) - static_cast<long long>(x0)) +
                      std::llabs(static_cast<long long>(y1) - static_cast<long long>(y0));
    EXPECT_EQ(dist, 1) << "jump at d=" << d;
  }
}

TEST(Morton, InterleavesBits) {
  EXPECT_EQ(morton_xy_to_d(0, 0), 0u);
  EXPECT_EQ(morton_xy_to_d(1, 0), 1u);
  EXPECT_EQ(morton_xy_to_d(0, 1), 2u);
  EXPECT_EQ(morton_xy_to_d(1, 1), 3u);
  EXPECT_EQ(morton_xy_to_d(2, 0), 4u);
  EXPECT_EQ(morton_xy_to_d(3, 3), 15u);
}

TEST(Morton, HasQuadrantJumps) {
  // Morton's weakness: index 3 -> 4 jumps from (1,1) to (2,0), distance 2.
  // (Documents the contrast with the Hilbert neighbour property above.)
  std::uint64_t max_jump = 0;
  std::pair<std::uint64_t, std::uint64_t> prev{0, 0};
  for (std::uint64_t d = 1; d < 64; ++d) {
    // Invert Morton by brute force over an 8x8 grid.
    for (std::uint64_t y = 0; y < 8; ++y) {
      for (std::uint64_t x = 0; x < 8; ++x) {
        if (morton_xy_to_d(x, y) == d) {
          const auto jump =
              static_cast<std::uint64_t>(std::llabs(static_cast<long long>(x) - static_cast<long long>(prev.first)) +
                                         std::llabs(static_cast<long long>(y) - static_cast<long long>(prev.second)));
          max_jump = std::max(max_jump, jump);
          prev = {x, y};
        }
      }
    }
  }
  EXPECT_GT(max_jump, 1u);
}

TEST(RequiredOrder, CoversExtents) {
  EXPECT_EQ(required_order(1, 1), 0u);
  EXPECT_EQ(required_order(2, 2), 1u);
  EXPECT_EQ(required_order(3, 2), 2u);
  EXPECT_EQ(required_order(217, 120), 8u);  // paper source grid
}

TEST(OrderingPermutation, NaturalIsIdentity) {
  std::vector<GridPoint> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto perm = ordering_permutation(pts, Ordering::kNatural);
  EXPECT_EQ(perm, (std::vector<index_t>{0, 1, 2}));
}

TEST(OrderingPermutation, HilbertIsAPermutation) {
  std::vector<GridPoint> pts;
  for (index_t y = 0; y < 7; ++y) {
    for (index_t x = 0; x < 5; ++x) pts.push_back({x, y});
  }
  const auto perm = ordering_permutation(pts, Ordering::kHilbert);
  std::set<index_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), pts.size());
  // Consecutive stations in curve order are spatial neighbours whenever the
  // curve stays inside the (non-square) station grid.
  int adjacent = 0;
  for (std::size_t k = 1; k < perm.size(); ++k) {
    const auto& a = pts[static_cast<std::size_t>(perm[k - 1])];
    const auto& b = pts[static_cast<std::size_t>(perm[k])];
    if (std::llabs(a.ix - b.ix) + std::llabs(a.iy - b.iy) == 1) ++adjacent;
  }
  EXPECT_GT(adjacent, static_cast<int>(perm.size()) / 2);
}

TEST(OrderingPermutation, MortonIsAPermutation) {
  std::vector<GridPoint> pts;
  for (index_t y = 0; y < 6; ++y) {
    for (index_t x = 0; x < 6; ++x) pts.push_back({x, y});
  }
  const auto perm = ordering_permutation(pts, Ordering::kMorton);
  std::set<index_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), pts.size());
}

TEST(InvertPermutation, RoundTrip) {
  const std::vector<index_t> perm{3, 1, 0, 2};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<index_t>{2, 1, 3, 0}));
  for (std::size_t k = 0; k < perm.size(); ++k) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[k])], static_cast<index_t>(k));
  }
}

TEST(InvertPermutation, RejectsOutOfRange) {
  EXPECT_THROW(invert_permutation({0, 5}), std::invalid_argument);
}

TEST(PermuteRowsCols, AppliesBothSides) {
  la::MatrixD a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const auto b = permute_rows_cols(a, {1, 0}, {2, 0, 1});
  EXPECT_EQ(b(0, 0), 6);
  EXPECT_EQ(b(0, 1), 4);
  EXPECT_EQ(b(1, 2), 2);
}

TEST(PermuteVector, Gathers) {
  const std::vector<double> in{10, 20, 30};
  std::vector<double> out(3);
  permute_vector<double>({2, 0, 1}, std::span<const double>(in),
                         std::span<double>(out));
  EXPECT_EQ(out, (std::vector<double>{30, 10, 20}));
}

}  // namespace
}  // namespace tlrwse::reorder
