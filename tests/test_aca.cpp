// Tests for adaptive cross approximation.
#include <gtest/gtest.h>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/aca.hpp"
#include "tlrwse/la/blas.hpp"

namespace tlrwse::la {
namespace {

template <typename T>
Matrix<T> random_matrix(Rng& rng, index_t m, index_t n) {
  Matrix<T> a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  return a;
}

TEST(Aca, ExactOnRankOne) {
  Rng rng(3);
  const auto u = random_matrix<cf64>(rng, 12, 1);
  const auto v = random_matrix<cf64>(rng, 1, 9);
  const auto a = matmul(u, v);
  const auto f = compress_aca(a, 1e-10);
  EXPECT_LE(f.rank(), 2);
  EXPECT_LT(frobenius_distance(reconstruct(f), a),
            1e-9 * frobenius_norm(a));
}

TEST(Aca, RecoversLowRank) {
  Rng rng(5);
  const auto u = random_matrix<cf64>(rng, 20, 4);
  const auto v = random_matrix<cf64>(rng, 4, 16);
  const auto a = matmul(u, v);
  const auto f = compress_aca(a, 1e-10);
  EXPECT_GE(f.rank(), 4);
  EXPECT_LT(frobenius_distance(reconstruct(f), a),
            1e-8 * frobenius_norm(a));
}

TEST(Aca, SmoothKernelCompresses) {
  // Analytic kernel exp(i*w*x*y): its singular values decay super-
  // exponentially (numerically low rank) — ACA's home turf.
  MatrixCD a(32, 28);
  for (index_t j = 0; j < 28; ++j) {
    for (index_t i = 0; i < 32; ++i) {
      const double x = static_cast<double>(i) / 31.0;
      const double y = static_cast<double>(j) / 27.0;
      a(i, j) = std::polar(1.0 + 0.3 * x * y, 4.0 * x * y);
    }
  }
  const auto f = compress_aca(a, 1e-3);
  EXPECT_LT(f.rank(), 28);
  EXPECT_LT(frobenius_distance(reconstruct(f), a),
            1e-1 * frobenius_norm(a));
}

TEST(Aca, MaxRankCaps) {
  Rng rng(7);
  const auto a = random_matrix<cf64>(rng, 10, 10);
  const auto f = compress_aca(a, 1e-14, 3);
  EXPECT_LE(f.rank(), 3);
}

TEST(Aca, ZeroMatrix) {
  const MatrixCD a(6, 5, cf64{});
  const auto f = compress_aca(a, 1e-4);
  EXPECT_EQ(f.rank(), 0);
}

TEST(Aca, LooseToleranceGivesSmallerRank) {
  MatrixCD a(24, 24);
  for (index_t j = 0; j < 24; ++j) {
    for (index_t i = 0; i < 24; ++i) {
      const double d = 1.0 + std::abs(static_cast<double>(i - j)) / 4.0;
      a(i, j) = std::polar(std::exp(-d / 4.0), d);
    }
  }
  const auto loose = compress_aca(a, 1e-2);
  const auto tight = compress_aca(a, 1e-8);
  EXPECT_LE(loose.rank(), tight.rank());
}

TEST(Aca, FullRankIdentityTerminates) {
  // Identity is the worst case for cross approximation: every pivot kills
  // exactly one entry. It must still terminate with rank n and an exact
  // reconstruction.
  const auto a = MatrixCD::identity(8);
  const auto f = compress_aca(a, 1e-12);
  EXPECT_EQ(f.rank(), 8);
  EXPECT_LT(frobenius_distance(reconstruct(f), a), 1e-10);
}

}  // namespace
}  // namespace tlrwse::la
