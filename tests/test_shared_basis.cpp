// Tests for the shared-basis stacked TLR band: accuracy parity against the
// dense kernels and the per-frequency StackedTlr path, structural
// invariants (offsets, zero-rank tiles, ragged grids), the adjoint dot
// test, the SIMD plan (bitwise multi-RHS, NaN-sentinel workspace
// robustness), and the cross-frequency coherence properties — a coherent
// band must reproduce the predicted storage ratio, an incoherent band must
// fall back gracefully to per-frequency ranks with no accuracy loss.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <tuple>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/shared_basis.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {
namespace {

constexpr double kAcc = 1e-4;
// Parity bars: the representation error per direction is <= acc on the
// band concatenation, the core refactoring adds <= acc again, so a small
// multiple of acc bounds the apply error against the exact dense kernel.
constexpr double kParityBar = 20.0 * kAcc;

/// A coherent synthetic band: the oscillatory kernel with a small
/// per-frequency phase drift, the regime where neighbouring frequency
/// matrices share tile bases.
std::vector<la::MatrixCF> coherent_band(index_t m, index_t n, index_t nf,
                                        double omega0 = 9.0) {
  std::vector<la::MatrixCF> band;
  band.reserve(static_cast<std::size_t>(nf));
  for (index_t f = 0; f < nf; ++f) {
    band.push_back(tlrwse::testing::oscillatory_matrix<cf32>(
        m, n, omega0 + 0.15 * static_cast<double>(f)));
  }
  return band;
}

SharedBasisConfig config(index_t nb, double acc = kAcc) {
  SharedBasisConfig cfg;
  cfg.nb = nb;
  cfg.acc = acc;
  return cfg;
}

double dense_rel_apply_error(const SharedBasisStackedTlr<cf32>& sb,
                             const la::MatrixCF& dense, index_t f,
                             std::span<const cf32> x) {
  const auto y = sb.apply(f, x);
  std::vector<cf32> ref(static_cast<std::size_t>(dense.rows()));
  la::gemv(dense, x, std::span<cf32>(ref));
  return tlrwse::testing::rel_error(y, ref);
}

// ------------------------------------------------- parity vs dense ------

class SharedBasisShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SharedBasisShapes, ApplyMatchesDense) {
  const auto [m, n, nb, nf] = GetParam();
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  ASSERT_EQ(sb.num_freqs(), nf);
  Rng rng(m + n + nb + nf);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              kParityBar)
        << "frequency " << f;
  }
}

TEST_P(SharedBasisShapes, AdjointMatchesDense) {
  const auto [m, n, nb, nf] = GetParam();
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  Rng rng(3 * m + n + nb);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, m);
  for (index_t f = 0; f < nf; ++f) {
    const auto y = sb.apply_adjoint(f, std::span<const cf32>(x));
    std::vector<cf32> ref(static_cast<std::size_t>(n));
    la::gemv_adjoint(band[static_cast<std::size_t>(f)],
                     std::span<const cf32>(x), std::span<cf32>(ref));
    EXPECT_LT(tlrwse::testing::rel_error(y, ref), kParityBar)
        << "frequency " << f;
  }
}

TEST_P(SharedBasisShapes, ReconstructMatchesDense) {
  const auto [m, n, nb, nf] = GetParam();
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  for (index_t f = 0; f < nf; ++f) {
    const auto rec = sb.reconstruct(f);
    const auto& ref = band[static_cast<std::size_t>(f)];
    double num = 0.0, den = 0.0;
    for (index_t j = 0; j < ref.cols(); ++j) {
      for (index_t i = 0; i < ref.rows(); ++i) {
        num += std::norm(rec(i, j) - ref(i, j));
        den += std::norm(ref(i, j));
      }
    }
    EXPECT_LT(std::sqrt(num / den), kParityBar) << "frequency " << f;
  }
}

// Band widths 1, 2, and 8 across exact and ragged tilings (ISSUE
// satellite: ragged grids, single-frequency bands, band width sweep).
INSTANTIATE_TEST_SUITE_P(
    Shapes, SharedBasisShapes,
    ::testing::Values(std::make_tuple(60, 40, 10, 1),   // single-freq band
                      std::make_tuple(60, 40, 10, 2),
                      std::make_tuple(60, 40, 10, 8),
                      std::make_tuple(67, 45, 10, 8),   // ragged both sides
                      std::make_tuple(30, 70, 16, 2),   // wide
                      std::make_tuple(70, 30, 16, 8),   // tall
                      std::make_tuple(25, 25, 70, 2),   // single tile
                      std::make_tuple(11, 7, 3, 8)));   // tiny ragged

// --------------------------------- parity vs per-frequency StackedTlr --

TEST(SharedBasis, MatchesPerFrequencyStackedTlr) {
  const index_t m = 66, n = 44, nb = 12, nf = 4;
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  CompressionConfig cc;
  cc.nb = nb;
  cc.acc = kAcc;
  Rng rng(77);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    StackedTlr<cf32> stacks(
        compress_tlr(band[static_cast<std::size_t>(f)], cc));
    const auto y_per_freq =
        tlr_mvm_fused(stacks, std::span<const cf32>(x));
    const auto y_shared = sb.apply(f, std::span<const cf32>(x));
    // Both approximate the same dense kernel to acc; their difference is
    // bounded by the sum of the two approximation errors.
    EXPECT_LT(tlrwse::testing::rel_error(y_shared, y_per_freq), 2 * kParityBar)
        << "frequency " << f;
  }
}

TEST(SharedBasis, FromTlrConversionMatchesDense) {
  const index_t m = 50, n = 38, nb = 9, nf = 3;
  const auto band = coherent_band(m, n, nf);
  CompressionConfig cc;
  cc.nb = nb;
  cc.acc = 1e-6;  // tight, so the conversion input is near-exact
  std::vector<TlrMatrix<cf32>> tlr_band;
  for (const auto& k : band) tlr_band.push_back(compress_tlr(k, cc));
  const auto sb = SharedBasisStackedTlr<cf32>::from_tlr(
      std::span<const TlrMatrix<cf32>>(tlr_band), config(nb));
  Rng rng(5);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              kParityBar);
  }
}

TEST(SharedBasis, FrequencyTlrExtractionMatchesDense) {
  const index_t m = 48, n = 36, nb = 8, nf = 3;
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  Rng rng(31);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    const TlrMatrix<cf32> t = sb.frequency_tlr(f);
    StackedTlr<cf32> stacks(t);
    const auto y = tlr_mvm_fused(stacks, std::span<const cf32>(x));
    std::vector<cf32> ref(static_cast<std::size_t>(m));
    la::gemv(band[static_cast<std::size_t>(f)], std::span<const cf32>(x),
             std::span<cf32>(ref));
    EXPECT_LT(tlrwse::testing::rel_error(y, ref), kParityBar);
  }
}

// ----------------------------------------------- structural invariants --

TEST(SharedBasis, OffsetsAreConsistent) {
  const auto band = coherent_band(50, 40, 4);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(10));
  const auto& g = sb.grid();
  for (index_t j = 0; j < g.nt(); ++j) {
    index_t expected = 0;
    for (index_t i = 0; i < g.mt(); ++i) {
      EXPECT_EQ(sb.v_offset(i, j), expected);
      EXPECT_EQ(sb.basis_vh(i, j).rows(), sb.v_rank(i, j));
      EXPECT_EQ(sb.basis_vh(i, j).cols(), g.tile_cols(j));
      expected += sb.v_rank(i, j);
    }
    EXPECT_EQ(sb.v_col_rank_sum(j), expected);
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    index_t expected = 0;
    for (index_t j = 0; j < g.nt(); ++j) {
      EXPECT_EQ(sb.u_offset(i, j), expected);
      EXPECT_EQ(sb.basis_u(i, j).cols(), sb.u_rank(i, j));
      EXPECT_EQ(sb.basis_u(i, j).rows(), g.tile_rows(i));
      expected += sb.u_rank(i, j);
    }
    EXPECT_EQ(sb.u_row_rank_sum(i), expected);
  }
}

TEST(SharedBasis, ZeroTilesGetZeroRank) {
  // Band whose lower-right region is exactly zero at every frequency:
  // those tiles must carry rank 0 in both bases and every core.
  const index_t m = 40, n = 40, nb = 10, nf = 3;
  std::vector<la::MatrixCF> band;
  for (index_t f = 0; f < nf; ++f) {
    la::MatrixCF k(m, n, cf32{});
    const auto top = tlrwse::testing::oscillatory_matrix<cf32>(
        20, 20, 8.0 + 0.2 * static_cast<double>(f));
    k.set_block(0, 0, top);
    band.push_back(std::move(k));
  }
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  const auto& g = sb.grid();
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const bool zero_tile = g.row_offset(i) >= 20 || g.col_offset(j) >= 20;
      if (zero_tile) {
        EXPECT_EQ(sb.u_rank(i, j), 0);
        EXPECT_EQ(sb.v_rank(i, j), 0);
        for (index_t f = 0; f < nf; ++f) EXPECT_EQ(sb.core_rank(f, i, j), 0);
      } else {
        EXPECT_GT(sb.u_rank(i, j), 0);
      }
    }
  }
  Rng rng(17);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              kParityBar);
  }
}

TEST(SharedBasis, MutedFrequencyKeepsDenseZeroCores) {
  // Regression: one frequency exactly zero inside an otherwise nonzero
  // band (a muted slice). Its rank-0 cores must stay DENSE — ku x kv
  // explicit zeros. The factored form (0*(ku+kv) < ku*kv) used to win the
  // size comparison, and the SIMD plan then misdispatched the empty
  // factored core to the dense branch over unallocated planes.
  const index_t m = 40, n = 30, nb = 10, nf = 3;
  auto band = coherent_band(m, n, nf);
  band[1] = la::MatrixCF(m, n, cf32{});
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  const auto& g = sb.grid();
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      ASSERT_GT(sb.u_rank(i, j), 0);  // the band itself is nonzero
      const auto& c = sb.core(1, i, j);
      EXPECT_FALSE(c.factored);
      EXPECT_EQ(c.rank, 0);
      EXPECT_EQ(c.dense.rows(), sb.u_rank(i, j));
      EXPECT_EQ(c.dense.cols(), sb.v_rank(i, j));
    }
  }

  Rng rng(61);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              kParityBar)
        << "frequency " << f;
  }

  // The SIMD plan must agree with the scalar path on every frequency —
  // and produce exact zeros for the muted one even from a NaN-poisoned
  // workspace (the misdispatch read uninitialized/unrelated arena data).
  const SharedBasisMvmPlan plan(sb);
  PlanWorkspace ws;
  std::vector<cf32> y(static_cast<std::size_t>(m));
  for (index_t f = 0; f < nf; ++f) {
    plan.apply(f, std::span<const cf32>(x), std::span<cf32>(y), ws);
    const auto y_ref = sb.apply(f, std::span<const cf32>(x));
    EXPECT_LT(tlrwse::testing::rel_error(y, y_ref), 1e-5) << "frequency " << f;
  }
  constexpr float kSentinel = std::numeric_limits<float>::quiet_NaN();
  for (auto* buf : {&ws.xr, &ws.xi, &ws.yvr, &ws.yvi, &ws.yur, &ws.yui,
                    &ws.tr, &ws.ti, &ws.cr, &ws.ci}) {
    std::fill(buf->begin(), buf->end(), kSentinel);
  }
  plan.apply(1, std::span<const cf32>(x), std::span<cf32>(y), ws);
  for (const auto& v : y) EXPECT_EQ(v, cf32{});
  std::vector<cf32> ya(static_cast<std::size_t>(n));
  const auto xa = tlrwse::testing::random_vector<cf32>(rng, m);
  plan.apply_adjoint(1, std::span<const cf32>(xa), std::span<cf32>(ya), ws);
  for (const auto& v : ya) EXPECT_EQ(v, cf32{});
}

TEST(SharedBasis, AllZeroBandHasZeroBytes) {
  std::vector<la::MatrixCF> band(3, la::MatrixCF(30, 20, cf32{}));
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(8));
  EXPECT_EQ(sb.shared_bytes(), 0.0);
  EXPECT_EQ(sb.per_frequency_bytes(), 0.0);
  std::vector<cf32> x(20, cf32{1.0f, -0.5f});
  const auto y = sb.apply(1, std::span<const cf32>(x));
  for (const auto& v : y) EXPECT_EQ(v, cf32{});
}

TEST(SharedBasis, AdjointDotTest) {
  // <A_f x, y> == <x, A_f^H y> — the property LSQR depends on.
  const auto band = coherent_band(40, 28, 3);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(9));
  Rng rng(13);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 28);
  const auto y = tlrwse::testing::random_vector<cf32>(rng, 40);
  for (index_t f = 0; f < 3; ++f) {
    const auto ax = sb.apply(f, std::span<const cf32>(x));
    const auto aty = sb.apply_adjoint(f, std::span<const cf32>(y));
    const auto lhs =
        la::dot(std::span<const cf32>(ax), std::span<const cf32>(y));
    const auto rhs =
        la::dot(std::span<const cf32>(x), std::span<const cf32>(aty));
    EXPECT_LT(std::abs(lhs - rhs), 1e-3 * (std::abs(lhs) + 1.0f));
  }
}

TEST(SharedBasis, SizeValidation) {
  const auto band = coherent_band(20, 12, 2);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(5));
  SharedBasisWorkspace<cf32> ws;
  std::vector<cf32> bad_x(5), y(20);
  EXPECT_THROW(
      sb.apply(0, std::span<const cf32>(bad_x), std::span<cf32>(y), ws),
      std::invalid_argument);
  std::vector<cf32> x(12);
  EXPECT_THROW(
      sb.apply(7, std::span<const cf32>(x), std::span<cf32>(y), ws),
      std::invalid_argument);
  std::vector<la::MatrixCF> mixed = {la::MatrixCF(10, 10, cf32{}),
                                     la::MatrixCF(11, 10, cf32{})};
  EXPECT_THROW(SharedBasisStackedTlr<cf32>::fit(
                   std::span<const la::MatrixCF>(mixed), config(5)),
               std::invalid_argument);
}

// --------------------------------------------------------- SIMD plan ---

TEST(SharedBasisPlan, MatchesScalarApply) {
  const auto band = coherent_band(67, 45, 5);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(10));
  const SharedBasisMvmPlan plan(sb);
  EXPECT_EQ(plan.rows(), 67);
  EXPECT_EQ(plan.cols(), 45);
  EXPECT_EQ(plan.num_freqs(), 5);
  Rng rng(23);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 45);
  PlanWorkspace ws;
  for (index_t f = 0; f < 5; ++f) {
    std::vector<cf32> y(67);
    plan.apply(f, std::span<const cf32>(x), std::span<cf32>(y), ws);
    const auto y_ref = sb.apply(f, std::span<const cf32>(x));
    // Same arithmetic, different order: FP32 reassociation tolerance only.
    EXPECT_LT(tlrwse::testing::rel_error(y, y_ref), 1e-5) << "frequency " << f;
  }
}

TEST(SharedBasisPlan, AdjointMatchesScalarApply) {
  const auto band = coherent_band(58, 41, 4);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(12));
  const SharedBasisMvmPlan plan(sb);
  Rng rng(29);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 58);
  PlanWorkspace ws;
  for (index_t f = 0; f < 4; ++f) {
    std::vector<cf32> y(41);
    plan.apply_adjoint(f, std::span<const cf32>(x), std::span<cf32>(y), ws);
    const auto y_ref = sb.apply_adjoint(f, std::span<const cf32>(x));
    EXPECT_LT(tlrwse::testing::rel_error(y, y_ref), 1e-5) << "frequency " << f;
  }
}

TEST(SharedBasisPlan, MultiRhsBitwiseEqualsSingleRhs) {
  const index_t m = 67, n = 45, nf = 3, nrhs = 5;
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(10));
  const SharedBasisMvmPlan plan(sb);
  Rng rng(41);
  const auto X = tlrwse::testing::random_vector<cf32>(rng, n * nrhs);
  PlanWorkspace ws;
  for (index_t f = 0; f < nf; ++f) {
    std::vector<cf32> Y(static_cast<std::size_t>(m * nrhs));
    plan.apply_multi(f, std::span<const cf32>(X), std::span<cf32>(Y), nrhs,
                     ws);
    for (index_t r = 0; r < nrhs; ++r) {
      std::vector<cf32> y1(static_cast<std::size_t>(m));
      PlanWorkspace ws1;
      plan.apply(f,
                 std::span<const cf32>(X).subspan(
                     static_cast<std::size_t>(r * n),
                     static_cast<std::size_t>(n)),
                 std::span<cf32>(y1), ws1);
      EXPECT_EQ(0, std::memcmp(y1.data(),
                               Y.data() + static_cast<std::size_t>(r * m),
                               static_cast<std::size_t>(m) * sizeof(cf32)))
          << "frequency " << f << " rhs " << r;
    }
  }
}

TEST(SharedBasisPlan, AdjointMultiRhsBitwiseEqualsSingleRhs) {
  const index_t m = 58, n = 41, nf = 2, nrhs = 4;
  const auto band = coherent_band(m, n, nf);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(12));
  const SharedBasisMvmPlan plan(sb);
  Rng rng(43);
  const auto X = tlrwse::testing::random_vector<cf32>(rng, m * nrhs);
  PlanWorkspace ws;
  for (index_t f = 0; f < nf; ++f) {
    std::vector<cf32> Y(static_cast<std::size_t>(n * nrhs));
    plan.apply_adjoint_multi(f, std::span<const cf32>(X), std::span<cf32>(Y),
                             nrhs, ws);
    for (index_t r = 0; r < nrhs; ++r) {
      std::vector<cf32> y1(static_cast<std::size_t>(n));
      PlanWorkspace ws1;
      plan.apply_adjoint(f,
                         std::span<const cf32>(X).subspan(
                             static_cast<std::size_t>(r * m),
                             static_cast<std::size_t>(m)),
                         std::span<cf32>(y1), ws1);
      EXPECT_EQ(0, std::memcmp(y1.data(),
                               Y.data() + static_cast<std::size_t>(r * n),
                               static_cast<std::size_t>(n) * sizeof(cf32)))
          << "frequency " << f << " rhs " << r;
    }
  }
}

TEST(SharedBasisPlan, NanPoisonedWorkspaceIsHarmless) {
  // Mirrors test_simd's padding sentinels: every workspace region the plan
  // reads must have been written first, so pre-poisoning all scratch with
  // NaN cannot leak into the output.
  const auto band = coherent_band(67, 45, 3);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(10));
  const SharedBasisMvmPlan plan(sb);
  Rng rng(53);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 45);

  std::vector<cf32> y_clean(67);
  PlanWorkspace clean;
  plan.apply(1, std::span<const cf32>(x), std::span<cf32>(y_clean), clean);

  PlanWorkspace poisoned;
  constexpr float kSentinel = std::numeric_limits<float>::quiet_NaN();
  // Run once to size the buffers, then poison every float and re-run.
  std::vector<cf32> y(67);
  plan.apply(1, std::span<const cf32>(x), std::span<cf32>(y), poisoned);
  for (auto* buf : {&poisoned.xr, &poisoned.xi, &poisoned.yvr, &poisoned.yvi,
                    &poisoned.yur, &poisoned.yui, &poisoned.tr, &poisoned.ti,
                    &poisoned.cr, &poisoned.ci}) {
    std::fill(buf->begin(), buf->end(), kSentinel);
  }
  plan.apply(1, std::span<const cf32>(x), std::span<cf32>(y), poisoned);
  EXPECT_EQ(0, std::memcmp(y.data(), y_clean.data(), y.size() * sizeof(cf32)));

  // Same for the adjoint.
  std::vector<cf32> xa = tlrwse::testing::random_vector<cf32>(rng, 67);
  std::vector<cf32> ya_clean(45), ya(45);
  plan.apply_adjoint(2, std::span<const cf32>(xa), std::span<cf32>(ya_clean),
                     clean);
  for (auto* buf : {&poisoned.xr, &poisoned.xi, &poisoned.yvr, &poisoned.yvi,
                    &poisoned.yur, &poisoned.yui, &poisoned.tr, &poisoned.ti,
                    &poisoned.cr, &poisoned.ci}) {
    std::fill(buf->begin(), buf->end(), kSentinel);
  }
  plan.apply_adjoint(2, std::span<const cf32>(xa), std::span<cf32>(ya),
                     poisoned);
  EXPECT_EQ(0,
            std::memcmp(ya.data(), ya_clean.data(), ya.size() * sizeof(cf32)));
}

TEST(SharedBasisPlan, LegacyFactoredRankZeroCoreReplaysAsZero) {
  // Archives saved before rank-0 cores were kept dense can contain
  // FACTORED cores with rank 0 (empty Cu/CvH). The plan must treat the
  // storage form as explicit — zero-filling the op's yu/yv slice — rather
  // than keying off r == 0, which used to route these ops to the dense
  // branch over planes that were never allocated.
  const index_t m = 40, n = 30, nb = 10, nf = 2;
  const auto band = coherent_band(m, n, nf);
  const auto fit = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(nb));
  using Band = SharedBasisStackedTlr<cf32>;
  const auto& g = fit.grid();
  const auto ntiles = static_cast<std::size_t>(g.num_tiles());
  std::vector<la::MatrixCF> u(ntiles), vh(ntiles);
  std::vector<std::vector<Band::Core>> cores(
      static_cast<std::size_t>(nf), std::vector<Band::Core>(ntiles));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto t = static_cast<std::size_t>(g.tile_index(i, j));
      u[t] = fit.basis_u(i, j);
      vh[t] = fit.basis_vh(i, j);
      cores[0][t] = fit.core(0, i, j);
      // Frequency 1 rebuilt the legacy way: muted, stored factored.
      Band::Core& c = cores[1][t];
      c.factored = true;
      c.rank = 0;
      c.lr.U = la::MatrixCF(fit.u_rank(i, j), 0);
      c.lr.Vh = la::MatrixCF(0, fit.v_rank(i, j));
    }
  }
  const auto sb = Band::from_parts(g, fit.acc(), std::move(u), std::move(vh),
                                   std::move(cores));
  const SharedBasisMvmPlan plan(sb);
  Rng rng(71);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, n);
  PlanWorkspace ws;
  std::vector<cf32> y(static_cast<std::size_t>(m));
  plan.apply(0, std::span<const cf32>(x), std::span<cf32>(y), ws);
  const auto y_ref = sb.apply(0, std::span<const cf32>(x));
  EXPECT_LT(tlrwse::testing::rel_error(y, y_ref), 1e-5);

  // Muted frequency: exact zeros, even from a NaN-poisoned workspace and
  // with multi-RHS (the zero-fill must cover every RHS column).
  constexpr float kSentinel = std::numeric_limits<float>::quiet_NaN();
  for (auto* buf : {&ws.xr, &ws.xi, &ws.yvr, &ws.yvi, &ws.yur, &ws.yui,
                    &ws.tr, &ws.ti, &ws.cr, &ws.ci}) {
    std::fill(buf->begin(), buf->end(), kSentinel);
  }
  plan.apply(1, std::span<const cf32>(x), std::span<cf32>(y), ws);
  for (const auto& v : y) EXPECT_EQ(v, cf32{});
  const index_t nrhs = 3;
  const auto X = tlrwse::testing::random_vector<cf32>(rng, n * nrhs);
  std::vector<cf32> Y(static_cast<std::size_t>(m * nrhs));
  plan.apply_multi(1, std::span<const cf32>(X), std::span<cf32>(Y), nrhs, ws);
  for (const auto& v : Y) EXPECT_EQ(v, cf32{});
  const auto xa = tlrwse::testing::random_vector<cf32>(rng, m * nrhs);
  std::vector<cf32> Ya(static_cast<std::size_t>(n * nrhs));
  plan.apply_adjoint_multi(1, std::span<const cf32>(xa), std::span<cf32>(Ya),
                           nrhs, ws);
  for (const auto& v : Ya) EXPECT_EQ(v, cf32{});
}

TEST(SharedBasis, FromPartsRejectsMalformedParts) {
  // from_parts must enforce the invariants fit_tile guarantees; a corrupt
  // or hand-built archive violating them would otherwise corrupt the
  // plan's arena layout (unpaired zero ranks leave yu slices unwritten,
  // mismatched core dims overrun the deposit).
  using Band = SharedBasisStackedTlr<cf32>;
  const TileGrid g(10, 8, 16);  // single 10 x 8 tile
  Rng rng(83);
  const auto u0 = tlrwse::testing::random_matrix<cf32>(rng, 10, 2);
  const auto vh0 = tlrwse::testing::random_matrix<cf32>(rng, 2, 8);
  auto make_cores = [&](la::MatrixCF dense, index_t rank) {
    Band::Core c;
    c.dense = std::move(dense);
    c.rank = rank;
    return std::vector<std::vector<Band::Core>>{{std::move(c)}};
  };
  // Baseline is well-formed.
  EXPECT_NO_THROW(Band::from_parts(g, 1e-4, {u0}, {vh0},
                                   make_cores(la::MatrixCF(2, 2), 1)));
  // Unpaired zero rank: ku = 2 but kv = 0.
  EXPECT_THROW(Band::from_parts(g, 1e-4, {u0}, {la::MatrixCF(0, 8)},
                                make_cores(la::MatrixCF(2, 0), 0)),
               std::invalid_argument);
  // Basis dimensions disagree with the grid.
  EXPECT_THROW(
      Band::from_parts(g, 1e-4,
                       {tlrwse::testing::random_matrix<cf32>(rng, 9, 2)},
                       {vh0}, make_cores(la::MatrixCF(2, 2), 1)),
      std::invalid_argument);
  // Dense core dims disagree with the basis ranks.
  EXPECT_THROW(Band::from_parts(g, 1e-4, {u0}, {vh0},
                                make_cores(la::MatrixCF(3, 2), 1)),
               std::invalid_argument);
  // Core rank above min(ku, kv).
  EXPECT_THROW(Band::from_parts(g, 1e-4, {u0}, {vh0},
                                make_cores(la::MatrixCF(2, 2), 5)),
               std::invalid_argument);
  // Factored core whose factor shapes disagree with rank/basis ranks.
  Band::Core bad;
  bad.factored = true;
  bad.rank = 2;
  bad.lr.U = tlrwse::testing::random_matrix<cf32>(rng, 2, 1);
  bad.lr.Vh = tlrwse::testing::random_matrix<cf32>(rng, 1, 2);
  std::vector<std::vector<Band::Core>> bad_cores;
  bad_cores.push_back({});
  bad_cores.back().push_back(std::move(bad));
  EXPECT_THROW(
      Band::from_parts(g, 1e-4, {u0}, {vh0}, std::move(bad_cores)),
      std::invalid_argument);
}

TEST(SharedBasisPlan, SharedArenaIsBandInvariant) {
  // The point of the format: the basis arena is sized by the band's shared
  // ranks only — applying different frequencies reuses the same planes and
  // only the (much smaller) core arena distinguishes them.
  const auto band = coherent_band(96, 72, 8);
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(16));
  const SharedBasisMvmPlan plan(sb);
  EXPECT_GT(plan.arena_bytes(), 0u);
  // The basis arena is paid once for the whole band; each additional
  // frequency only adds its core slice, which must cost well under another
  // copy of the shared planes (core planes pad leading dimensions to the
  // SIMD stride, so compare per frequency, not per band).
  EXPECT_LT(plan.core_arena_bytes() / 8, plan.arena_bytes());
}

// ------------------------------------------- coherence property tests --

TEST(SharedBasisProperty, CoherentBandReproducesPredictedStorageRatio) {
  // Exact construction: B_f = U0 * D_f * V0h with one shared rank-r pair
  // and per-frequency diagonal cores. Predicted storage (single tile):
  //   per-frequency: F * r * (m + n)      shared: r * (m + n) + F * r^2
  // so the ratio is known in closed form and must be reproduced.
  const index_t m = 48, n = 48, r = 6, nf = 8;
  Rng rng(101);
  const auto u0 = tlrwse::testing::random_matrix<cf32>(rng, m, r);
  const auto v0h = tlrwse::testing::random_matrix<cf32>(rng, r, n);
  std::vector<la::MatrixCF> band;
  for (index_t f = 0; f < nf; ++f) {
    la::MatrixCF d(r, r, cf32{});
    for (index_t k = 0; k < r; ++k) {
      d(k, k) = cf32(1.0f + 0.1f * static_cast<float>(f + k),
                     0.05f * static_cast<float>(k));
    }
    band.push_back(la::matmul(la::matmul(u0, d), v0h));
  }
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(64, 1e-6));
  ASSERT_EQ(sb.grid().num_tiles(), 1);
  EXPECT_EQ(sb.u_rank(0, 0), r);
  EXPECT_EQ(sb.v_rank(0, 0), r);
  for (index_t f = 0; f < nf; ++f) EXPECT_EQ(sb.core_rank(f, 0, 0), r);

  const double predicted =
      static_cast<double>(nf * r * (m + n)) /
      static_cast<double>(r * (m + n) + nf * r * r);
  EXPECT_NEAR(sb.storage_ratio(), predicted, 1e-9);
  // The acceptance-criteria bar: >= 3x on a coherent band of width 8.
  EXPECT_GE(sb.storage_ratio(), 3.0);

  Rng xrng(7);
  const auto x = tlrwse::testing::random_vector<cf32>(xrng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              1e-4);
  }
}

TEST(SharedBasisProperty, IncoherentBandFallsBackGracefully) {
  // Deliberately incoherent: every frequency is a rank-1 matrix in a
  // DIFFERENT random direction. The shared bases must widen to the union
  // (~F directions), but each core must fall back to the frequency's own
  // rank (1, stored factored) with no accuracy loss.
  const index_t m = 40, n = 32, nf = 8;
  Rng rng(211);
  std::vector<la::MatrixCF> band;
  for (index_t f = 0; f < nf; ++f) {
    const auto u = tlrwse::testing::random_matrix<cf32>(rng, m, 1);
    const auto vh = tlrwse::testing::random_matrix<cf32>(rng, 1, n);
    band.push_back(la::matmul(u, vh));
  }
  const auto sb = SharedBasisStackedTlr<cf32>::fit(
      std::span<const la::MatrixCF>(band), config(64, 1e-6));
  ASSERT_EQ(sb.grid().num_tiles(), 1);
  // Shared ranks grow to the union of the directions...
  EXPECT_GE(sb.u_rank(0, 0), nf - 1);
  // ... but the per-frequency numerical ranks are preserved (the graceful
  // fallback: no frequency pays for the others' directions).
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_EQ(sb.core_rank(f, 0, 0), 1);
    EXPECT_TRUE(sb.core(f, 0, 0).factored);
  }
  // No accuracy loss on an incoherent band.
  Rng xrng(9);
  const auto x = tlrwse::testing::random_vector<cf32>(xrng, n);
  for (index_t f = 0; f < nf; ++f) {
    EXPECT_LT(dense_rel_apply_error(sb, band[static_cast<std::size_t>(f)], f,
                                    std::span<const cf32>(x)),
              1e-4);
  }
  // Sharing cannot win here; the overhead is bounded by the basis copies
  // (factored cores keep the core cost at the per-frequency level).
  EXPECT_LE(sb.shared_bytes(), 3.0 * sb.per_frequency_bytes());
}

TEST(SharedBasisProperty, FuzzRandomBandsStayWithinTolerance) {
  // Seeded fuzz over shapes, tile sizes, band widths, and coherence mix:
  // B_f = base + eps_f * perturbation. Every draw must satisfy dense
  // parity, the adjoint dot test, and scalar/plan agreement.
  struct Draw {
    index_t m, n, nb, nf;
    double eps;
  };
  const Draw draws[] = {
      {33, 21, 7, 2, 0.05}, {64, 64, 16, 5, 0.20}, {81, 27, 13, 3, 0.50},
      {26, 58, 32, 4, 0.01}, {45, 45, 11, 1, 0.00}, {72, 40, 24, 8, 0.10},
  };
  for (const Draw& d : draws) {
    Rng rng(static_cast<unsigned>(1000 + d.m * 7 + d.n * 3 + d.nf));
    const auto base = tlrwse::testing::random_matrix<cf32>(rng, d.m, d.n);
    std::vector<la::MatrixCF> band;
    for (index_t f = 0; f < d.nf; ++f) {
      la::MatrixCF k = base;
      const auto pert = tlrwse::testing::random_matrix<cf32>(rng, d.m, d.n);
      const auto eps = static_cast<float>(d.eps * (f + 1) / d.nf);
      for (index_t j = 0; j < k.cols(); ++j) {
        for (index_t i = 0; i < k.rows(); ++i) k(i, j) += eps * pert(i, j);
      }
      band.push_back(std::move(k));
    }
    const auto sb = SharedBasisStackedTlr<cf32>::fit(
        std::span<const la::MatrixCF>(band), config(d.nb, 1e-5));
    const SharedBasisMvmPlan plan(sb);
    const auto x = tlrwse::testing::random_vector<cf32>(rng, d.n);
    const auto xa = tlrwse::testing::random_vector<cf32>(rng, d.m);
    PlanWorkspace ws;
    for (index_t f = 0; f < d.nf; ++f) {
      const auto y = sb.apply(f, std::span<const cf32>(x));
      std::vector<cf32> ref(static_cast<std::size_t>(d.m));
      la::gemv(band[static_cast<std::size_t>(f)], std::span<const cf32>(x),
               std::span<cf32>(ref));
      EXPECT_LT(tlrwse::testing::rel_error(y, ref), 1e-3)
          << "m=" << d.m << " nf=" << d.nf << " f=" << f;

      const auto aty = sb.apply_adjoint(f, std::span<const cf32>(xa));
      const auto lhs =
          la::dot(std::span<const cf32>(y), std::span<const cf32>(xa));
      const auto rhs =
          la::dot(std::span<const cf32>(x), std::span<const cf32>(aty));
      EXPECT_LT(std::abs(lhs - rhs), 1e-3 * (std::abs(lhs) + 1.0f));

      std::vector<cf32> yp(static_cast<std::size_t>(d.m));
      plan.apply(f, std::span<const cf32>(x), std::span<cf32>(yp), ws);
      EXPECT_LT(tlrwse::testing::rel_error(yp, y), 1e-5);
    }
  }
}

}  // namespace
}  // namespace tlrwse::tlr
