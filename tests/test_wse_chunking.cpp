// Tests for the WSE chunk decomposition: exact coverage of all rank rows,
// stack-width bounds, MVM shape accounting, and SRAM footprints.
#include <gtest/gtest.h>

#include <map>

#include "test_helpers.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/wse/chunking.hpp"
#include "tlrwse/wse/functional.hpp"

namespace tlrwse::wse {
namespace {

/// Simple deterministic rank source for unit tests.
class FakeSource final : public RankSource {
 public:
  FakeSource(index_t rows, index_t cols, index_t nb, index_t nf)
      : grid_(rows, cols, nb), nf_(nf) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        // Deterministic varied ranks in [1, min(mb, nb)].
        const index_t cap = std::min(grid_.tile_rows(i), grid_.tile_cols(j));
        ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] =
            1 + (i * 7 + j * 3 + q) % cap;
      }
    }
    return ranks;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
};

class StackWidths : public ::testing::TestWithParam<int> {};

TEST_P(StackWidths, ChunksCoverAllRankRowsExactly) {
  const index_t sw = GetParam();
  FakeSource src(100, 70, 16, 3);
  // Accumulate covered rank rows per (freq, tile): every rank of every tile
  // must be covered exactly once.
  std::map<std::tuple<index_t, index_t, index_t>, std::vector<bool>> covered;
  for (index_t q = 0; q < src.num_freqs(); ++q) {
    const auto ranks = src.tile_ranks(q);
    for (index_t j = 0; j < src.grid().nt(); ++j) {
      for (index_t i = 0; i < src.grid().mt(); ++i) {
        covered[{q, i, j}].assign(
            static_cast<std::size_t>(
                ranks[static_cast<std::size_t>(src.grid().tile_index(i, j))]),
            false);
      }
    }
  }
  for_each_chunk(src, sw, [&](const Chunk& c) {
    EXPECT_GE(c.h, 1);
    EXPECT_LE(c.h, sw);
    EXPECT_EQ(c.nb, src.grid().tile_cols(c.tile_col));
    index_t total = 0;
    for (const auto& seg : c.segments) {
      EXPECT_EQ(seg.mb, src.grid().tile_rows(seg.tile_row));
      auto& flags = covered[{c.freq, seg.tile_row, c.tile_col}];
      for (index_t r = 0; r < seg.count; ++r) {
        const auto idx = static_cast<std::size_t>(seg.rank_begin + r);
        ASSERT_LT(idx, flags.size());
        EXPECT_FALSE(flags[idx]) << "rank row covered twice";
        flags[idx] = true;
      }
      total += seg.count;
    }
    EXPECT_EQ(total, c.h);
  });
  for (const auto& [key, flags] : covered) {
    for (bool f : flags) EXPECT_TRUE(f) << "rank row not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, StackWidths, ::testing::Values(1, 3, 16, 64, 1000));

TEST(Chunking, CountMatchesCeilFormula) {
  FakeSource src(64, 48, 16, 2);
  const index_t sw = 10;
  // Expected: sum over freq, tile col of ceil(K_j / sw).
  index_t expected = 0;
  for (index_t q = 0; q < src.num_freqs(); ++q) {
    const auto ranks = src.tile_ranks(q);
    for (index_t j = 0; j < src.grid().nt(); ++j) {
      index_t kj = 0;
      for (index_t i = 0; i < src.grid().mt(); ++i) {
        kj += ranks[static_cast<std::size_t>(src.grid().tile_index(i, j))];
      }
      expected += (kj + sw - 1) / sw;
    }
  }
  EXPECT_EQ(count_chunks(src, sw), expected);
}

TEST(Chunking, LargerStackWidthFewerChunks) {
  FakeSource src(120, 90, 20, 2);
  index_t prev = count_chunks(src, 1);
  for (index_t sw : {2, 4, 8, 32, 128}) {
    const index_t n = count_chunks(src, sw);
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(Chunking, InvalidStackWidthThrows) {
  FakeSource src(10, 10, 5, 1);
  EXPECT_THROW((void)count_chunks(src, 0), std::invalid_argument);
}

TEST(ChunkShapes, EightMvmsWithExpectedSizes) {
  Chunk c;
  c.nb = 25;
  c.h = 10;
  c.segments = {{0, 0, 6, 25}, {1, 0, 4, 25}};
  const auto shapes = chunk_mvm_shapes(c);
  ASSERT_EQ(shapes.size(), 8u);
  // Four V MVMs: 10 x 25.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(shapes[k].m, 10.0);
    EXPECT_EQ(shapes[k].n, 25.0);
    EXPECT_EQ(shapes[k].mn, 250.0);
  }
  // Four U MVMs: output 50 (two tiles of 25), 10 columns, 250 elements.
  for (int k = 4; k < 8; ++k) {
    EXPECT_EQ(shapes[k].m, 50.0);
    EXPECT_EQ(shapes[k].n, 10.0);
    EXPECT_EQ(shapes[k].mn, 250.0);
  }
}

TEST(ChunkShapes, RaggedLastTileRow) {
  Chunk c;
  c.nb = 16;
  c.h = 5;
  c.segments = {{3, 2, 2, 16}, {4, 0, 3, 9}};  // last tile row is 9 tall
  const auto shapes = chunk_mvm_shapes(c);
  EXPECT_EQ(shapes[4].m, 25.0);                 // 16 + 9
  EXPECT_EQ(shapes[4].mn, 2.0 * 16 + 3.0 * 9);  // 59 stored elements
}

TEST(AccessFormulas, MatchPaperDefinitions) {
  RealMvmShape s{100.0, 30.0, 3000.0};
  EXPECT_DOUBLE_EQ(s.relative_bytes(), 4.0 * (3000 + 100 + 30));
  EXPECT_DOUBLE_EQ(s.absolute_bytes(), 4.0 * (3 * 3000 + 30));
  EXPECT_DOUBLE_EQ(s.flops(), 6000.0);
}

TEST(SramFootprint, Strategy1LargerThanStrategy2PerPe) {
  Chunk c;
  c.nb = 70;
  c.h = 23;
  c.segments = {{0, 0, 23, 70}};
  EXPECT_GT(chunk_sram_bytes_strategy1(c), chunk_sram_bytes_strategy2(c));
}

TEST(SramFootprint, PaperConfigsFitIn48kB) {
  // The five validated Table 1 configurations must fit per-PE SRAM.
  struct Cfg {
    index_t nb, sw;
  };
  for (const Cfg cfg : {Cfg{25, 64}, Cfg{50, 32}, Cfg{70, 23}, Cfg{50, 18},
                        Cfg{70, 14}}) {
    Chunk c;
    c.nb = cfg.nb;
    c.h = cfg.sw;
    // Worst case: the chunk's stack rows span several tiles.
    index_t left = cfg.sw;
    index_t tile = 0;
    while (left > 0) {
      const index_t take = std::min<index_t>(left, 5);
      c.segments.push_back({tile++, 0, take, cfg.nb});
      left -= take;
    }
    EXPECT_LE(chunk_sram_bytes_strategy1(c), 48 * 1024)
        << "nb=" << cfg.nb << " sw=" << cfg.sw;
    c.segments.clear();
  }
}

TEST(TlrRankSource, ReportsCompressedRanks) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(48, 36, 9.0);
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  std::vector<tlr::TlrMatrix<cf32>> mats;
  mats.push_back(tlr::compress_tlr(a, cc));
  TlrRankSource src(mats);
  EXPECT_EQ(src.num_freqs(), 1);
  const auto ranks = src.tile_ranks(0);
  for (index_t j = 0; j < src.grid().nt(); ++j) {
    for (index_t i = 0; i < src.grid().mt(); ++i) {
      EXPECT_EQ(ranks[static_cast<std::size_t>(src.grid().tile_index(i, j))],
                mats[0].rank(i, j));
    }
  }
}

}  // namespace
}  // namespace tlrwse::wse
