// Fuzz-style sweep of the FFT across every length in [1, 96]: forward
// matches a naive DFT, inverse round-trips, and the real transforms agree
// with the complex path — exercising every radix-2/Bluestein boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/fft/fft.hpp"

namespace tlrwse::fft {
namespace {

std::vector<cf64> naive_dft(const std::vector<cf64>& x) {
  const auto n = static_cast<index_t>(x.size());
  std::vector<cf64> out(x.size());
  for (index_t k = 0; k < n; ++k) {
    cf64 acc{};
    for (index_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi_v<double> *
                         static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[static_cast<std::size_t>(t)] * cf64{std::cos(ang), std::sin(ang)};
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

TEST(FftFuzz, EveryLengthUpTo96) {
  Rng rng(2024);
  for (index_t n = 1; n <= 96; ++n) {
    std::vector<cf64> x(static_cast<std::size_t>(n));
    fill_normal(rng, x.data(), x.size());
    FftPlan plan(n);

    auto fwd = x;
    plan.forward(std::span<cf64>(fwd));
    const auto ref = naive_dft(x);
    double err = 0.0, norm = 0.0;
    for (index_t k = 0; k < n; ++k) {
      err += std::norm(fwd[static_cast<std::size_t>(k)] -
                       ref[static_cast<std::size_t>(k)]);
      norm += std::norm(ref[static_cast<std::size_t>(k)]);
    }
    EXPECT_LT(std::sqrt(err / (norm + 1e-30)), 1e-10) << "n=" << n;

    plan.inverse(std::span<cf64>(fwd));
    double rt = 0.0;
    for (index_t k = 0; k < n; ++k) {
      rt += std::norm(fwd[static_cast<std::size_t>(k)] -
                      x[static_cast<std::size_t>(k)]);
    }
    EXPECT_LT(std::sqrt(rt), 1e-9 * n) << "roundtrip n=" << n;
  }
}

TEST(FftFuzz, RealTransformAgreesWithComplexPath) {
  Rng rng(7);
  for (index_t nt : {index_t{6}, index_t{17}, index_t{64}, index_t{90}}) {
    std::vector<double> x(static_cast<std::size_t>(nt));
    for (auto& v : x) v = rng.normal();
    const auto spec = rfft(std::span<const double>(x));

    std::vector<cf64> cx(x.begin(), x.end());
    FftPlan plan(nt);
    plan.forward(std::span<cf64>(cx));
    for (index_t k = 0; k <= nt / 2; ++k) {
      EXPECT_LT(std::abs(spec[static_cast<std::size_t>(k)] -
                         cx[static_cast<std::size_t>(k)]),
                1e-9 * nt)
          << "nt=" << nt << " k=" << k;
    }
    const auto back = irfft(std::span<const cf64>(spec), nt);
    for (index_t t = 0; t < nt; ++t) {
      EXPECT_NEAR(back[static_cast<std::size_t>(t)],
                  x[static_cast<std::size_t>(t)], 1e-9)
          << "nt=" << nt;
    }
  }
}

TEST(FftFuzz, LinearityAcrossOddSizes) {
  Rng rng(11);
  for (index_t n : {index_t{13}, index_t{45}, index_t{77}}) {
    std::vector<cf64> a(static_cast<std::size_t>(n));
    std::vector<cf64> b(static_cast<std::size_t>(n));
    fill_normal(rng, a.data(), a.size());
    fill_normal(rng, b.data(), b.size());
    std::vector<cf64> sum(static_cast<std::size_t>(n));
    for (index_t k = 0; k < n; ++k) {
      sum[static_cast<std::size_t>(k)] = a[static_cast<std::size_t>(k)] +
                                         cf64{2.0, 0.0} *
                                             b[static_cast<std::size_t>(k)];
    }
    FftPlan plan(n);
    auto fa = a, fb = b, fs = sum;
    plan.forward(std::span<cf64>(fa));
    plan.forward(std::span<cf64>(fb));
    plan.forward(std::span<cf64>(fs));
    for (index_t k = 0; k < n; ++k) {
      const cf64 expect = fa[static_cast<std::size_t>(k)] +
                          cf64{2.0, 0.0} * fb[static_cast<std::size_t>(k)];
      EXPECT_LT(std::abs(fs[static_cast<std::size_t>(k)] - expect), 1e-9 * n);
    }
  }
}

}  // namespace
}  // namespace tlrwse::fft
