// Tests for the serving layer: operator cache (byte-budget LRU, load
// dedup, concurrency), task executor, and the solve service end to end —
// including the bitwise-vs-sequential guarantee and typed backpressure.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/serve/operator_cache.hpp"
#include "tlrwse/serve/solve_service.hpp"
#include "tlrwse/serve/task_executor.hpp"

namespace tlrwse::serve {
namespace {

// ---------------------------------------------------------------- cache --

OperatorKey key_of(const char* id) { return OperatorKey{id, 12, 1e-4}; }

OperatorCache::Value resident_of(double bytes) {
  auto r = std::make_shared<ResidentOperator>();
  r->bytes = bytes;
  return r;
}

TEST(OperatorCache, HitMissAccounting) {
  OperatorCache cache(1e9, 1);
  int loads = 0;
  const auto loader = [&] {
    ++loads;
    return resident_of(100.0);
  };
  const auto a1 = cache.get_or_load(key_of("a"), loader);
  const auto a2 = cache.get_or_load(key_of("a"), loader);
  EXPECT_EQ(a1.get(), a2.get());  // one resident copy, shared
  EXPECT_EQ(loads, 1);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.bytes_resident, 100.0);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(OperatorCache, DistinctCompressionConfigsAreDistinctEntries) {
  OperatorCache cache(1e9, 1);
  const OperatorKey coarse{"a", 12, 1e-2};
  const OperatorKey fine{"a", 12, 1e-6};
  (void)cache.get_or_load(coarse, [&] { return resident_of(10.0); });
  (void)cache.get_or_load(fine, [&] { return resident_of(20.0); });
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_DOUBLE_EQ(cache.stats().bytes_resident, 30.0);
}

TEST(OperatorCache, EvictsInLruOrder) {
  // One shard = strictly global LRU. Budget fits two 100-byte entries;
  // touching A promotes it, so inserting C evicts B (the LRU tail).
  OperatorCache cache(250.0, 1);
  (void)cache.get_or_load(key_of("a"), [&] { return resident_of(100.0); });
  (void)cache.get_or_load(key_of("b"), [&] { return resident_of(100.0); });
  (void)cache.get_or_load(key_of("a"), [&] { return resident_of(100.0); });
  (void)cache.get_or_load(key_of("c"), [&] { return resident_of(100.0); });

  EXPECT_TRUE(cache.contains(key_of("a")));
  EXPECT_FALSE(cache.contains(key_of("b")));
  EXPECT_TRUE(cache.contains(key_of("c")));

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_DOUBLE_EQ(s.bytes_evicted, 100.0);
  EXPECT_DOUBLE_EQ(s.bytes_resident, 200.0);
  EXPECT_EQ(s.entries, 2u);
}

TEST(OperatorCache, OversizedEntryStaysUntilDisplaced) {
  // An entry larger than the whole budget is never evicted by its own
  // insertion (requests holding its future must still get a value); the
  // next insertion displaces it.
  OperatorCache cache(50.0, 1);
  (void)cache.get_or_load(key_of("big"), [&] { return resident_of(100.0); });
  EXPECT_TRUE(cache.contains(key_of("big")));
  EXPECT_DOUBLE_EQ(cache.stats().bytes_resident, 100.0);

  (void)cache.get_or_load(key_of("next"), [&] { return resident_of(10.0); });
  EXPECT_FALSE(cache.contains(key_of("big")));
  EXPECT_TRUE(cache.contains(key_of("next")));
}

TEST(OperatorCache, LoaderFailurePropagatesAndRetries) {
  OperatorCache cache(1e9, 1);
  EXPECT_THROW((void)cache.get_or_load(
                   key_of("a"),
                   []() -> OperatorCache::Value {
                     throw std::runtime_error("archive unreadable");
                   }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains(key_of("a")));
  EXPECT_EQ(cache.stats().load_failures, 1u);

  // The failed entry was removed, so the next call retries the load.
  const auto v = cache.get_or_load(key_of("a"), [&] { return resident_of(7.0); });
  EXPECT_DOUBLE_EQ(v->bytes, 7.0);
  EXPECT_EQ(cache.stats().loads, 1u);
}

TEST(OperatorCache, ClearEmptiesEverything) {
  OperatorCache cache(1e9, 4);
  (void)cache.get_or_load(key_of("a"), [&] { return resident_of(1.0); });
  (void)cache.get_or_load(key_of("b"), [&] { return resident_of(2.0); });
  cache.clear();
  EXPECT_FALSE(cache.contains(key_of("a")));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().bytes_resident, 0.0);
}

TEST(OperatorCache, ConcurrentLoadsDeduplicate) {
  // Many threads racing one cold key ride a single loader invocation; the
  // loader sleeps so every thread arrives while the load is in flight.
  OperatorCache cache(1e9, 8);
  std::atomic<int> loads{0};
  const auto loader = [&] {
    loads.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return resident_of(100.0);
  };
  std::vector<std::thread> threads;
  std::vector<OperatorCache::Value> values(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&, t] { values[static_cast<std::size_t>(t)] = cache.get_or_load(key_of("hot"), loader); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);
  for (const auto& v : values) EXPECT_EQ(v.get(), values[0].get());
  EXPECT_EQ(cache.stats().loads, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(OperatorCache, ConcurrentHammerStaysCoherent) {
  // 8 threads hammer 6 keys through a budget that can hold only ~2 entries
  // per shard's worth: loads, evictions, and hits interleave freely. The
  // invariants: values are always usable, per-key bytes are what the loader
  // produced, and the final accounting is self-consistent.
  OperatorCache cache(250.0, 2);
  std::atomic<int> loads{0};
  std::vector<OperatorKey> keys;
  for (int k = 0; k < 6; ++k) {
    keys.push_back(OperatorKey{std::string(1, static_cast<char>('a' + k)), 12, 1e-4});
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const OperatorKey& key = keys[static_cast<std::size_t>((i * 7 + t) % 6)];
        const auto v = cache.get_or_load(key, [&] {
          loads.fetch_add(1);
          return resident_of(100.0);
        });
        ASSERT_NE(v, nullptr);
        ASSERT_DOUBLE_EQ(v->bytes, 100.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = cache.stats();
  EXPECT_EQ(s.loads, static_cast<std::uint64_t>(loads.load()));
  EXPECT_EQ(s.hits + s.misses, 8u * 200u);
  EXPECT_EQ(s.misses, s.loads);
  EXPECT_EQ(s.loads, s.evictions + s.entries);
  EXPECT_DOUBLE_EQ(s.bytes_resident, 100.0 * static_cast<double>(s.entries));
}

// ------------------------------------------------------------- executor --

TEST(TaskExecutor, RunsTasksAndReturnsResults) {
  TaskExecutor exec(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(exec.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(exec.thread_count(), 4);
}

TEST(TaskExecutor, PropagatesExceptionsThroughFutures) {
  TaskExecutor exec(2);
  auto f = exec.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(TaskExecutor, SubmitAfterShutdownThrows) {
  TaskExecutor exec(1);
  exec.shutdown();
  EXPECT_THROW((void)exec.submit([] { return 1; }), std::invalid_argument);
  exec.shutdown();  // idempotent
}

// -------------------------------------------------------------- service --

struct TempFile {
  std::string path;
  // The pid keeps concurrent ctest shards of this binary (each TEST runs
  // as its own process) from clobbering each other's fixture files.
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() /
              (std::to_string(::getpid()) + "." + name))
                 .string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    cfg.f_max = 40.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

/// One archive on disk, shared by every service test (built once).
const std::string& archive_path() {
  static const TempFile file("tlrwse_serve_test.tlra");
  static const bool built = [] {
    tlr::CompressionConfig cc;
    cc.nb = 12;
    cc.acc = 1e-4;
    io::save_archive(file.path, io::build_archive(dataset(), cc));
    return true;
  }();
  (void)built;
  return file.path;
}

OperatorKey archive_key() { return OperatorKey{archive_path(), 12, 1e-4}; }

SolveRequest make_request(RequestKind kind, index_t vsrc, int iters) {
  SolveRequest req;
  req.op = archive_key();
  req.kind = kind;
  req.vsrc = vsrc;
  req.rhs = mdd::virtual_source_rhs(dataset(), vsrc);
  req.lsqr.max_iters = iters;
  return req;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(SolveService, ConcurrentClientsMatchSequentialBitwise) {
  // 8 closed-loop clients x 2 requests against one archive, mixed adjoint
  // and LSQR. Acceptance: every response is bitwise identical to the
  // sequential solve of a freshly loaded operator, and the archive was
  // loaded exactly once.
  constexpr int kClients = 8;
  constexpr int kPerClient = 2;
  constexpr int kIters = 6;
  const index_t nvsrc = 4;

  // Sequential references, full default OpenMP team (the service caps its
  // inner teams; PR 1's thread-count invariance makes that bitwise-safe).
  const auto archive = io::load_archive(archive_path());
  const auto reference_op = io::make_operator(archive);
  std::vector<std::vector<float>> ref_adjoint, ref_lsqr;
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = kIters;
  for (index_t v = 0; v < nvsrc; ++v) {
    const auto rhs = mdd::virtual_source_rhs(dataset(), v);
    ref_adjoint.push_back(mdd::adjoint_reflectivity(*reference_op, rhs));
    ref_lsqr.push_back(mdd::solve_mdd(*reference_op, rhs, lsqr).x);
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 64;
  cfg.max_batch = 4;
  SolveService service(cfg);

  std::vector<std::thread> clients;
  std::vector<SolveResponse> responses(kClients * kPerClient);
  std::vector<RequestKind> kinds(kClients * kPerClient);
  std::vector<index_t> vsrcs(kClients * kPerClient);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int j = c * kPerClient + r;
        const auto kind = j % 2 == 0 ? RequestKind::kAdjoint : RequestKind::kLsqr;
        const index_t v = j % nvsrc;
        kinds[static_cast<std::size_t>(j)] = kind;
        vsrcs[static_cast<std::size_t>(j)] = v;
        responses[static_cast<std::size_t>(j)] =
            service.submit(make_request(kind, v, kIters)).get();
      }
    });
  }
  for (auto& t : clients) t.join();

  for (int j = 0; j < kClients * kPerClient; ++j) {
    const auto& r = responses[static_cast<std::size_t>(j)];
    ASSERT_EQ(r.status, SolveStatus::kOk) << "request " << j << ": " << r.error;
    EXPECT_EQ(r.vsrc, vsrcs[static_cast<std::size_t>(j)]);
    const auto& ref = kinds[static_cast<std::size_t>(j)] == RequestKind::kAdjoint
                          ? ref_adjoint[static_cast<std::size_t>(r.vsrc)]
                          : ref_lsqr[static_cast<std::size_t>(r.vsrc)];
    EXPECT_TRUE(bitwise_equal(r.x, ref)) << "request " << j;
  }

  const auto m = service.metrics();
  EXPECT_EQ(m.counters.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.counters.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.cache.loads, 1u) << "archive must be loaded exactly once";
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.cache.hits, m.counters.batches - 1);
  EXPECT_EQ(m.latency.count, static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_GT(m.latency.p99, 0.0);
}

TEST(SolveService, SharedBasisArchiveServedAndChargedSharedBytes) {
  // A shared-basis ("TLRS") archive goes through the same admission and
  // cache path: the service dispatches on the peeked header, the resident
  // entry charges the band-shared payload bytes (not the per-frequency
  // expansion), and responses are bitwise equal to a direct solve on an
  // operator rebuilt from the same file.
  TempFile file("tlrwse_serve_shared.tlrs");
  tlr::SharedBasisConfig sc;
  sc.nb = 12;
  sc.acc = 1e-4;
  const auto shared = io::build_shared_archive(dataset(), sc, 4);
  io::save_shared_archive(file.path, shared);

  const auto reference_op = io::make_operator(io::load_shared_archive(file.path));
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 6;
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  const auto ref = mdd::solve_mdd(*reference_op, rhs, lsqr).x;

  ServiceConfig cfg;
  cfg.workers = 2;
  SolveService service(cfg);
  SolveRequest req;
  req.op = OperatorKey{file.path, sc.nb, sc.acc};
  req.kind = RequestKind::kLsqr;
  req.vsrc = v;
  req.rhs = rhs;
  req.lsqr.max_iters = 6;
  const auto resp = service.submit(std::move(req)).get();
  ASSERT_EQ(resp.status, SolveStatus::kOk) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.x, ref));

  const auto m = service.metrics();
  EXPECT_EQ(m.cache.loads, 1u);
  // Residency is charged at the shared payload — exactly the number the
  // header advertises to admission control.
  EXPECT_DOUBLE_EQ(m.cache.bytes_resident, shared.shared_bytes());
  EXPECT_DOUBLE_EQ(io::peek_archive(file.path).payload_bytes,
                   shared.shared_bytes());
  EXPECT_GT(m.cache.datasets_per_gb(), 0.0);
}

TEST(SolveService, HalfArchiveChargedPackedBytesAndGaugesReportWin) {
  // A quantized (all-fp16) archive is admitted at its true packed bytes —
  // ~2x datasets_per_gb vs the fp32 twin — while the serve.cache.* gauges
  // report both the packed and the fp32-equivalent footprint so the
  // capacity win is observable. Solves stay bitwise equal to a direct
  // operator rebuilt from the same file.
  TempFile file("tlrwse_serve_fp16.tlra");
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  auto archive = io::build_archive(dataset(), cc);
  const double fp32_bytes = archive.compressed_bytes();
  tlr::MixedPrecisionPolicy policy;
  policy.fp16_below = 2.0;  // every tile
  policy.bf16_below = 0.0;
  io::quantize_archive(archive, policy);
  io::save_archive(file.path, archive);

  const auto reference_op = io::make_operator(io::load_archive(file.path));
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 6;
  const index_t v = 2;
  const auto rhs = mdd::virtual_source_rhs(dataset(), v);
  const auto ref = mdd::solve_mdd(*reference_op, rhs, lsqr).x;

  ServiceConfig cfg;
  cfg.workers = 2;
  SolveService service(cfg);
  SolveRequest req;
  req.op = OperatorKey{file.path, cc.nb, cc.acc};
  req.kind = RequestKind::kLsqr;
  req.vsrc = v;
  req.rhs = rhs;
  req.lsqr.max_iters = 6;
  const auto resp = service.submit(std::move(req)).get();
  ASSERT_EQ(resp.status, SolveStatus::kOk) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.x, ref));

  const auto m = service.metrics();
  EXPECT_DOUBLE_EQ(m.cache.bytes_resident, archive.compressed_bytes());
  EXPECT_NEAR(m.cache.bytes_resident, fp32_bytes / 2.0, 1e-6 * fp32_bytes);
  EXPECT_DOUBLE_EQ(m.cache.bytes_resident_fp32, fp32_bytes);
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(snap.gauges.at("serve.cache.packed_bytes"),
            static_cast<std::int64_t>(m.cache.bytes_resident));
  EXPECT_EQ(snap.gauges.at("serve.cache.fp32_equiv_bytes"),
            static_cast<std::int64_t>(m.cache.bytes_resident_fp32));
  EXPECT_NE(service.metrics_json().find("\"bytes_resident_fp32\""),
            std::string::npos);
}

/// Holds the single worker inside an LSQR iteration until released, giving
/// the backpressure tests a deterministic "service is busy" state.
struct Blocker {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::future<SolveResponse> response;

  void start(SolveService& service) {
    SolveRequest req = make_request(RequestKind::kLsqr, 0, 30);
    auto gate = released;
    req.lsqr.should_stop = [gate] {
      gate.wait();
      return true;
    };
    response = service.submit(std::move(req));
  }
  /// Waits until the worker has dequeued the blocker (queue drained).
  void wait_until_running(SolveService& service) {
    while (service.metrics().counters.queue_depth > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

TEST(SolveService, CoalescedAdjointsShareOneMultiRhsSweep) {
  // Hold the single worker busy so four adjoint requests pile up into one
  // per-operator batch; on release the worker must serve them with a
  // single multi-RHS adjoint sweep (serve.multi_rhs counts the tickets),
  // and every response must stay bitwise identical to the sequential
  // single-RHS solve.
  constexpr index_t kAdjoints = 4;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.max_batch = 8;
  SolveService service(cfg);

  const auto archive = io::load_archive(archive_path());
  const auto reference_op = io::make_operator(archive);
  std::vector<std::vector<float>> refs;
  for (index_t v = 0; v < kAdjoints; ++v) {
    refs.push_back(mdd::adjoint_reflectivity(
        *reference_op, mdd::virtual_source_rhs(dataset(), v)));
  }

  Blocker blocker;
  blocker.start(service);
  blocker.wait_until_running(service);

  std::vector<std::future<SolveResponse>> futures;
  for (index_t v = 0; v < kAdjoints; ++v) {
    futures.push_back(service.submit(make_request(RequestKind::kAdjoint, v, 6)));
  }
  blocker.release.set_value();
  EXPECT_EQ(blocker.response.get().status, SolveStatus::kOk);

  for (index_t v = 0; v < kAdjoints; ++v) {
    const auto r = futures[static_cast<std::size_t>(v)].get();
    ASSERT_EQ(r.status, SolveStatus::kOk) << r.error;
    EXPECT_EQ(r.vsrc, v);
    EXPECT_EQ(r.batch_size, static_cast<std::size_t>(kAdjoints));
    EXPECT_TRUE(bitwise_equal(r.x, refs[static_cast<std::size_t>(v)]))
        << "vsrc " << v;
  }

  const auto snap = service.registry().snapshot();
  EXPECT_EQ(snap.counters.at("serve.multi_rhs"),
            static_cast<std::uint64_t>(kAdjoints));
  EXPECT_EQ(service.metrics().counters.coalesced,
            static_cast<std::uint64_t>(kAdjoints));
}

TEST(SolveService, QueueFullIsTypedAndNonBlocking) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  SolveService service(cfg);

  Blocker blocker;
  blocker.start(service);
  blocker.wait_until_running(service);

  // The single queue slot takes one more request; the burst after it must
  // be rejected immediately with the typed status, not block.
  auto admitted = service.submit(make_request(RequestKind::kAdjoint, 1, 6));
  std::vector<std::future<SolveResponse>> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(service.submit(make_request(RequestKind::kAdjoint, 2, 6)));
  }
  for (auto& f : burst) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready)
        << "rejection must resolve immediately";
    const auto r = f.get();
    EXPECT_EQ(r.status, SolveStatus::kQueueFull);
    EXPECT_FALSE(r.error.empty());
  }

  blocker.release.set_value();
  // The blocker aborted via its own hook with no deadline set: that is a
  // normal (if early) completion, solved in exactly one iteration.
  const auto b = blocker.response.get();
  EXPECT_EQ(b.status, SolveStatus::kOk);
  EXPECT_EQ(b.iterations, 1);
  EXPECT_EQ(admitted.get().status, SolveStatus::kOk);

  const auto m = service.metrics();
  EXPECT_EQ(m.counters.rejected_queue_full, 4u);
  EXPECT_EQ(m.counters.completed, 2u);
  EXPECT_EQ(m.counters.queue_peak_depth, 1u);
}

TEST(SolveService, DeadlineExceededWhileQueued) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  SolveService service(cfg);

  Blocker blocker;
  blocker.start(service);
  blocker.wait_until_running(service);

  SolveRequest doomed = make_request(RequestKind::kLsqr, 1, 6);
  doomed.deadline_s = 1e-3;
  auto f = service.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker.release.set_value();

  const auto r = f.get();
  EXPECT_EQ(r.status, SolveStatus::kDeadlineExceeded);
  EXPECT_TRUE(r.x.empty());  // dropped at dequeue, no solve work spent
  EXPECT_GE(r.queue_wait_s, 1e-3);
  EXPECT_EQ(blocker.response.get().status, SolveStatus::kOk);
  EXPECT_EQ(service.metrics().counters.rejected_deadline, 1u);
}

TEST(SolveService, MissingArchiveRejectedAtAdmission) {
  SolveService service{ServiceConfig{}};
  SolveRequest req;
  req.op = OperatorKey{"/nonexistent/survey.tlra", 12, 1e-4};
  req.vsrc = 0;
  req.rhs.assign(128, 0.0f);
  auto f = service.submit(std::move(req));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  const auto r = f.get();
  EXPECT_EQ(r.status, SolveStatus::kArchiveMissing);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(service.metrics().counters.rejected_archive_missing, 1u);
  EXPECT_EQ(service.metrics().counters.admitted, 0u);
}

TEST(SolveService, ShutdownDrainsAdmittedRequests) {
  ServiceConfig cfg;
  cfg.workers = 2;
  SolveService service(cfg);
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(make_request(RequestKind::kAdjoint, i % 3, 6)));
  }
  service.shutdown();  // must finish everything already admitted
  for (auto& f : futures) EXPECT_EQ(f.get().status, SolveStatus::kOk);

  // A closed service rejects new work as backpressure, without blocking.
  auto late = service.submit(make_request(RequestKind::kAdjoint, 0, 6));
  EXPECT_EQ(late.get().status, SolveStatus::kQueueFull);
  service.shutdown();  // idempotent
}

TEST(SolveService, MetricsJsonHasStableKeys) {
  SolveService service{ServiceConfig{}};
  (void)service.submit(make_request(RequestKind::kAdjoint, 0, 6)).get();
  const std::string json = service.metrics_json();
  for (const char* k :
       {"\"requests\"", "\"submitted\"", "\"completed\"", "\"batching\"",
        "\"queue\"", "\"peak_depth\"", "\"cache\"", "\"hit_rate\"",
        "\"latency\"", "\"queue_wait\"", "\"solve\"", "\"p50_s\"",
        "\"p95_s\"", "\"p99_s\""}) {
    EXPECT_NE(json.find(k), std::string::npos) << "missing key " << k;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ToString, CoversEveryStatus) {
  EXPECT_STREQ(to_string(SolveStatus::kOk), "ok");
  EXPECT_STREQ(to_string(SolveStatus::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(SolveStatus::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(SolveStatus::kArchiveMissing), "archive_missing");
  EXPECT_STREQ(to_string(SolveStatus::kError), "error");
}

}  // namespace
}  // namespace tlrwse::serve
