// Consistency of the three byte/flop accountings that must agree for the
// roofline figures to be honest: the roofline module's arithmetic
// intensities, RealMvmShape's per-MVM bytes/flops, and the flight
// recorder's aggregate totals — including the ragged U-batch case where
// mn < m*n (rank rows drawn from several tiles of different heights).
#include <gtest/gtest.h>

#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/roofline/roofline.hpp"
#include "tlrwse/wse/chunking.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

TEST(CostConsistency, RooflineIntensityMatchesShapeAccounting) {
  RealMvmShape s;
  s.m = 70.0;
  s.n = 70.0;
  s.mn = s.m * s.n;
  EXPECT_DOUBLE_EQ(roofline::tlr_mvm_intensity_relative(s.mn, s.m, s.n),
                   s.flops() / s.relative_bytes());
  EXPECT_DOUBLE_EQ(roofline::tlr_mvm_intensity_absolute(s.mn, s.n),
                   s.flops() / s.absolute_bytes());
  // The asymptotic limits the paper quotes: ~0.5 relative, ~1/6 absolute.
  RealMvmShape big;
  big.m = 1e6;
  big.n = 1e6;
  big.mn = big.m * big.n;
  EXPECT_NEAR(big.flops() / big.relative_bytes(), 0.5, 1e-5);
  EXPECT_NEAR(big.flops() / big.absolute_bytes(), 1.0 / 6.0, 1e-6);
}

TEST(CostConsistency, RaggedUBatchHasMnBelowMTimesN) {
  // A chunk whose rank rows come from two tiles of different heights: the
  // U batch is ragged, so its element count mn is strictly less than the
  // bounding m*n product, and all byte/flop accounting must use mn.
  Chunk c;
  c.nb = 40;
  c.h = 10;
  c.segments.push_back({/*tile_row=*/0, /*rank_begin=*/0, /*count=*/6,
                        /*mb=*/32});
  c.segments.push_back({/*tile_row=*/1, /*rank_begin=*/0, /*count=*/4,
                        /*mb=*/24});
  const auto shapes = chunk_mvm_shapes(c);
  ASSERT_EQ(shapes.size(), 8u);
  const auto& v = shapes.front();
  EXPECT_DOUBLE_EQ(v.m, 10.0);
  EXPECT_DOUBLE_EQ(v.n, 40.0);
  EXPECT_DOUBLE_EQ(v.mn, 400.0);  // V is dense: mn == m*n
  const auto& u = shapes.back();
  EXPECT_DOUBLE_EQ(u.m, 32.0 + 24.0);
  EXPECT_DOUBLE_EQ(u.n, 10.0);
  EXPECT_DOUBLE_EQ(u.mn, 6.0 * 32.0 + 4.0 * 24.0);
  EXPECT_LT(u.mn, u.m * u.n);  // the ragged case
  // Roofline intensities keyed on (mn, m, n) still agree with the shape.
  EXPECT_DOUBLE_EQ(roofline::tlr_mvm_intensity_relative(u.mn, u.m, u.n),
                   u.flops() / u.relative_bytes());
  EXPECT_DOUBLE_EQ(roofline::tlr_mvm_intensity_absolute(u.mn, u.n),
                   u.flops() / u.absolute_bytes());
  // Ragged-aware bytes are strictly cheaper than the dense bound.
  RealMvmShape dense = u;
  dense.mn = u.m * u.n;
  EXPECT_LT(u.relative_bytes(), dense.relative_bytes());
  EXPECT_LT(u.flops(), dense.flops());
}

class RaggedSource final : public RankSource {
 public:
  RaggedSource() : grid_(96, 80, 40) {}
  [[nodiscard]] index_t num_freqs() const override { return 2; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        const index_t r = 1 + (i + 3 * j + q) % 7;
        ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            r, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return ranks;
  }

 private:
  tlr::TileGrid grid_;
};

// The recorder's aggregate arithmetic intensity (fed per-PE from the same
// shapes) must equal flops/bytes of the simulator totals — this is the
// identity bench_fig15_roofline relies on to place the TLR-MVM point.
TEST(CostConsistency, RecorderAggregateIntensityMatchesSimulator) {
  if (!obs::FlightRecorder::compiled_in()) {
    GTEST_SKIP() << "TLRWSE_TRACING=OFF";
  }
  RaggedSource src;
  for (Strategy strategy :
       {Strategy::kSplitStackWidth, Strategy::kScatterRealMvms}) {
    ClusterConfig cfg;
    cfg.stack_width = 8;
    cfg.strategy = strategy;
    obs::FlightRecorder rec(flight_config_for(cfg.spec));
    cfg.recorder = &rec;
    const auto rep = simulate_cluster(src, cfg);
    const auto flight = rec.report();
    ASSERT_GT(flight.total_relative_bytes(), 0.0);
    const double ai_rec =
        flight.total_flops() / flight.total_relative_bytes();
    const double ai_sim = rep.flops / rep.relative_bytes;
    EXPECT_NEAR(ai_rec, ai_sim, 1e-12 * ai_sim);
    const double ai_abs_rec =
        flight.total_flops() / flight.total_absolute_bytes();
    const double ai_abs_sim = rep.flops / rep.absolute_bytes;
    EXPECT_NEAR(ai_abs_rec, ai_abs_sim, 1e-12 * ai_abs_sim);
    // TLR-MVM intensities live between the ragged extremes the paper
    // quotes: below the dense 0.5 / above 0 relative, and under 1/6 + eps
    // absolute.
    EXPECT_GT(ai_rec, 0.0);
    EXPECT_LT(ai_rec, 0.5);
    EXPECT_LT(ai_abs_rec, 1.0 / 6.0 + 1e-3);
  }
}

}  // namespace
}  // namespace tlrwse::wse
