// Integration tests spanning the full pipeline: synthetic dataset ->
// Hilbert ordering -> TLR compression -> MDC operator -> LSQR MDD, plus
// the WSE mapping of the very same compressed kernels — the end-to-end
// story of the paper at test scale.
#include <gtest/gtest.h>

#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/wse/functional.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse {
namespace {

const seismic::SeismicDataset& dataset() {
  static const seismic::SeismicDataset data = [] {
    seismic::DatasetConfig cfg;
    cfg.geometry = seismic::AcquisitionGeometry::small_scale(14, 10, 12, 9);
    cfg.nt = 128;
    cfg.f_min = 4.0;
    // 28 Hz cap keeps ~2.7 samples per wavelength at the 20 m spacing, so
    // the Hilbert-sorted tiles have genuine low-rank structure even at this
    // tiny station count (the paper-scale grids are far denser per tile).
    cfg.f_max = 28.0;
    return seismic::build_dataset(cfg);
  }();
  return data;
}

TEST(Integration, CompressOperateInvert) {
  const auto& data = dataset();
  tlr::CompressionConfig cc;
  cc.nb = 18;
  cc.acc = 1e-4;

  // Kernels compress (structure is there after the Hilbert sort).
  const auto stats = mdd::kernel_compression_stats(data, cc);
  EXPECT_GT(stats.ratio(), 1.0);

  // TLR-backed MDD inversion recovers the known truth.
  const auto op = mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);
  const index_t v = data.num_receivers() / 3;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 50;
  const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
  EXPECT_LT(mdd::nmse(sol.x, truth), 0.5);
  EXPECT_GT(mdd::correlation(sol.x, truth), 0.75);
}

TEST(Integration, WseMappingOfRealKernelsIsExact) {
  // Compress every frequency kernel, then push one through the WSE chunked
  // execution and compare with the reference TLR-MVM.
  const auto& data = dataset();
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  const index_t q = data.num_freqs() / 2;
  const auto tlr_mat =
      tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc);
  tlr::StackedTlr<cf32> stacks(tlr_mat);

  Rng rng(55);
  std::vector<cf32> x(static_cast<std::size_t>(data.num_receivers()));
  fill_normal(rng, x.data(), x.size());

  const auto y_ref = tlr::tlr_mvm_fused(stacks, std::span<const cf32>(x));
  for (index_t sw : {4, 16, 64}) {
    const auto y = wse::functional_wse_mvm(stacks, sw, std::span<const cf32>(x));
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      num += std::norm(static_cast<cf64>(y[i]) - static_cast<cf64>(y_ref[i]));
      den += std::norm(static_cast<cf64>(y_ref[i]));
    }
    EXPECT_LT(std::sqrt(num / std::max(den, 1e-30)), 1e-4) << "sw=" << sw;
  }
}

TEST(Integration, WsePerformanceReportOnRealKernels) {
  // Map all compressed frequency matrices of the small dataset onto the
  // simulated machine and verify the report is physically sensible.
  const auto& data = dataset();
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  std::vector<tlr::TlrMatrix<cf32>> mats;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    mats.push_back(
        tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc));
  }
  wse::TlrRankSource source(mats);

  wse::ClusterConfig cfg;
  cfg.stack_width = 16;
  const auto rep = wse::simulate_cluster(source, cfg);
  EXPECT_GT(rep.chunks, 0);
  EXPECT_TRUE(rep.fits_sram);
  EXPECT_EQ(rep.systems, 1);  // tiny dataset fits one CS-2
  EXPECT_GT(rep.relative_bw, 0.0);
  EXPECT_GT(rep.absolute_bw, rep.relative_bw);

  // The total relative bytes correspond to 16x the complex element count
  // of the bases (each real half read twice across the four real MVMs),
  // plus vector terms — so at least 16x.
  double elems = 0.0;
  for (const auto& m : mats) elems += m.compressed_bytes() / sizeof(cf32);
  EXPECT_GT(rep.relative_bytes, 16.0 * elems);
}

TEST(Integration, StrongScalingImprovesBandwidth) {
  const auto& data = dataset();
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  std::vector<tlr::TlrMatrix<cf32>> mats;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    mats.push_back(
        tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc));
  }
  wse::TlrRankSource source(mats);

  double prev_bw = 0.0;
  for (index_t sw : {64, 32, 16, 8}) {  // paper's strategy-1 scaling
    wse::ClusterConfig cfg;
    cfg.stack_width = sw;
    const auto rep = wse::simulate_cluster(source, cfg);
    EXPECT_GT(rep.relative_bw, prev_bw);
    prev_bw = rep.relative_bw;
  }
}

}  // namespace
}  // namespace tlrwse
