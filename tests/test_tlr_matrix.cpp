// Tests for TLR compression: accuracy per backend, compression accounting,
// rank statistics, reconstruction.
#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::tlr {
namespace {

using testing_helpers = int;

class Backends : public ::testing::TestWithParam<CompressionBackend> {};

TEST_P(Backends, CompressionMeetsTileTolerance) {
  const auto backend = GetParam();
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(96, 72, 15.0);
  CompressionConfig cfg;
  cfg.nb = 24;
  cfg.acc = 1e-3;
  cfg.backend = backend;
  const auto t = compress_tlr(a, cfg);
  const auto rec = t.reconstruct();
  // Per-tile Frobenius tolerance implies a global bound:
  // ||A - A_tlr||_F <= acc * sqrt(sum_tiles ||T||_F^2) = acc * ||A||_F.
  // ACA's heuristic stopping rule gets extra slack.
  const double slack = (backend == CompressionBackend::kAca) ? 10.0 : 1.5;
  EXPECT_LT(la::frobenius_distance(rec, a),
            slack * cfg.acc * la::frobenius_norm(a));
  EXPECT_GT(t.compression_ratio(), 1.2) << "no compression achieved";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Backends,
                         ::testing::Values(CompressionBackend::kSvd,
                                           CompressionBackend::kRrqr,
                                           CompressionBackend::kRsvd,
                                           CompressionBackend::kAca));

class TileSizes : public ::testing::TestWithParam<int> {};

TEST_P(TileSizes, RaggedTilingReconstructs) {
  const index_t nb = GetParam();
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(67, 45, 9.0);
  CompressionConfig cfg;
  cfg.nb = nb;
  cfg.acc = 1e-4;
  const auto t = compress_tlr(a, cfg);
  EXPECT_EQ(t.rows(), 67);
  EXPECT_EQ(t.cols(), 45);
  const auto rec = t.reconstruct();
  EXPECT_LT(la::frobenius_distance(rec, a),
            1.5e-4 * la::frobenius_norm(a));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TileSizes, ::testing::Values(7, 16, 24, 45, 70));

TEST(TlrMatrix, TighterAccuracyIncreasesRanksAndBytes) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(80, 80, 20.0);
  CompressionConfig loose, tight;
  loose.nb = tight.nb = 20;
  loose.acc = 1e-2;
  tight.acc = 1e-6;
  const auto tl = compress_tlr(a, loose);
  const auto tt = compress_tlr(a, tight);
  EXPECT_LE(tl.compressed_bytes(), tt.compressed_bytes());
  EXPECT_LE(tl.rank_stats().mean, tt.rank_stats().mean);
  EXPECT_GE(tl.compression_ratio(), tt.compression_ratio());
}

TEST(TlrMatrix, RankStatsConsistent) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(60, 40, 10.0);
  CompressionConfig cfg;
  cfg.nb = 20;
  cfg.acc = 1e-3;
  const auto t = compress_tlr(a, cfg);
  const auto s = t.rank_stats();
  EXPECT_LE(s.min, s.max);
  EXPECT_GE(s.mean, static_cast<double>(s.min));
  EXPECT_LE(s.mean, static_cast<double>(s.max));
  for (index_t j = 0; j < t.grid().nt(); ++j) {
    for (index_t i = 0; i < t.grid().mt(); ++i) {
      EXPECT_GE(t.rank(i, j), s.min);
      EXPECT_LE(t.rank(i, j), s.max);
      EXPECT_LE(t.rank(i, j),
                std::min(t.grid().tile_rows(i), t.grid().tile_cols(j)));
    }
  }
}

TEST(TlrMatrix, DenseBytesMatchesDimensions) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(32, 16);
  CompressionConfig cfg;
  cfg.nb = 8;
  const auto t = compress_tlr(a, cfg);
  EXPECT_DOUBLE_EQ(t.dense_bytes(), 32.0 * 16.0 * sizeof(cf32));
}

TEST(TlrMatrix, MaxRankCapRespected) {
  Rng rng(5);
  const auto a = tlrwse::testing::random_matrix<cf32>(rng, 40, 40);
  CompressionConfig cfg;
  cfg.nb = 10;
  cfg.acc = 1e-12;  // would be full rank without the cap
  cfg.max_rank = 3;
  const auto t = compress_tlr(a, cfg);
  EXPECT_LE(t.rank_stats().max, 3);
}

TEST(TlrMatrix, RandomMatrixDoesNotCompress) {
  // Sanity: incompressible data stays near full rank at tight accuracy
  // (documents that the compression comes from structure, not magic).
  Rng rng(6);
  const auto a = tlrwse::testing::random_matrix<cf32>(rng, 48, 48);
  CompressionConfig cfg;
  cfg.nb = 12;
  cfg.acc = 1e-6;
  const auto t = compress_tlr(a, cfg);
  EXPECT_GE(t.rank_stats().mean, 10.0);
}

TEST(TlrMatrix, RsvdDeterministicAcrossRuns) {
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(48, 36, 8.0);
  CompressionConfig cfg;
  cfg.nb = 12;
  cfg.acc = 1e-4;
  cfg.backend = CompressionBackend::kRsvd;
  cfg.seed = 77;
  const auto t1 = compress_tlr(a, cfg);
  const auto t2 = compress_tlr(a, cfg);
  for (index_t j = 0; j < t1.grid().nt(); ++j) {
    for (index_t i = 0; i < t1.grid().mt(); ++i) {
      EXPECT_EQ(t1.rank(i, j), t2.rank(i, j));
    }
  }
}

}  // namespace
}  // namespace tlrwse::tlr
