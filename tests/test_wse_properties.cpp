// Property tests over the WSE mapping layer: conservation laws that must
// hold for ANY rank field and stack width — total work is invariant under
// the decomposition, traffic equals the per-chunk shape sums, and the two
// strategies account identical totals.
#include <gtest/gtest.h>

#include <tuple>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

/// Random rank field with a deterministic seed.
class RandomSource final : public RankSource {
 public:
  RandomSource(index_t rows, index_t cols, index_t nb, index_t nf,
               std::uint64_t seed)
      : grid_(rows, cols, nb), nf_(nf), seed_(seed) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    Rng rng(seed_ + static_cast<std::uint64_t>(q) * 7919);
    std::vector<index_t> r(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        const index_t cap =
            std::min(grid_.tile_rows(i), grid_.tile_cols(j));
        // Includes rank-0 tiles (dropped) with probability ~1/(cap+1).
        r[static_cast<std::size_t>(grid_.tile_index(i, j))] =
            rng.integer(0, cap);
      }
    }
    return r;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  std::uint64_t seed_;
};

/// Sum of per-tile rank volume: V elements = sum k*nb_j, U = sum k*mb_i.
std::pair<double, double> base_elements(const RankSource& src) {
  const auto& g = src.grid();
  double v = 0.0, u = 0.0;
  for (index_t q = 0; q < src.num_freqs(); ++q) {
    const auto ranks = src.tile_ranks(q);
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto k = static_cast<double>(
            ranks[static_cast<std::size_t>(g.tile_index(i, j))]);
        v += k * static_cast<double>(g.tile_cols(j));
        u += k * static_cast<double>(g.tile_rows(i));
      }
    }
  }
  return {v, u};
}

class Sweeps
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (sw, seed)

TEST_P(Sweeps, FlopVolumeIsInvariantUnderChunking) {
  const auto [sw, seed] = GetParam();
  RandomSource src(130, 90, 16, 3, static_cast<std::uint64_t>(seed));
  const auto [v_elems, u_elems] = base_elements(src);
  // Eight real MVMs: each of the four V (U) MVMs touches v (u) elements.
  const double expect_flops = 2.0 * 4.0 * (v_elems + u_elems);

  double got = 0.0;
  for_each_chunk(src, sw, [&](const Chunk& c) {
    for (const auto& s : chunk_mvm_shapes(c)) got += s.flops();
  });
  EXPECT_NEAR(got, expect_flops, 1e-6 * (expect_flops + 1.0))
      << "sw=" << sw << " seed=" << seed;
}

TEST_P(Sweeps, StrategiesAccountIdenticalTotals) {
  const auto [sw, seed] = GetParam();
  RandomSource src(110, 70, 14, 2, static_cast<std::uint64_t>(seed) + 99);
  ClusterConfig c1;
  c1.stack_width = sw;
  c1.strategy = Strategy::kSplitStackWidth;
  ClusterConfig c2 = c1;
  c2.strategy = Strategy::kScatterRealMvms;
  const auto r1 = simulate_cluster(src, c1);
  const auto r2 = simulate_cluster(src, c2);
  EXPECT_DOUBLE_EQ(r1.relative_bytes, r2.relative_bytes);
  EXPECT_DOUBLE_EQ(r1.absolute_bytes, r2.absolute_bytes);
  EXPECT_DOUBLE_EQ(r1.flops, r2.flops);
  EXPECT_EQ(r1.chunks, r2.chunks);
}

INSTANTIATE_TEST_SUITE_P(Grid, Sweeps,
                         ::testing::Combine(::testing::Values(1, 5, 16, 64),
                                            ::testing::Values(1, 2, 3)));

TEST(Conservation, RelativeBytesMatchClosedForm) {
  // relative = 4 * sum(MN + M + N) over the 8 real MVMs of every chunk.
  RandomSource src(96, 64, 12, 2, 5);
  double manual = 0.0;
  for_each_chunk(src, 8, [&](const Chunk& c) {
    for (const auto& s : chunk_mvm_shapes(c)) {
      manual += 4.0 * (s.mn + s.m + s.n);
    }
  });
  ClusterConfig cfg;
  cfg.stack_width = 8;
  const auto rep = simulate_cluster(src, cfg);
  EXPECT_DOUBLE_EQ(rep.relative_bytes, manual);
}

TEST(Conservation, WorstCyclesIsMaxOfChunkCycles) {
  RandomSource src(96, 64, 12, 2, 7);
  ClusterConfig cfg;
  cfg.stack_width = 8;
  const CostModelParams cost;
  double manual_worst = 0.0;
  for_each_chunk(src, 8, [&](const Chunk& c) {
    double cycles = cost.cycles_per_call;
    for (const auto& s : chunk_mvm_shapes(c)) {
      cycles += mvm_cycles(cost, s.mn, s.n);
    }
    manual_worst = std::max(manual_worst, cycles);
  });
  const auto rep = simulate_cluster(src, cfg);
  EXPECT_DOUBLE_EQ(rep.worst_cycles, manual_worst);
}

}  // namespace
}  // namespace tlrwse::wse
