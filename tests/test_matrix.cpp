// Unit tests for the dense Matrix container.
#include <gtest/gtest.h>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/matrix.hpp"

namespace tlrwse::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  MatrixF m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  MatrixD m(3, 4, 2.5);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 2.5);
  }
}

TEST(Matrix, ColumnMajorLayout) {
  MatrixF m(4, 3);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<float>(10 * j + i);
  }
  // Column j is contiguous.
  const float* c1 = m.col(1);
  EXPECT_EQ(c1[0], 10.0f);
  EXPECT_EQ(c1[3], 13.0f);
  EXPECT_EQ(m.data()[4], 10.0f);  // first element of column 1
}

TEST(Matrix, BlockExtractAndSet) {
  MatrixD m(5, 6);
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 5; ++i) m(i, j) = static_cast<double>(i + 10 * j);
  }
  const auto b = m.block(1, 2, 3, 2);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_EQ(b(0, 0), m(1, 2));
  EXPECT_EQ(b(2, 1), m(3, 3));

  MatrixD z(5, 6, 0.0);
  z.set_block(1, 2, b);
  EXPECT_EQ(z(1, 2), m(1, 2));
  EXPECT_EQ(z(0, 0), 0.0);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  MatrixD m(3, 3, 0.0);
  EXPECT_THROW(m.block(2, 0, 2, 1), std::invalid_argument);
  MatrixD b(2, 2, 0.0);
  EXPECT_THROW(m.set_block(2, 2, b), std::invalid_argument);
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  MatrixCD m(2, 3);
  m(0, 0) = {1, 2};
  m(1, 2) = {3, -4};
  const auto a = m.adjoint();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_EQ(a(0, 0), cf64(1, -2));
  EXPECT_EQ(a(2, 1), cf64(3, 4));
}

TEST(Matrix, TransposeDoesNotConjugate) {
  MatrixCD m(2, 2);
  m(0, 1) = {5, 6};
  const auto t = m.transpose();
  EXPECT_EQ(t(1, 0), cf64(5, 6));
}

TEST(Matrix, IdentityAndEquality) {
  const auto eye = MatrixD::identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(1, 0), 0.0);
  EXPECT_TRUE(eye == MatrixD::identity(3));
  EXPECT_FALSE(eye == MatrixD(3, 3, 0.0));
}

TEST(Matrix, AdjointIsInvolution) {
  Rng rng(3);
  MatrixCF m(7, 5);
  fill_normal(rng, m.data(), static_cast<std::size_t>(m.size()));
  EXPECT_TRUE(m.adjoint().adjoint() == m);
}

TEST(Matrix, NegativeDimsThrow) {
  EXPECT_THROW(MatrixF(-1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::la
