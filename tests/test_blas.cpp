// Tests of the BLAS-like kernels against naive references, including
// parameterized sweeps over matrix shapes and all four precisions' core
// properties.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"

namespace tlrwse::la {
namespace {

template <typename T>
Matrix<T> random_matrix(Rng& rng, index_t m, index_t n) {
  Matrix<T> a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  return a;
}

template <typename T>
std::vector<T> random_vector(Rng& rng, index_t n) {
  std::vector<T> v(static_cast<std::size_t>(n));
  fill_normal(rng, v.data(), v.size());
  return v;
}

/// Naive O(mn) reference MVM.
template <typename T>
std::vector<T> naive_mvm(const Matrix<T>& a, const std::vector<T>& x) {
  std::vector<T> y(static_cast<std::size_t>(a.rows()), T{});
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      y[static_cast<std::size_t>(i)] += a(i, j) * x[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

class GemvShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GemvShapes, MatchesNaiveComplex) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const auto a = random_matrix<cf64>(rng, m, n);
  const auto x = random_vector<cf64>(rng, n);
  std::vector<cf64> y(static_cast<std::size_t>(m));
  gemv(a, std::span<const cf64>(x), std::span<cf64>(y));
  const auto ref = naive_mvm(a, x);
  for (index_t i = 0; i < m; ++i) {
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(i)] -
                         ref[static_cast<std::size_t>(i)]),
                0.0, 1e-10 * n);
  }
}

TEST_P(GemvShapes, AdjointMatchesNaive) {
  const auto [m, n] = GetParam();
  Rng rng(m * 37 + n);
  const auto a = random_matrix<cf64>(rng, m, n);
  const auto x = random_vector<cf64>(rng, m);
  std::vector<cf64> y(static_cast<std::size_t>(n));
  gemv_adjoint(a, std::span<const cf64>(x), std::span<cf64>(y));
  // Reference: (A^H x)_j = sum_i conj(a_ij) x_i.
  for (index_t j = 0; j < n; ++j) {
    cf64 ref{};
    for (index_t i = 0; i < m; ++i) {
      ref += std::conj(a(i, j)) * x[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(j)] - ref), 0.0,
                1e-10 * m);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemvShapes,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(1, 7),
                                           std::make_tuple(7, 1),
                                           std::make_tuple(8, 8),
                                           std::make_tuple(13, 5),
                                           std::make_tuple(5, 13),
                                           std::make_tuple(64, 33),
                                           std::make_tuple(70, 70)));

TEST(Gemv, AlphaBetaSemantics) {
  Rng rng(5);
  const auto a = random_matrix<double>(rng, 4, 3);
  const auto x = random_vector<double>(rng, 3);
  std::vector<double> y0(4, 1.0);
  auto y = y0;
  gemv(a, std::span<const double>(x), std::span<double>(y), 2.0, 3.0);
  const auto ax = naive_mvm(a, x);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                2.0 * ax[static_cast<std::size_t>(i)] + 3.0, 1e-12);
  }
}

TEST(Gemv, SizeMismatchThrows) {
  MatrixD a(3, 2, 0.0);
  std::vector<double> x(3), y(3);
  EXPECT_THROW(
      gemv(a, std::span<const double>(x), std::span<double>(y)),
      std::invalid_argument);
}

TEST(Gemm, MatchesComposedGemv) {
  Rng rng(11);
  const auto a = random_matrix<cf32>(rng, 9, 6);
  const auto b = random_matrix<cf32>(rng, 6, 4);
  const auto c = matmul(a, b);
  for (index_t j = 0; j < 4; ++j) {
    std::vector<cf32> bj(b.col(j), b.col(j) + 6);
    const auto ref = naive_mvm(a, bj);
    for (index_t i = 0; i < 9; ++i) {
      EXPECT_NEAR(std::abs(c(i, j) - ref[static_cast<std::size_t>(i)]), 0.0,
                  1e-4);
    }
  }
}

TEST(Gemm, AccumulatesWithBeta) {
  Rng rng(13);
  const auto a = random_matrix<double>(rng, 3, 3);
  const auto b = random_matrix<double>(rng, 3, 3);
  auto c = MatrixD(3, 3, 1.0);
  gemm(a, b, c, 1.0, 1.0);
  const auto ab = matmul(a, b);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(c(i, j), ab(i, j) + 1.0, 1e-12);
    }
  }
}

TEST(Gemm, InnerDimMismatchThrows) {
  MatrixD a(2, 3, 0.0), b(2, 2, 0.0), c(2, 2, 0.0);
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
}

TEST(Dot, HermitianProperty) {
  Rng rng(17);
  const auto x = random_vector<cf64>(rng, 20);
  const auto y = random_vector<cf64>(rng, 20);
  const auto xy = dot(std::span<const cf64>(x), std::span<const cf64>(y));
  const auto yx = dot(std::span<const cf64>(y), std::span<const cf64>(x));
  EXPECT_NEAR(std::abs(xy - std::conj(yx)), 0.0, 1e-12);
}

TEST(Norm2, KnownValues) {
  std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(std::span<const double>(v)), 5.0);
  std::vector<cf64> z{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(norm2(std::span<const cf64>(z)), 5.0);
}

TEST(Norm2, RobustToExtremeScales) {
  std::vector<float> tiny(10, 1e-30f);
  EXPECT_GT(norm2(std::span<const float>(tiny)), 0.0f);
  std::vector<float> huge(4, 1e20f);
  EXPECT_FALSE(std::isinf(norm2(std::span<const float>(huge))));
}

TEST(Frobenius, MatchesNorm2OfData) {
  Rng rng(19);
  const auto a = random_matrix<cf64>(rng, 6, 5);
  const auto n1 = frobenius_norm(a);
  double sum = 0.0;
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i < 6; ++i) sum += std::norm(a(i, j));
  }
  EXPECT_NEAR(n1, std::sqrt(sum), 1e-12);
  EXPECT_NEAR(frobenius_distance(a, a), 0.0, 1e-15);
}

TEST(GemvNan, NanInAPropagatesEvenWhenXIsZero) {
  // Regression for the old `if (axj == 0) continue;` zero-skip: with
  // x[j] == 0 the column of A holding the NaN was never touched, so a
  // NaN/Inf in the operator silently vanished from the product. IEEE says
  // NaN * 0 = NaN, and the kernels must agree.
  Matrix<float> a(3, 2);
  a(0, 0) = std::numeric_limits<float>::quiet_NaN();
  a(1, 0) = 1.0f;
  a(2, 0) = std::numeric_limits<float>::infinity();
  a(0, 1) = 1.0f;
  a(1, 1) = 2.0f;
  a(2, 1) = 3.0f;
  const std::vector<float> x{0.0f, 1.0f};
  std::vector<float> y(3, 0.0f);
  gemv(a, std::span<const float>(x), std::span<float>(y));
  EXPECT_TRUE(std::isnan(y[0]));
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_TRUE(std::isnan(y[2]));  // inf * 0 = NaN

  // Same contract for gemm: a zero entry in B must not hide a NaN in A.
  Matrix<float> b(2, 1);
  b(0, 0) = 0.0f;
  b(1, 0) = 1.0f;
  Matrix<float> c(3, 1);
  gemm(a, b, c);
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_EQ(c(1, 0), 2.0f);
  EXPECT_TRUE(std::isnan(c(2, 0)));
}

TEST(PairwiseAccumulation, DotBeatsNaiveOnIllConditionedInput) {
  // Ill-conditioned sum: many small values riding on alternating large
  // ones. A naive left-to-right float accumulation loses the small terms;
  // blocked pairwise accumulation keeps error O(log n) instead of O(n).
  const std::size_t n = 1 << 16;
  std::vector<float> x(n), y(n, 1.0f);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i % 2 == 0) ? 1.0e4f : 1.0f / static_cast<float>(i + 1);
  }
  long double exact = 0.0L;
  for (std::size_t i = 0; i < n; ++i) exact += static_cast<long double>(x[i]);
  float naive = 0.0f;
  for (std::size_t i = 0; i < n; ++i) naive += x[i];

  const float pairwise =
      dot(std::span<const float>(x), std::span<const float>(y));
  const auto err = [&](float v) {
    return std::abs(static_cast<double>(v) - static_cast<double>(exact)) /
           std::abs(static_cast<double>(exact));
  };
  EXPECT_LE(err(pairwise), err(naive));
  EXPECT_LT(err(pairwise), 1e-6);

  // norm2 under the same regime, against a double-precision reference.
  long double ss = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    ss += static_cast<long double>(x[i]) * static_cast<long double>(x[i]);
  }
  const double ref_norm = std::sqrt(static_cast<double>(ss));
  const float n2 = norm2(std::span<const float>(x));
  EXPECT_LT(std::abs(static_cast<double>(n2) - ref_norm) / ref_norm, 1e-6);
}

TEST(AxpyScal, Basic) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, std::span<const double>(x), std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  scal(0.5, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

}  // namespace
}  // namespace tlrwse::la
