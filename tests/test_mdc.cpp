// Tests for the MDC operator: construction, forward action against a
// manual frequency-domain computation, the adjoint dot test (LSQR's
// correctness requirement), and backend equivalence.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::mdc {
namespace {

std::unique_ptr<MdcOperator> make_dense_op(index_t nt,
                                           const std::vector<index_t>& bins,
                                           const std::vector<la::MatrixCF>& ks) {
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  for (const auto& k : ks) kernels.push_back(std::make_unique<DenseMvm>(k));
  return std::make_unique<MdcOperator>(nt, bins, std::move(kernels));
}

struct Fixture {
  index_t nt = 64;
  index_t ns = 10;
  index_t nr = 7;
  std::vector<index_t> bins{3, 7, 12};
  std::vector<la::MatrixCF> ks;
  std::unique_ptr<MdcOperator> op;

  Fixture() {
    for (std::size_t q = 0; q < bins.size(); ++q) {
      ks.push_back(tlrwse::testing::oscillatory_matrix<cf32>(
          ns, nr, 5.0 + 3.0 * static_cast<double>(q)));
    }
    op = make_dense_op(nt, bins, ks);
  }
};

TEST(MdcOperator, Dimensions) {
  Fixture f;
  EXPECT_EQ(f.op->rows(), f.nt * f.ns);
  EXPECT_EQ(f.op->cols(), f.nt * f.nr);
  EXPECT_EQ(f.op->num_freqs(), 3);
}

TEST(MdcOperator, RejectsDcAndNyquistBins) {
  Fixture f;
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  kernels.push_back(std::make_unique<DenseMvm>(f.ks[0]));
  EXPECT_THROW(MdcOperator(64, {0}, std::move(kernels)),
               std::invalid_argument);
  std::vector<std::unique_ptr<FrequencyMvm>> kernels2;
  kernels2.push_back(std::make_unique<DenseMvm>(f.ks[0]));
  EXPECT_THROW(MdcOperator(64, {32}, std::move(kernels2)),
               std::invalid_argument);
}

TEST(MdcOperator, RejectsMismatchedKernels) {
  Fixture f;
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  kernels.push_back(std::make_unique<DenseMvm>(f.ks[0]));
  kernels.push_back(std::make_unique<DenseMvm>(
      tlrwse::testing::oscillatory_matrix<cf32>(4, 4)));
  EXPECT_THROW(MdcOperator(64, {3, 5}, std::move(kernels)),
               std::invalid_argument);
}

TEST(MdcOperator, ForwardMatchesManualFrequencyDomain) {
  Fixture f;
  Rng rng(3);
  std::vector<float> x(static_cast<std::size_t>(f.op->cols()));
  for (auto& v : x) v = static_cast<float>(rng.normal());

  std::vector<float> y(static_cast<std::size_t>(f.op->rows()));
  f.op->apply(std::span<const float>(x), std::span<float>(y));

  // Manual: rfft each receiver trace, apply K at each bin, irfft source side.
  const index_t nf = f.nt / 2 + 1;
  std::vector<cf32> xhat(static_cast<std::size_t>(nf * f.nr));
  fft::rfft_batch(std::span<const float>(x), f.nt, f.nr,
                  std::span<cf32>(xhat));
  std::vector<cf32> yhat(static_cast<std::size_t>(nf * f.ns), cf32{});
  for (std::size_t q = 0; q < f.bins.size(); ++q) {
    const index_t bin = f.bins[q];
    for (index_t s = 0; s < f.ns; ++s) {
      cf32 acc{};
      for (index_t r = 0; r < f.nr; ++r) {
        acc += f.ks[q](s, r) * xhat[static_cast<std::size_t>(r * nf + bin)];
      }
      yhat[static_cast<std::size_t>(s * nf + bin)] = acc;
    }
  }
  std::vector<float> y_ref(y.size());
  fft::irfft_batch(std::span<const cf32>(yhat), f.nt, f.ns,
                   std::span<float>(y_ref));
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 1e-4);
  }
}

TEST(MdcOperator, AdjointDotTest) {
  Fixture f;
  Rng rng(7);
  std::vector<float> x(static_cast<std::size_t>(f.op->cols()));
  std::vector<float> y(static_cast<std::size_t>(f.op->rows()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> ax(y.size());
  std::vector<float> aty(x.size());
  f.op->apply(std::span<const float>(x), std::span<float>(ax));
  f.op->apply_adjoint(std::span<const float>(y), std::span<float>(aty));

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-4 * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

TEST(MdcOperator, OutOfBandInputIsAnnihilated) {
  // A pure sinusoid at a bin with no kernel passes through as zero.
  Fixture f;
  std::vector<float> x(static_cast<std::size_t>(f.op->cols()), 0.0f);
  for (index_t r = 0; r < f.nr; ++r) {
    for (index_t t = 0; t < f.nt; ++t) {
      x[static_cast<std::size_t>(r * f.nt + t)] = std::cos(
          2.0f * 3.14159265f * 20.0f * static_cast<float>(t) / 64.0f);
    }
  }
  std::vector<float> y(static_cast<std::size_t>(f.op->rows()));
  f.op->apply(std::span<const float>(x), std::span<float>(y));
  double energy = 0.0;
  for (float v : y) energy += static_cast<double>(v) * v;
  EXPECT_NEAR(energy, 0.0, 1e-6);
}

TEST(MdcOperator, TlrBackendMatchesDense) {
  Fixture f;
  tlr::CompressionConfig cc;
  cc.nb = 4;
  cc.acc = 1e-6;
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  for (const auto& k : f.ks) {
    tlr::StackedTlr<cf32> stacks(tlr::compress_tlr(k, cc));
    kernels.push_back(
        std::make_unique<TlrMvm>(std::move(stacks), TlrKernel::kFused));
  }
  MdcOperator tlr_op(f.nt, f.bins, std::move(kernels));

  Rng rng(11);
  std::vector<float> x(static_cast<std::size_t>(f.op->cols()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y_dense(static_cast<std::size_t>(f.op->rows()));
  std::vector<float> y_tlr(y_dense.size());
  f.op->apply(std::span<const float>(x), std::span<float>(y_dense));
  tlr_op.apply(std::span<const float>(x), std::span<float>(y_tlr));
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < y_dense.size(); ++i) {
    num += std::pow(static_cast<double>(y_tlr[i]) - y_dense[i], 2);
    den += std::pow(static_cast<double>(y_dense[i]), 2);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-3);
}

// Production tile sizes: nb = 32/64/128 are multiples of the 16-float SIMD
// pad, and the 140x130 kernels leave ragged edge tiles at every size. Both
// TLR formats (per-frequency stacks and the shared-basis band) must match
// the dense operator through the full time-domain MDC pipeline.
class MdcTileSizes : public ::testing::TestWithParam<int> {
 protected:
  static constexpr index_t kNt = 64;
  static constexpr index_t kNs = 140;
  static constexpr index_t kNr = 130;
  const std::vector<index_t> bins{3, 7, 12};

  std::vector<la::MatrixCF> kernels_dense() const {
    std::vector<la::MatrixCF> ks;
    for (std::size_t q = 0; q < bins.size(); ++q) {
      ks.push_back(tlrwse::testing::oscillatory_matrix<cf32>(
          kNs, kNr, 6.0 + 0.4 * static_cast<double>(q)));
    }
    return ks;
  }

  static double rel_apply_error(MdcOperator& test_op, MdcOperator& ref_op) {
    Rng rng(19);
    std::vector<float> x(static_cast<std::size_t>(ref_op.cols()));
    for (auto& v : x) v = static_cast<float>(rng.normal());
    std::vector<float> y_ref(static_cast<std::size_t>(ref_op.rows()));
    std::vector<float> y(y_ref.size());
    ref_op.apply(std::span<const float>(x), std::span<float>(y_ref));
    test_op.apply(std::span<const float>(x), std::span<float>(y));
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      num += std::pow(static_cast<double>(y[i]) - y_ref[i], 2);
      den += std::pow(static_cast<double>(y_ref[i]), 2);
    }
    return std::sqrt(num / den);
  }
};

TEST_P(MdcTileSizes, PerFrequencyTlrMatchesDense) {
  const auto ks = kernels_dense();
  auto dense_op = make_dense_op(kNt, bins, ks);
  tlr::CompressionConfig cc;
  cc.nb = GetParam();
  cc.acc = 1e-6;
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  for (const auto& k : ks) {
    tlr::StackedTlr<cf32> stacks(tlr::compress_tlr(k, cc));
    kernels.push_back(
        std::make_unique<TlrMvm>(std::move(stacks), TlrKernel::kFused));
  }
  MdcOperator tlr_op(kNt, bins, std::move(kernels));
  EXPECT_LT(rel_apply_error(tlr_op, *dense_op), 1e-3) << "nb=" << GetParam();
}

TEST_P(MdcTileSizes, SharedBasisMatchesDense) {
  const auto ks = kernels_dense();
  auto dense_op = make_dense_op(kNt, bins, ks);
  tlr::SharedBasisConfig sc;
  sc.nb = GetParam();
  sc.acc = 1e-6;
  auto band = std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
      tlr::SharedBasisStackedTlr<cf32>::fit(
          std::span<const la::MatrixCF>(ks), sc));
  MdcOperator shared_op(kNt, bins, make_shared_basis_kernels(std::move(band)));
  EXPECT_LT(rel_apply_error(shared_op, *dense_op), 1e-3) << "nb=" << GetParam();

  // Adjoint dot test at this tile size through the shared path.
  Rng rng(23);
  std::vector<float> x(static_cast<std::size_t>(shared_op.cols()));
  std::vector<float> y(static_cast<std::size_t>(shared_op.rows()));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  std::vector<float> ax(y.size()), aty(x.size());
  shared_op.apply(std::span<const float>(x), std::span<float>(ax));
  shared_op.apply_adjoint(std::span<const float>(y), std::span<float>(aty));
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(ax[i]) * static_cast<double>(y[i]);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(aty[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-4 * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(TileSizes, MdcTileSizes, ::testing::Values(32, 64, 128));

TEST(FrequencyMvm, TlrKernelVariantsAgree) {
  const auto k = tlrwse::testing::oscillatory_matrix<cf32>(30, 24, 9.0);
  tlr::CompressionConfig cc;
  cc.nb = 8;
  cc.acc = 1e-5;
  const auto t = tlr::compress_tlr(k, cc);

  Rng rng(13);
  const auto x = tlrwse::testing::random_vector<cf32>(rng, 24);
  std::vector<cf32> y3(30), yf(30), yr(30);
  TlrMvm m3(tlr::StackedTlr<cf32>(t), TlrKernel::kThreePhase);
  TlrMvm mf(tlr::StackedTlr<cf32>(t), TlrKernel::kFused);
  TlrMvm mr(tlr::StackedTlr<cf32>(t), TlrKernel::kRealSplit);
  m3.apply(std::span<const cf32>(x), std::span<cf32>(y3));
  mf.apply(std::span<const cf32>(x), std::span<cf32>(yf));
  mr.apply(std::span<const cf32>(x), std::span<cf32>(yr));
  EXPECT_LT(tlrwse::testing::rel_error(yf, y3), 1e-5);
  EXPECT_LT(tlrwse::testing::rel_error(yr, y3), 1e-5);
}

}  // namespace
}  // namespace tlrwse::mdc
