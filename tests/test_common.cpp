// Unit tests for the common utilities: table printer, unit formatting,
// deterministic RNG, aligned allocation, error macros, bounded queue,
// latency statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "tlrwse/common/aligned.hpp"
#include "tlrwse/common/bounded_queue.hpp"
#include "tlrwse/common/error.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/stats.hpp"
#include "tlrwse/common/table.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/types.hpp"
#include "tlrwse/common/units.hpp"

namespace tlrwse {
namespace {

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"nb", "acc", "bw (PB/s)"});
  t.add_row({"25", "0.0001", "11.24"});
  t.add_row({"70", "0.0001", "92.58"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("nb"), std::string::npos);
  EXPECT_NE(s.find("92.58"), std::string::npos);
  // Header + rule + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(Cells, NumericFormatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(static_cast<long long>(42)), "42");
  EXPECT_EQ(cell_sci(2.94e11, 2), "2.94e+11");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(763e9), "763.00 GB");
  EXPECT_EQ(format_bytes(48 * 1024.0), "49.15 kB");
  EXPECT_EQ(format_bandwidth(92.58e15), "92.58 PB/s");
  EXPECT_EQ(format_flops(37.95e15), "37.95 PFlop/s");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(bytes_to_gb(1e9), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_pb(2e15), 2.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, IntegerBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.integer(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, FillNormalComplexHasBothParts) {
  Rng r(9);
  std::vector<cf32> v(64);
  fill_normal(r, v.data(), v.size());
  bool re = false, im = false;
  for (const auto& z : v) {
    if (z.real() != 0.0f) re = true;
    if (z.imag() != 0.0f) im = true;
  }
  EXPECT_TRUE(re);
  EXPECT_TRUE(im);
}

TEST(Aligned, VectorDataIs64ByteAligned) {
  std::vector<float, AlignedAllocator<float>> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  std::vector<cf64, AlignedAllocator<cf64>> w(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    TLRWSE_REQUIRE(1 == 2, "got ", 42);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("42"), std::string::npos);
  }
}

TEST(Error, EnsureThrowsLogicError) {
  EXPECT_THROW(TLRWSE_ENSURE(false, "bug"), std::logic_error);
}

TEST(Timer, MeasuresNonNegativeTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), t.millis());
}

TEST(BoundedQueue, FifoOrderAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: backpressure, not growth
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.push(3));
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // queued items survive close()
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed and drained
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  BoundedQueue<int> q(8);  // small capacity: exercises blocking both ways
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v = 0;
      while (q.pop(v)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int t = kConsumers; t < kConsumers + kProducers; ++t) threads[t].join();
  q.close();
  for (int t = 0; t < kConsumers; ++t) threads[t].join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(Stats, NearestRankPercentile) {
  std::vector<double> v(100);
  std::iota(v.begin(), v.end(), 1.0);  // 1..100
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(Stats, PercentileIsOrderInvariant) {
  const std::vector<double> shuffled{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(shuffled, 99.0), 9.0);
}

TEST(Stats, SummarizeLatencies) {
  const std::vector<double> samples{0.4, 0.1, 0.2, 0.3};
  const auto s = summarize_latencies(samples);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 0.25);
  EXPECT_DOUBLE_EQ(s.p50, 0.2);
  EXPECT_DOUBLE_EQ(s.max, 0.4);
  const auto empty = summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(Types, ConjIfComplex) {
  EXPECT_EQ(conj_if_complex(3.0), 3.0);
  EXPECT_EQ(conj_if_complex(cf64(1.0, 2.0)), cf64(1.0, -2.0));
  static_assert(is_complex_v<cf32>);
  static_assert(!is_complex_v<float>);
  static_assert(std::is_same_v<real_of_t<cf32>, float>);
}

}  // namespace
}  // namespace tlrwse
