// Tests for the Golub-Kahan SVD: factor validity, agreement with the
// one-sided Jacobi SVD, and edge shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/gk_svd.hpp"

namespace tlrwse::la {
namespace {

template <typename T>
double orthogonality_defect(const Matrix<T>& Q) {
  return frobenius_distance(matmul(Q.adjoint(), Q),
                            Matrix<T>::identity(Q.cols()));
}

template <typename T>
Matrix<T> recompose(const SvdResult<T>& f) {
  Matrix<T> us = f.U;
  for (index_t j = 0; j < us.cols(); ++j) {
    for (index_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= static_cast<T>(f.S[static_cast<std::size_t>(j)]);
    }
  }
  return matmul(us, f.V.adjoint());
}

class GkShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GkShapes, FactorsAreValid) {
  const auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  const auto a = tlrwse::testing::random_matrix<double>(rng, m, n);
  const auto f = svd_golub_kahan(a);
  EXPECT_LT(orthogonality_defect(f.U), 1e-10) << "U not orthonormal";
  EXPECT_LT(orthogonality_defect(f.V), 1e-10) << "V not orthonormal";
  EXPECT_LT(frobenius_distance(recompose(f), a),
            1e-10 * frobenius_norm(a) + 1e-13);
  for (std::size_t i = 1; i < f.S.size(); ++i) {
    EXPECT_LE(f.S[i], f.S[i - 1]);
    EXPECT_GE(f.S[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GkShapes,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(5, 5),
                                           std::make_tuple(12, 7),
                                           std::make_tuple(7, 12),
                                           std::make_tuple(40, 40),
                                           std::make_tuple(64, 30)));

TEST(GkSvd, AgreesWithJacobi) {
  Rng rng(7);
  const auto a = tlrwse::testing::random_matrix<double>(rng, 25, 18);
  const auto gk = svd_golub_kahan(a);
  const auto ja = svd_jacobi(a);
  ASSERT_EQ(gk.S.size(), ja.S.size());
  for (std::size_t i = 0; i < gk.S.size(); ++i) {
    EXPECT_NEAR(gk.S[i], ja.S[i], 1e-9 * (ja.S[0] + 1.0));
  }
}

TEST(GkSvd, DiagonalMatrix) {
  MatrixD a(3, 3, 0.0);
  a(0, 0) = -5.0;
  a(1, 1) = 2.0;
  a(2, 2) = 0.5;
  const auto f = svd_golub_kahan(a);
  EXPECT_NEAR(f.S[0], 5.0, 1e-12);
  EXPECT_NEAR(f.S[1], 2.0, 1e-12);
  EXPECT_NEAR(f.S[2], 0.5, 1e-12);
  EXPECT_LT(frobenius_distance(recompose(f), a), 1e-12);
}

TEST(GkSvd, RankDeficientMatrix) {
  Rng rng(9);
  const auto u = tlrwse::testing::random_matrix<double>(rng, 20, 3);
  const auto v = tlrwse::testing::random_matrix<double>(rng, 3, 15);
  const auto a = matmul(u, v);
  const auto f = svd_golub_kahan(a);
  // Singular values beyond the rank vanish.
  for (std::size_t i = 3; i < f.S.size(); ++i) {
    EXPECT_LT(f.S[i], 1e-10 * f.S[0]);
  }
  EXPECT_LT(frobenius_distance(recompose(f), a),
            1e-10 * frobenius_norm(a));
}

TEST(GkSvd, SinglePrecision) {
  Rng rng(11);
  const auto a = tlrwse::testing::random_matrix<float>(rng, 16, 10);
  const auto f = svd_golub_kahan(a);
  EXPECT_LT(frobenius_distance(recompose(f), a),
            1e-5f * frobenius_norm(a));
}

TEST(GkSvd, FrobeniusIdentity) {
  Rng rng(13);
  const auto a = tlrwse::testing::random_matrix<double>(rng, 14, 11);
  const auto f = svd_golub_kahan(a);
  double sum2 = 0.0;
  for (double s : f.S) sum2 += s * s;
  EXPECT_NEAR(std::sqrt(sum2), frobenius_norm(a), 1e-10);
}

TEST(GkSvd, ZeroMatrix) {
  const MatrixD a(6, 4, 0.0);
  const auto f = svd_golub_kahan(a);
  for (double s : f.S) EXPECT_EQ(s, 0.0);
}

}  // namespace
}  // namespace tlrwse::la
