// Tests for binary serialization and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_helpers.hpp"
#include "tlrwse/io/csv.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/la/blas.hpp"

namespace tlrwse::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(SerializeMatrix, RoundTrip) {
  TempFile f("tlrwse_mat.bin");
  Rng rng(3);
  const auto m = tlrwse::testing::random_matrix<cf32>(rng, 17, 9);
  save_matrix(f.path, m);
  const auto back = load_matrix(f.path);
  EXPECT_TRUE(back == m);
}

TEST(SerializeMatrix, EmptyMatrix) {
  TempFile f("tlrwse_empty.bin");
  la::MatrixCF m;
  save_matrix(f.path, m);
  const auto back = load_matrix(f.path);
  EXPECT_EQ(back.rows(), 0);
  EXPECT_EQ(back.cols(), 0);
}

TEST(SerializeMatrix, RejectsBadMagic) {
  TempFile f("tlrwse_bad.bin");
  std::ofstream os(f.path, std::ios::binary);
  os << "not a tlrwse file at all";
  os.close();
  EXPECT_THROW((void)load_matrix(f.path), std::runtime_error);
}

TEST(SerializeMatrix, MissingFileThrows) {
  EXPECT_THROW((void)load_matrix("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(SerializeTlr, RoundTripPreservesTiles) {
  TempFile f("tlrwse_tlr.bin");
  const auto a = tlrwse::testing::oscillatory_matrix<cf32>(50, 34, 9.0);
  tlr::CompressionConfig cfg;
  cfg.nb = 12;
  cfg.acc = 1e-4;
  const auto t = tlr::compress_tlr(a, cfg);
  save_tlr(f.path, t);
  const auto back = load_tlr(f.path);

  EXPECT_EQ(back.rows(), t.rows());
  EXPECT_EQ(back.cols(), t.cols());
  EXPECT_EQ(back.grid().nb(), t.grid().nb());
  for (index_t j = 0; j < t.grid().nt(); ++j) {
    for (index_t i = 0; i < t.grid().mt(); ++i) {
      EXPECT_EQ(back.rank(i, j), t.rank(i, j));
      EXPECT_TRUE(back.tile(i, j).U == t.tile(i, j).U);
      EXPECT_TRUE(back.tile(i, j).Vh == t.tile(i, j).Vh);
    }
  }
  EXPECT_LT(la::frobenius_distance(back.reconstruct(), t.reconstruct()),
            1e-12);
}

TEST(SerializeTlr, WrongContainerMagicRejected) {
  TempFile f("tlrwse_cross.bin");
  Rng rng(5);
  const auto m = tlrwse::testing::random_matrix<cf32>(rng, 4, 4);
  save_matrix(f.path, m);
  EXPECT_THROW((void)load_tlr(f.path), std::runtime_error);
}

TEST(Csv, WritesHeaderAndRows) {
  TempFile f("tlrwse.csv");
  {
    CsvWriter csv(f.path, {"nb", "acc", "bw"});
    csv.add_row({"70", "1e-4", "92.58"});
    csv.add_row({"25", "1e-4", "87.73"});
    EXPECT_EQ(csv.rows(), 2u);
  }
  std::ifstream is(f.path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "nb,acc,bw");
  std::getline(is, line);
  EXPECT_EQ(line, "70,1e-4,92.58");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RejectsWrongArity) {
  TempFile f("tlrwse_arity.csv");
  CsvWriter csv(f.path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::io
