// Tests for the fabric flight recorder: streaming aggregation semantics
// (record vs record_span equivalence, boundary splitting), agreement with
// the cluster simulator's own totals under both strategies, the BSP
// 3-phase critical path, per-system accounting, and the heatmap JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/wse/bsp.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

using obs::FlightRecorder;
using obs::FlightRecorderConfig;
using obs::PeSample;
using obs::Phase;

class GridSource final : public RankSource {
 public:
  GridSource(index_t rows, index_t cols, index_t nb, index_t nf, index_t rank)
      : grid_(rows, cols, nb), nf_(nf), rank_(rank) {}
  [[nodiscard]] index_t num_freqs() const override { return nf_; }
  [[nodiscard]] const tlr::TileGrid& grid() const override { return grid_; }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        // Vary ranks with (i, j, q) so phases see a real spread.
        const index_t r = 1 + (rank_ + i + 2 * j + q) % rank_;
        ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] = std::min(
            r, std::min(grid_.tile_rows(i), grid_.tile_cols(j)));
      }
    }
    return ranks;
  }

 private:
  tlr::TileGrid grid_;
  index_t nf_;
  index_t rank_;
};

PeSample sample(double cycles, double rel, double abs_b, double fl,
                double sram) {
  PeSample s;
  s.cycles = cycles;
  s.relative_bytes = rel;
  s.absolute_bytes = abs_b;
  s.flops = fl;
  s.sram_bytes = sram;
  return s;
}

TEST(FlightRecorder, RecordSpanEqualsPerPeRecord) {
  FlightRecorderConfig cfg;
  cfg.pes_per_system = 10;  // spans below cross system boundaries
  cfg.fabric_cols = 5;      // and heat-bin boundaries
  cfg.heat_rows = 2;
  cfg.heat_cols = 2;
  FlightRecorder loop(cfg);
  FlightRecorder bulk(cfg);

  const PeSample a = sample(100.0, 32.0, 96.0, 50.0, 1024.0);
  const PeSample b = sample(250.0, 16.0, 48.0, 25.0, 2048.0);
  // Span [3, 20): crosses the system boundary at 10 and several heat bins.
  for (index_t pe = 3; pe < 20; ++pe) {
    loop.record(Phase::kFusedColumn, pe, a);
  }
  bulk.record_span(Phase::kFusedColumn, 3, 17, a);
  // A second phase with a different span keeps the comparison honest.
  for (index_t pe = 0; pe < 7; ++pe) {
    loop.record(Phase::kVMvm, pe, b);
  }
  bulk.record_span(Phase::kVMvm, 0, 7, b);

  const auto rl = loop.report();
  const auto rb = bulk.report();
  EXPECT_EQ(rl.launches, rb.launches);
  EXPECT_EQ(rl.pes, rb.pes);
  for (int p = 0; p < obs::kNumPhases; ++p) {
    const auto& pl = rl.phases[static_cast<std::size_t>(p)];
    const auto& pb = rb.phases[static_cast<std::size_t>(p)];
    EXPECT_EQ(pl.samples, pb.samples) << "phase " << p;
    EXPECT_DOUBLE_EQ(pl.total_cycles, pb.total_cycles);
    EXPECT_DOUBLE_EQ(pl.max_cycles, pb.max_cycles);
    EXPECT_DOUBLE_EQ(pl.min_cycles, pb.min_cycles);
    EXPECT_DOUBLE_EQ(pl.relative_bytes, pb.relative_bytes);
    EXPECT_DOUBLE_EQ(pl.absolute_bytes, pb.absolute_bytes);
    EXPECT_DOUBLE_EQ(pl.flops, pb.flops);
    EXPECT_DOUBLE_EQ(pl.max_sram_bytes, pb.max_sram_bytes);
  }
  ASSERT_EQ(rl.systems.size(), rb.systems.size());
  for (std::size_t s = 0; s < rl.systems.size(); ++s) {
    EXPECT_EQ(rl.systems[s].samples, rb.systems[s].samples) << "system " << s;
    EXPECT_DOUBLE_EQ(rl.systems[s].worst_cycles, rb.systems[s].worst_cycles);
    EXPECT_DOUBLE_EQ(rl.systems[s].relative_bytes,
                     rb.systems[s].relative_bytes);
    EXPECT_DOUBLE_EQ(rl.systems[s].absolute_bytes,
                     rb.systems[s].absolute_bytes);
    EXPECT_DOUBLE_EQ(rl.systems[s].flops, rb.systems[s].flops);
  }
  for (int p = 0; p < obs::kNumPhases; ++p) {
    const auto& hl = rl.heatmaps[static_cast<std::size_t>(p)];
    const auto& hb = rb.heatmaps[static_cast<std::size_t>(p)];
    ASSERT_EQ(hl.size(), hb.size());
    for (std::size_t c = 0; c < hl.size(); ++c) {
      EXPECT_EQ(hl[c].samples, hb[c].samples) << "phase " << p << " cell " << c;
      EXPECT_DOUBLE_EQ(hl[c].cycles_sum, hb[c].cycles_sum);
      EXPECT_DOUBLE_EQ(hl[c].cycles_max, hb[c].cycles_max);
      EXPECT_DOUBLE_EQ(hl[c].relative_bytes, hb[c].relative_bytes);
    }
  }
}

TEST(FlightRecorder, SpanSplitsAcrossSystemBoundary) {
  FlightRecorderConfig cfg;
  cfg.pes_per_system = 4;
  FlightRecorder rec(cfg);
  rec.record_span(Phase::kFusedColumn, 2, 4, sample(10, 1, 3, 2, 8));
  const auto rep = rec.report();
  ASSERT_EQ(rep.systems.size(), 2u);
  EXPECT_EQ(rep.systems[0].samples, 2u);  // PEs 2, 3
  EXPECT_EQ(rep.systems[1].samples, 2u);  // PEs 4, 5
  EXPECT_DOUBLE_EQ(rep.systems[0].relative_bytes, 2.0);
  EXPECT_DOUBLE_EQ(rep.systems[1].relative_bytes, 2.0);
}

// The recorder must reproduce the cluster simulator's own aggregate
// accounting exactly — the paper benches derive every Table 3 number from
// the recorder instead of ClusterReport, so disagreement is data loss.
TEST(FlightRecorder, AgreesWithClusterReportStrategy1) {
  if (!FlightRecorder::compiled_in()) GTEST_SKIP() << "TLRWSE_TRACING=OFF";
  GridSource src(700, 500, 50, 4, 8);
  ClusterConfig cfg;
  cfg.stack_width = 32;
  cfg.strategy = Strategy::kSplitStackWidth;
  FlightRecorder rec(flight_config_for(cfg.spec));
  cfg.recorder = &rec;
  const auto rep = simulate_cluster(src, cfg);
  const auto flight = rec.report();
  const auto& fused =
      flight.phases[static_cast<std::size_t>(Phase::kFusedColumn)];
  EXPECT_EQ(static_cast<index_t>(fused.samples), rep.pes_used);
  EXPECT_DOUBLE_EQ(fused.max_cycles, rep.worst_cycles);
  EXPECT_DOUBLE_EQ(fused.relative_bytes, rep.relative_bytes);
  EXPECT_DOUBLE_EQ(fused.absolute_bytes, rep.absolute_bytes);
  EXPECT_DOUBLE_EQ(fused.flops, rep.flops);
  EXPECT_DOUBLE_EQ(fused.max_sram_bytes, rep.max_sram_bytes);
  // Single-phase layout: the critical path degenerates to the phase max,
  // so the recorder's bandwidths equal the simulator's.
  EXPECT_DOUBLE_EQ(flight.critical_path_cycles(), rep.worst_cycles);
  EXPECT_NEAR(flight.relative_bw(), rep.relative_bw,
              1e-9 * rep.relative_bw);
  EXPECT_NEAR(flight.absolute_bw(), rep.absolute_bw,
              1e-9 * rep.absolute_bw);
  EXPECT_GE(fused.imbalance(), 1.0);
}

TEST(FlightRecorder, AgreesWithClusterReportStrategy2) {
  if (!FlightRecorder::compiled_in()) GTEST_SKIP() << "TLRWSE_TRACING=OFF";
  GridSource src(700, 500, 50, 4, 8);
  ClusterConfig cfg;
  cfg.stack_width = 32;
  cfg.strategy = Strategy::kScatterRealMvms;
  FlightRecorder rec(flight_config_for(cfg.spec));
  cfg.recorder = &rec;
  const auto rep = simulate_cluster(src, cfg);
  const auto flight = rec.report();
  const auto& fused =
      flight.phases[static_cast<std::size_t>(Phase::kFusedColumn)];
  // Eight PEs per chunk, recorded as one span each.
  EXPECT_EQ(static_cast<index_t>(fused.samples), rep.pes_used);
  EXPECT_EQ(rep.pes_used, 8 * rep.chunks);
  EXPECT_DOUBLE_EQ(fused.max_cycles, rep.worst_cycles);
  // The per-chunk traffic is split 1/8 over the scatter PEs; the sum must
  // come back to the simulator's totals up to FP accumulation order.
  EXPECT_NEAR(fused.relative_bytes, rep.relative_bytes,
              1e-9 * rep.relative_bytes);
  EXPECT_NEAR(fused.absolute_bytes, rep.absolute_bytes,
              1e-9 * rep.absolute_bytes);
  EXPECT_NEAR(fused.flops, rep.flops, 1e-9 * rep.flops);
  // Per-system traffic partitions the total.
  double sys_rel = 0.0;
  std::uint64_t sys_samples = 0;
  for (const auto& s : flight.systems) {
    sys_rel += s.relative_bytes;
    sys_samples += s.samples;
  }
  EXPECT_EQ(static_cast<index_t>(sys_samples), rep.pes_used);
  EXPECT_NEAR(sys_rel, rep.relative_bytes, 1e-9 * rep.relative_bytes);
}

TEST(FlightRecorder, BspThreePhaseCriticalPathMatchesTotalSec) {
  if (!FlightRecorder::compiled_in()) GTEST_SKIP() << "TLRWSE_TRACING=OFF";
  GridSource src(700, 500, 50, 4, 8);
  const IpuSpec ipu;
  FlightRecorderConfig cfg;
  cfg.clock_hz = ipu.clock_hz;
  cfg.pes_per_system = ipu.tiles;
  FlightRecorder rec(cfg);
  const auto rep = simulate_bsp_3phase(src, ipu, &rec);
  const auto flight = rec.report();
  for (Phase p : {Phase::kVMvm, Phase::kShuffle, Phase::kUMvm}) {
    EXPECT_EQ(
        static_cast<index_t>(
            flight.phases[static_cast<std::size_t>(p)].samples),
        rep.devices)
        << phase_name(p);
  }
  EXPECT_EQ(flight.phases[static_cast<std::size_t>(Phase::kFusedColumn)]
                .samples,
            0u);
  // Barrier-separated supersteps: the per-phase critical path (barriers
  // folded into each phase) reproduces the report's wall time.
  EXPECT_NEAR(flight.critical_path_cycles() / ipu.clock_hz, rep.total_sec,
              1e-9 * rep.total_sec);
}

TEST(FlightRecorder, HeatmapJsonHasDeclaredShape) {
  FlightRecorderConfig cfg;
  cfg.pes_per_system = 100;
  cfg.fabric_cols = 10;
  cfg.heat_rows = 4;
  cfg.heat_cols = 4;
  FlightRecorder rec(cfg);
  rec.record_span(Phase::kFusedColumn, 0, 100, sample(5, 2, 6, 4, 16));
  const auto rep = rec.report();
  const std::string js = rep.heatmap_json(Phase::kFusedColumn);
  EXPECT_NE(js.find("\"phase\":\"fused_column\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"rows\":4"), std::string::npos);
  EXPECT_NE(js.find("\"cols\":4"), std::string::npos);
  EXPECT_NE(js.find("\"samples\":["), std::string::npos);
  EXPECT_NE(js.find("\"cycles_max\":["), std::string::npos);
  // All 100 PEs land somewhere: cell sample counts sum to the phase's.
  const auto& cells =
      rep.heatmaps[static_cast<std::size_t>(Phase::kFusedColumn)];
  std::uint64_t total = 0;
  for (const auto& c : cells) total += c.samples;
  EXPECT_EQ(total, 100u);
  // Aggregate document lists only phases that recorded samples.
  const std::string all = rep.heatmaps_json();
  EXPECT_NE(all.find("fused_column"), std::string::npos);
  EXPECT_EQ(all.find("v_mvm"), std::string::npos);
}

TEST(FlightRecorder, ClearDropsSamplesKeepsConfig) {
  FlightRecorderConfig cfg;
  cfg.pes_per_system = 8;
  FlightRecorder rec(cfg);
  rec.record(Phase::kUMvm, 3, sample(7, 1, 2, 3, 4));
  EXPECT_EQ(rec.samples(), 1u);
  rec.clear();
  EXPECT_EQ(rec.samples(), 0u);
  EXPECT_EQ(rec.config().pes_per_system, 8);
  const auto rep = rec.report();
  EXPECT_EQ(rep.launches, 0u);
  EXPECT_TRUE(rep.systems.empty());
}

TEST(FlightRecorder, HookMacroCompilesInEveryBuild) {
  FlightRecorder rec;
  FlightRecorder* recp = &rec;
  TLRWSE_FLIGHT_RECORD(recp, Phase::kFusedColumn, 0,
                       (sample(1, 1, 1, 1, 1)));
  if (FlightRecorder::compiled_in()) {
    EXPECT_EQ(rec.samples(), 1u);
  } else {
    EXPECT_EQ(rec.samples(), 0u);
  }
  // Null recorder is always a safe no-op.
  FlightRecorder* null_rec = nullptr;
  TLRWSE_FLIGHT_RECORD(null_rec, Phase::kFusedColumn, 0,
                       (sample(1, 1, 1, 1, 1)));
}

TEST(FlightRecorder, ReportJsonCarriesAggregateAndPerSystem) {
  FlightRecorderConfig cfg;
  cfg.pes_per_system = 4;
  FlightRecorder rec(cfg);
  rec.record_span(Phase::kFusedColumn, 0, 8, sample(100, 10, 30, 20, 64));
  const std::string js = rec.report().to_json();
  EXPECT_NE(js.find("\"critical_path_cycles\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"relative_bw\""), std::string::npos);
  EXPECT_NE(js.find("\"systems\":["), std::string::npos);
  EXPECT_NE(js.find("\"phases\""), std::string::npos);
}

}  // namespace
}  // namespace tlrwse::wse
