// Tests for the PE kernel VM: value-exactness against the reference
// split-real kernels, cycle accounting under the 2R+1W/banking rules, and
// SRAM capacity enforcement.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"
#include "tlrwse/wse/kernel_vm.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::wse {
namespace {

TEST(PeMemory, AllocAligns16Bytes) {
  PeMemory mem((WseSpec()));
  const index_t a = mem.alloc(5);
  const index_t b = mem.alloc(3);
  EXPECT_EQ(a % 4, 0);
  EXPECT_EQ(b % 4, 0);
  EXPECT_GE(b, a + 5);
}

TEST(PeMemory, ExhaustionThrows) {
  PeMemory mem((WseSpec()));
  (void)mem.alloc(12000);  // 48 kB = 12288 words
  EXPECT_THROW((void)mem.alloc(400), std::invalid_argument);
}

TEST(PeMemory, BankMapping) {
  PeMemory mem((WseSpec()));
  // 6 kB banks = 1536 float words.
  EXPECT_EQ(mem.bank(0), 0);
  EXPECT_EQ(mem.bank(1535), 0);
  EXPECT_EQ(mem.bank(1536), 1);
  EXPECT_EQ(mem.bank(12287), 7);
}

TEST(PeSimulator, FmacComputesAxpy) {
  const WseSpec spec;
  PeMemory mem(spec);
  const index_t y = mem.alloc(4);
  const index_t a = mem.alloc(4);
  const index_t x = mem.alloc(1);
  for (index_t e = 0; e < 4; ++e) {
    mem.store(y + e, 1.0f);
    mem.store(a + e, static_cast<float>(e));
  }
  mem.store(x, 2.0f);
  std::vector<Instruction> prog = {
      {Instruction::Op::kLoadX, 0, x, 0, 1},
      {Instruction::Op::kFmacCol, y, a, 0, 4},
  };
  PeSimulator sim(mem);
  const auto stats = sim.run(prog);
  for (index_t e = 0; e < 4; ++e) {
    EXPECT_EQ(mem.load(y + e), 1.0f + 2.0f * static_cast<float>(e));
  }
  EXPECT_GT(stats.cycles, 0.0);
  EXPECT_EQ(stats.writes64, 2.0);  // fmac over 4 elements = two 64-bit pairs
}

TEST(PeSimulator, AxpyNegSubtracts) {
  const WseSpec spec;
  PeMemory mem(spec);
  const index_t y = mem.alloc(2);
  const index_t a = mem.alloc(2);
  const index_t x = mem.alloc(1);
  mem.store(y, 10.0f);
  mem.store(y + 1, 10.0f);
  mem.store(a, 3.0f);
  mem.store(a + 1, 4.0f);
  mem.store(x, 2.0f);
  std::vector<Instruction> prog = {
      {Instruction::Op::kLoadX, 0, x, 0, 1},
      {Instruction::Op::kAxpyNeg, y, a, 0, 2},
  };
  PeSimulator sim(mem);
  (void)sim.run(prog);
  EXPECT_EQ(mem.load(y), 4.0f);
  EXPECT_EQ(mem.load(y + 1), 2.0f);
}

TEST(PeSimulator, BankConflictCostsExtraCycle) {
  const WseSpec spec;
  PeMemory mem(spec);
  // Same bank: y and a within the first 1536 words.
  const index_t y = mem.alloc(64);
  const index_t a = mem.alloc(64);
  ASSERT_EQ(mem.bank(y), mem.bank(a));
  const index_t x = mem.alloc(1);
  mem.store(x, 1.0f);
  std::vector<Instruction> conflict_prog = {
      {Instruction::Op::kLoadX, 0, x, 0, 1},
      {Instruction::Op::kFmacCol, y, a, 0, 64},
  };
  PeSimulator sim1(mem);
  const auto s1 = sim1.run(conflict_prog);
  EXPECT_EQ(s1.bank_conflicts, 32.0);

  // Cross-bank: allocate a second array in another bank.
  PeMemory mem2(spec);
  const index_t y2 = mem2.alloc(64);
  (void)mem2.alloc(1600);  // skip into the next bank
  const index_t a2 = mem2.alloc(64);
  ASSERT_NE(mem2.bank(y2), mem2.bank(a2));
  const index_t x2 = mem2.alloc(1);
  mem2.store(x2, 1.0f);
  std::vector<Instruction> clean_prog = {
      {Instruction::Op::kLoadX, 0, x2, 0, 1},
      {Instruction::Op::kFmacCol, y2, a2, 0, 64},
  };
  PeSimulator sim2(mem2);
  const auto s2 = sim2.run(clean_prog);
  EXPECT_EQ(s2.bank_conflicts, 0.0);
  EXPECT_LT(s2.cycles, s1.cycles);
}

struct VmFixture {
  tlr::TlrMatrix<cf32> mat;
  tlr::StackedTlr<cf32> stacks;
  std::vector<cf32> x;

  VmFixture(index_t m, index_t n, index_t nb)
      : mat(compress(tlrwse::testing::oscillatory_matrix<cf32>(m, n, 11.0), nb)),
        stacks(mat) {
    Rng rng(m + n);
    x = tlrwse::testing::random_vector<cf32>(rng, n);
  }
  static tlr::TlrMatrix<cf32> compress(const la::MatrixCF& a, index_t nb) {
    tlr::CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = 1e-5;
    return tlr::compress_tlr(a, cfg);
  }
};

/// Runs the whole matrix through assembled chunks and host-reduces.
std::vector<cf32> vm_full_mvm(const VmFixture& f, index_t sw,
                              PeStats* total_stats = nullptr) {
  const WseSpec spec;
  const auto& g = f.stacks.grid();
  std::vector<cf32> y(static_cast<std::size_t>(g.rows()), cf32{});

  struct Source final : RankSource {
    const tlr::StackedTlr<cf32>* stacks;
    [[nodiscard]] index_t num_freqs() const override { return 1; }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return stacks->grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
      const auto& gg = stacks->grid();
      std::vector<index_t> ranks(static_cast<std::size_t>(gg.num_tiles()));
      for (index_t j = 0; j < gg.nt(); ++j) {
        for (index_t i = 0; i < gg.mt(); ++i) {
          ranks[static_cast<std::size_t>(gg.tile_index(i, j))] =
              stacks->rank(i, j);
        }
      }
      return ranks;
    }
  } source;
  source.stacks = &f.stacks;

  for_each_chunk(source, sw, [&](const Chunk& c) {
    auto assembled = assemble_chunk(
        spec, f.stacks, c,
        std::span<const cf32>(f.x.data() + g.col_offset(c.tile_col),
                              static_cast<std::size_t>(c.nb)));
    PeSimulator sim(assembled.memory);
    const auto stats = sim.run(assembled.program);
    if (total_stats != nullptr) {
      total_stats->cycles = std::max(total_stats->cycles, stats.cycles);
      total_stats->reads64 += stats.reads64;
      total_stats->writes64 += stats.writes64;
      total_stats->bytes_accessed += stats.bytes_accessed;
      total_stats->bank_conflicts += stats.bank_conflicts;
    }
    const auto partial = read_partial_y(assembled);
    // Host reduction into the right tile rows.
    index_t y_off = 0;
    index_t last_tile = -1;
    for (const auto& seg : c.segments) {
      if (seg.tile_row == last_tile) continue;
      last_tile = seg.tile_row;
      cf32* dst = y.data() + g.row_offset(seg.tile_row);
      for (index_t e = 0; e < seg.mb; ++e) {
        dst[e] += partial[static_cast<std::size_t>(y_off + e)];
      }
      y_off += seg.mb;
    }
  });
  return y;
}

class VmWidths : public ::testing::TestWithParam<int> {};

TEST_P(VmWidths, FullMvmMatchesReference) {
  const index_t sw = GetParam();
  VmFixture f(50, 36, 9);
  const auto y_vm = vm_full_mvm(f, sw);
  tlr::RealSplitStacks<float> split(f.stacks);
  std::vector<cf32> y_ref(50);
  tlr::tlr_mvm_real_split(split, std::span<const cf32>(f.x),
                          std::span<cf32>(y_ref));
  EXPECT_LT(tlrwse::testing::rel_error(y_vm, y_ref), 1e-5) << "sw=" << sw;
}

INSTANTIATE_TEST_SUITE_P(Widths, VmWidths, ::testing::Values(1, 4, 9, 32));

TEST(KernelVm, CyclesBelowCalibratedAnalyticModel) {
  // The VM prices the hardware bound (dual-issue fmac, banking); the
  // calibrated analytic model includes the measured software-pipeline
  // inefficiency. VM worst-chunk cycles must come in below the analytic
  // estimate for the same chunks but within a small factor.
  VmFixture f(64, 48, 12);
  PeStats vm_total;
  (void)vm_full_mvm(f, 16, &vm_total);

  struct Source final : RankSource {
    const tlr::StackedTlr<cf32>* stacks;
    [[nodiscard]] index_t num_freqs() const override { return 1; }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return stacks->grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
      const auto& gg = stacks->grid();
      std::vector<index_t> ranks(static_cast<std::size_t>(gg.num_tiles()));
      for (index_t j = 0; j < gg.nt(); ++j) {
        for (index_t i = 0; i < gg.mt(); ++i) {
          ranks[static_cast<std::size_t>(gg.tile_index(i, j))] =
              stacks->rank(i, j);
        }
      }
      return ranks;
    }
  } source;
  source.stacks = &f.stacks;
  ClusterConfig cfg;
  cfg.stack_width = 16;
  const auto analytic = simulate_cluster(source, cfg);

  EXPECT_LT(vm_total.cycles, analytic.worst_cycles);
  EXPECT_GT(vm_total.cycles, analytic.worst_cycles / 6.0);
}

TEST(KernelVm, AbsoluteTrafficMatchesAccountingOrder) {
  // The VM's counted SRAM bytes should be of the same order as the
  // absolute access formula for the same chunks (the formula charges
  // 4 bytes per element; the VM moves 64-bit pairs).
  VmFixture f(48, 36, 12);
  PeStats vm_total;
  (void)vm_full_mvm(f, 12, &vm_total);
  double abs_bytes = 0.0;
  struct Source final : RankSource {
    const tlr::StackedTlr<cf32>* stacks;
    [[nodiscard]] index_t num_freqs() const override { return 1; }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return stacks->grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
      const auto& gg = stacks->grid();
      std::vector<index_t> ranks(static_cast<std::size_t>(gg.num_tiles()));
      for (index_t j = 0; j < gg.nt(); ++j) {
        for (index_t i = 0; i < gg.mt(); ++i) {
          ranks[static_cast<std::size_t>(gg.tile_index(i, j))] =
              stacks->rank(i, j);
        }
      }
      return ranks;
    }
  } source;
  source.stacks = &f.stacks;
  for_each_chunk(source, 12, [&](const Chunk& c) {
    for (const auto& s : chunk_mvm_shapes(c)) abs_bytes += s.absolute_bytes();
  });
  EXPECT_GT(vm_total.bytes_accessed, 0.5 * abs_bytes);
  EXPECT_LT(vm_total.bytes_accessed, 2.0 * abs_bytes);
}

TEST(KernelVm, AssemblyRejectsWrongSliceSize) {
  VmFixture f(24, 18, 6);
  Chunk c;
  c.tile_col = 0;
  c.nb = 6;
  c.h = 2;
  c.segments = {{0, 0, 2, 6}};
  std::vector<cf32> bad(3);
  EXPECT_THROW(
      (void)assemble_chunk(WseSpec{}, f.stacks, c, std::span<const cf32>(bad)),
      std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::wse
