// Validation that the chunked WSE mapping computes the correct MVM: the
// functional simulation must match the reference kernels for every stack
// width, including widths that split tiles across chunk boundaries.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"
#include "tlrwse/wse/functional.hpp"

namespace tlrwse::wse {
namespace {

struct Fixture {
  la::MatrixCF dense;
  tlr::TlrMatrix<cf32> tlr_mat;
  tlr::StackedTlr<cf32> stacks;
  std::vector<cf32> x;

  Fixture(index_t m, index_t n, index_t nb)
      : dense(tlrwse::testing::oscillatory_matrix<cf32>(m, n, 13.0)),
        tlr_mat(compress(dense, nb)),
        stacks(tlr_mat) {
    Rng rng(m * 3 + n);
    x = tlrwse::testing::random_vector<cf32>(rng, n);
  }

  static tlr::TlrMatrix<cf32> compress(const la::MatrixCF& a, index_t nb) {
    tlr::CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = 1e-5;
    return tlr::compress_tlr(a, cfg);
  }
};

class FunctionalWidths : public ::testing::TestWithParam<int> {};

TEST_P(FunctionalWidths, MatchesRealSplitReference) {
  const index_t sw = GetParam();
  Fixture f(60, 44, 11);
  const auto y_wse =
      functional_wse_mvm(f.stacks, sw, std::span<const cf32>(f.x));
  tlr::RealSplitStacks<float> split(f.stacks);
  std::vector<cf32> y_ref(60);
  tlr::tlr_mvm_real_split(split, std::span<const cf32>(f.x),
                          std::span<cf32>(y_ref));
  EXPECT_LT(tlrwse::testing::rel_error(y_wse, y_ref), 1e-5)
      << "stack width " << sw;
}

// Width 1 maximally fragments tiles; large widths put whole columns on one
// PE; odd widths exercise tiles split across chunk boundaries.
INSTANTIATE_TEST_SUITE_P(Widths, FunctionalWidths,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 23, 64, 4096));

TEST(Functional, MatchesDenseGroundTruth) {
  Fixture f(48, 40, 10);
  const auto y_wse =
      functional_wse_mvm(f.stacks, 8, std::span<const cf32>(f.x));
  const auto rec = f.tlr_mat.reconstruct();
  std::vector<cf32> y_ref(48);
  la::gemv(rec, std::span<const cf32>(f.x), std::span<cf32>(y_ref));
  EXPECT_LT(tlrwse::testing::rel_error(y_wse, y_ref), 1e-4);
}

TEST(Functional, RaggedMatrixEdges) {
  Fixture f(53, 37, 12);  // ragged in both directions
  const auto y_wse =
      functional_wse_mvm(f.stacks, 5, std::span<const cf32>(f.x));
  const auto y_ref = tlr::tlr_mvm_fused(f.stacks, std::span<const cf32>(f.x));
  EXPECT_LT(tlrwse::testing::rel_error(y_wse, y_ref), 1e-4);
}

TEST(Functional, SizeValidation) {
  Fixture f(20, 16, 8);
  std::vector<cf32> bad(5);
  EXPECT_THROW(functional_wse_mvm(f.stacks, 8, std::span<const cf32>(bad)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlrwse::wse
