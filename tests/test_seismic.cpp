// Tests for the seismic substrate: geometry, wavelets, modeling physics,
// and the dataset consistency property that makes MDD well posed here
// (P- is generated through the exact MDC representation theorem).
#include <gtest/gtest.h>

#include <cmath>

#include "tlrwse/la/blas.hpp"
#include "tlrwse/seismic/geometry.hpp"
#include "tlrwse/seismic/model.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/seismic/wavelet.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::seismic {
namespace {

TEST(Geometry, StationGridPositions) {
  StationGrid g{4, 3, 20.0, 25.0, 100.0, 200.0, 10.0};
  EXPECT_EQ(g.count(), 12);
  const auto p0 = g.position(0);
  EXPECT_DOUBLE_EQ(p0.x, 100.0);
  EXPECT_DOUBLE_EQ(p0.y, 200.0);
  EXPECT_DOUBLE_EQ(p0.z, 10.0);
  const auto p5 = g.position(5);  // iy = 1, ix = 1
  EXPECT_DOUBLE_EQ(p5.x, 120.0);
  EXPECT_DOUBLE_EQ(p5.y, 225.0);
  EXPECT_THROW((void)g.position(12), std::invalid_argument);
}

TEST(Geometry, GridPointsMatchLayout) {
  StationGrid g{3, 2, 20.0, 20.0, 0.0, 0.0, 0.0};
  const auto pts = g.grid_points();
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[4].ix, 1);
  EXPECT_EQ(pts[4].iy, 1);
}

TEST(Geometry, PaperScaleCounts) {
  const auto g = AcquisitionGeometry::paper_scale();
  EXPECT_EQ(g.sources.count(), 26040);    // 217 x 120
  EXPECT_EQ(g.receivers.count(), 15930);  // 177 x 90
  EXPECT_DOUBLE_EQ(g.receivers.depth, 300.0);
  EXPECT_DOUBLE_EQ(g.sources.depth, 10.0);
}

TEST(Geometry, Distances) {
  const Position a{0, 0, 0}, b{3, 4, 0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  const Position c{0, 0, 12};
  EXPECT_DOUBLE_EQ(distance(b, c), 13.0);
  EXPECT_DOUBLE_EQ(horizontal_distance(b, c), 5.0);
}

TEST(Wavelet, FlatBandIsFlatInBandAndZeroOutside) {
  WaveletConfig cfg;
  cfg.kind = WaveletKind::kFlatBand;
  cfg.f_max = 45.0;
  cfg.taper_hz = 5.0;
  const std::vector<double> freqs{5.0, 20.0, 39.9, 44.0, 50.0, 80.0};
  const auto w = wavelet_spectrum(cfg, freqs);
  EXPECT_NEAR(std::abs(w[0]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(w[1]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(w[2]), 1.0, 1e-12);
  EXPECT_GT(std::abs(w[3]), 0.0);   // inside the taper
  EXPECT_LT(std::abs(w[3]), 1.0);
  EXPECT_NEAR(std::abs(w[4]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(w[5]), 0.0, 1e-12);
}

TEST(Wavelet, RickerPeaksAtPeakFrequency) {
  WaveletConfig cfg;
  cfg.kind = WaveletKind::kRicker;
  cfg.peak_hz = 20.0;
  const std::vector<double> freqs{5.0, 20.0, 60.0};
  const auto w = wavelet_spectrum(cfg, freqs);
  EXPECT_NEAR(std::abs(w[1]), 1.0, 1e-12);
  EXPECT_LT(std::abs(w[0]), 1.0);
  EXPECT_LT(std::abs(w[2]), std::abs(w[1]));
}

TEST(Wavelet, TimeDomainIsCentredAndFinite) {
  WaveletConfig cfg;
  const auto w = wavelet_time(cfg, 128, 0.004);
  ASSERT_EQ(w.size(), 128u);
  // Peak magnitude near the centre of the window.
  std::size_t argmax = 0;
  for (std::size_t t = 1; t < w.size(); ++t) {
    if (std::abs(w[t]) > std::abs(w[argmax])) argmax = t;
  }
  EXPECT_NEAR(static_cast<double>(argmax), 64.0, 2.0);
}

TEST(Model, InterfaceDepthVariesLaterally) {
  const auto m = SubsurfaceModel::overthrust_like();
  ASSERT_GE(m.interfaces.size(), 3u);
  const auto& horizon = m.interfaces.front();
  const double z1 = horizon.depth_at(0.0, 0.0);
  const double z2 = horizon.depth_at(700.0, 300.0);
  EXPECT_NE(z1, z2);  // thrusted/dipping, not flat
  // All interfaces below the water bottom over the survey area.
  for (const auto& l : m.interfaces) {
    EXPECT_GT(l.depth_at(0.0, 0.0), m.water_depth);
    EXPECT_GT(l.depth_at(3000.0, 2000.0), m.water_depth);
  }
}

DatasetConfig tiny_config() {
  DatasetConfig cfg;
  cfg.geometry = AcquisitionGeometry::small_scale(8, 6, 6, 5);
  cfg.nt = 128;
  cfg.f_min = 4.0;
  cfg.f_max = 40.0;
  return cfg;
}

TEST(Modeling, DatasetShapes) {
  const auto data = build_dataset(tiny_config());
  EXPECT_EQ(data.num_sources(), 48);
  EXPECT_EQ(data.num_receivers(), 30);
  EXPECT_GT(data.num_freqs(), 5);
  ASSERT_EQ(data.p_down.size(), static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    EXPECT_EQ(data.p_down[static_cast<std::size_t>(q)].rows(), 48);
    EXPECT_EQ(data.p_down[static_cast<std::size_t>(q)].cols(), 30);
    EXPECT_EQ(data.p_up[static_cast<std::size_t>(q)].rows(), 48);
    EXPECT_EQ(data.p_up[static_cast<std::size_t>(q)].cols(), 30);
    EXPECT_EQ(data.reflectivity[static_cast<std::size_t>(q)].rows(), 30);
    EXPECT_EQ(data.reflectivity[static_cast<std::size_t>(q)].cols(), 30);
    // Retained band within the configured range.
    EXPECT_GE(data.freqs_hz[static_cast<std::size_t>(q)], 4.0);
    EXPECT_LE(data.freqs_hz[static_cast<std::size_t>(q)], 40.0);
  }
}

TEST(Modeling, UpgoingIsExactMdcOfTruth) {
  // The defining consistency property: P- = P+ * R * dA per frequency.
  const auto data = build_dataset(tiny_config());
  const auto dA = static_cast<float>(data.surface_element());
  for (index_t q = 0; q < data.num_freqs(); q += 3) {
    const auto& pd = data.p_down[static_cast<std::size_t>(q)];
    const auto& r = data.reflectivity[static_cast<std::size_t>(q)];
    const auto& pu = data.p_up[static_cast<std::size_t>(q)];
    la::MatrixCF expect(pd.rows(), r.cols());
    la::gemm(pd, r, expect, cf32{dA}, cf32{});
    EXPECT_LT(la::frobenius_distance(expect, pu),
              1e-4 * la::frobenius_norm(pu) + 1e-12);
  }
}

TEST(Modeling, ReflectivityIsSymmetric) {
  // R(v, r) = R(r, v) by construction (midpoint travel times).
  const auto data = build_dataset(tiny_config());
  const auto& r = data.reflectivity[2];
  for (index_t i = 0; i < r.rows(); ++i) {
    for (index_t j = i + 1; j < r.cols(); ++j) {
      EXPECT_LT(std::abs(r(i, j) - r(j, i)), 1e-5f * (std::abs(r(i, j)) + 1e-6f));
    }
  }
}

TEST(Modeling, GhostReducesLowFrequencyDownwave) {
  // With the -1 free-surface ghost, the downgoing field at very low
  // frequency nearly cancels (source near the surface) — the classic ghost
  // notch at f -> 0.
  auto cfg = tiny_config();
  cfg.water_multiples = 0;  // direct + ghost only
  const auto data = build_dataset(cfg);
  const auto& lo = data.p_down.front();
  const auto& hi = data.p_down.back();
  EXPECT_LT(la::frobenius_norm(lo), la::frobenius_norm(hi));
}

TEST(Modeling, HilbertOrderingCompressesBetterThanNatural) {
  // The paper's key pre-processing claim (Sec. 6.1): Hilbert reordering
  // concentrates energy near the diagonal and improves TLR compression.
  auto cfg_h = tiny_config();
  cfg_h.geometry = AcquisitionGeometry::small_scale(16, 12, 12, 9);
  cfg_h.ordering = reorder::Ordering::kHilbert;
  auto cfg_n = cfg_h;
  cfg_n.ordering = reorder::Ordering::kNatural;
  const auto dh = build_dataset(cfg_h);
  const auto dn = build_dataset(cfg_n);

  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  double bytes_h = 0.0, bytes_n = 0.0;
  // Compare on a handful of representative frequencies.
  for (index_t q : {index_t{5}, dh.num_freqs() / 2, dh.num_freqs() - 1}) {
    bytes_h += tlr::compress_tlr(dh.p_down[static_cast<std::size_t>(q)], cc)
                   .compressed_bytes();
    bytes_n += tlr::compress_tlr(dn.p_down[static_cast<std::size_t>(q)], cc)
                   .compressed_bytes();
  }
  EXPECT_LT(bytes_h, bytes_n);
}

TEST(Modeling, BandToTimeRoundTripsSpectrum) {
  const auto data = build_dataset(tiny_config());
  // A spike at one frequency for one trace becomes a sinusoid with the
  // right energy; all other traces stay zero.
  std::vector<std::vector<cf32>> vals(
      static_cast<std::size_t>(data.num_freqs()),
      std::vector<cf32>(3, cf32{}));
  vals[4][1] = cf32{1.0f, 0.0f};
  const auto traces = band_to_time(data, vals, 3);
  ASSERT_EQ(traces.size(), static_cast<std::size_t>(data.config.nt * 3));
  double e0 = 0.0, e1 = 0.0;
  for (index_t t = 0; t < data.config.nt; ++t) {
    e0 += traces[static_cast<std::size_t>(t)] * traces[static_cast<std::size_t>(t)];
    e1 += traces[static_cast<std::size_t>(data.config.nt + t)] *
          traces[static_cast<std::size_t>(data.config.nt + t)];
  }
  EXPECT_NEAR(e0, 0.0, 1e-12);
  EXPECT_GT(e1, 0.0);
}

TEST(Modeling, HigherFrequencyMatricesHaveHigherRank) {
  // Oscillation grows with frequency, so tile ranks (and compressed size)
  // should grow too — the trend of Fig. 12 (bottom).
  const auto data = build_dataset(tiny_config());
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  const auto lo =
      tlr::compress_tlr(data.p_down.front(), cc).compressed_bytes();
  const auto hi = tlr::compress_tlr(data.p_down.back(), cc).compressed_bytes();
  EXPECT_LE(lo, hi);
}

}  // namespace
}  // namespace tlrwse::seismic
