// Cross-module round trip: compress -> serialize -> reload -> map onto the
// WSE (functional chunks) -> compare against the dense ground truth. The
// full deployment path a production survey would take, end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_helpers.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/wse/functional.hpp"

namespace tlrwse {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(PipelineRoundTrip, CompressSaveReloadMapExecute) {
  TempFile f("tlrwse_pipeline.tlr");
  // 1. A seismic-like kernel, compressed.
  const auto dense = testing::oscillatory_matrix<cf32>(72, 54, 12.0);
  tlr::CompressionConfig cc;
  cc.nb = 18;
  cc.acc = 1e-4;
  const auto compressed = tlr::compress_tlr(dense, cc);

  // 2. Persist and reload (the host-side archive step).
  io::save_tlr(f.path, compressed);
  const auto reloaded = io::load_tlr(f.path);

  // 3. Map onto the WSE and execute functionally at several widths.
  tlr::StackedTlr<cf32> stacks(reloaded);
  Rng rng(21);
  const auto x = testing::random_vector<cf32>(rng, 54);
  std::vector<cf32> y_dense(72);
  la::gemv(dense, std::span<const cf32>(x), std::span<cf32>(y_dense));

  for (index_t sw : {index_t{4}, index_t{16}}) {
    const auto y =
        wse::functional_wse_mvm(stacks, sw, std::span<const cf32>(x));
    // 4. The executed result matches the DENSE kernel to the compression
    // tolerance — compression error dominates, mapping adds round-off only.
    EXPECT_LT(testing::rel_error(y, y_dense), 5.0 * cc.acc) << "sw=" << sw;
  }
}

TEST(PipelineRoundTrip, MixedPrecisionSurvivesSerialization) {
  TempFile f("tlrwse_pipeline_mixed.tlr");
  const auto dense = testing::oscillatory_matrix<cf32>(48, 36, 10.0);
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  const auto compressed = tlr::compress_tlr(dense, cc);
  tlr::MixedPrecisionPolicy policy;
  policy.fp16_below = 2.0;  // everything fp16
  const auto quant = tlr::quantize_tlr(compressed, policy);
  io::save_tlr(f.path, quant.matrix);
  const auto reloaded = io::load_tlr(f.path);
  // FP16-rounded values are exactly representable in FP32: bit-identical.
  for (index_t j = 0; j < reloaded.grid().nt(); ++j) {
    for (index_t i = 0; i < reloaded.grid().mt(); ++i) {
      EXPECT_TRUE(reloaded.tile(i, j).U == quant.matrix.tile(i, j).U);
    }
  }
}

}  // namespace
}  // namespace tlrwse
