// Shared helpers for the test suite: synthetic matrices with seismic-like
// structure (oscillatory kernels with distance decay — numerically low-rank
// tiles) and random data generators.
#pragma once

#include <cmath>
#include <complex>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/matrix.hpp"

namespace tlrwse::testing {

/// Oscillatory kernel matrix K(i, j) = exp(i * w * d_ij) / (1 + d_ij) with
/// d_ij a normalised "distance" between row and column stations. Tiles of
/// such matrices are numerically low rank — the same structure as the
/// paper's Hilbert-ordered frequency matrices.
template <typename T = cf32>
la::Matrix<T> oscillatory_matrix(index_t m, index_t n, double omega = 12.0) {
  using R = real_of_t<T>;
  la::Matrix<T> k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = T{static_cast<R>(amp * std::cos(omega * d)),
                  static_cast<R>(amp * std::sin(omega * d))};
    }
  }
  return k;
}

template <typename T>
la::Matrix<T> random_matrix(Rng& rng, index_t m, index_t n) {
  la::Matrix<T> a(m, n);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  return a;
}

template <typename T>
std::vector<T> random_vector(Rng& rng, index_t n) {
  std::vector<T> v(static_cast<std::size_t>(n));
  fill_normal(rng, v.data(), v.size());
  return v;
}

/// Relative l2 error between two vectors.
template <typename T>
double rel_error(const std::vector<T>& est, const std::vector<T>& ref) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    num += std::norm(std::complex<double>(est[i]) - std::complex<double>(ref[i]));
    den += std::norm(std::complex<double>(ref[i]));
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace tlrwse::testing
