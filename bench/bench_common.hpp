// Shared helpers for the benchmark harness: the paper's validated
// configurations (Table 1), the paper-scale rank-model source, and the
// small functional dataset used by the MDD benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tlrwse/common/table.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::bench {

/// One of the paper's validated (nb, acc) configurations with the stack
/// width used on six CS-2 systems (Table 1).
struct PaperConfig {
  index_t nb;
  double acc;
  index_t stack_width;
};

/// The five "green" configurations of Fig. 12 / Table 1.
inline std::vector<PaperConfig> green_configs() {
  return {{25, 1e-4, 64},
          {50, 1e-4, 32},
          {70, 1e-4, 23},
          {50, 3e-4, 18},
          {70, 3e-4, 14}};
}

/// RankSource adapter over the paper-scale analytic rank model.
class RankModelSource final : public wse::RankSource {
 public:
  explicit RankModelSource(const seismic::RankModelConfig& cfg) : model_(cfg) {}
  explicit RankModelSource(index_t nb, double acc) : model_(make_config(nb, acc)) {}

  [[nodiscard]] index_t num_freqs() const override {
    return model_.config().num_freqs;
  }
  [[nodiscard]] const tlr::TileGrid& grid() const override {
    return model_.grid();
  }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    return model_.tile_ranks(q);
  }
  [[nodiscard]] const seismic::RankModel& model() const noexcept {
    return model_;
  }

 private:
  static seismic::RankModelConfig make_config(index_t nb, double acc) {
    seismic::RankModelConfig cfg;
    cfg.nb = nb;
    cfg.acc = acc;
    return cfg;
  }
  seismic::RankModel model_;
};

/// Formats an accuracy like the paper's tables (0.0001 / 0.0003).
inline std::string acc_cell(double acc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", acc);
  return buf;
}

/// The small functional dataset shared by the Fig. 11-13 benches:
/// full physics (free-surface multiples, Hilbert ordering) at a scale a
/// single core inverts in seconds.
inline seismic::DatasetConfig bench_dataset_config() {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
  // 2.05 s of data: long enough to hold the deepest primary (~1.2 s) and
  // its first free-surface multiples without circular-FFT wraparound.
  cfg.nt = 512;
  cfg.dt = 0.004;
  cfg.f_min = 3.0;
  cfg.f_max = 30.0;
  cfg.water_multiples = 2;
  return cfg;
}

}  // namespace tlrwse::bench
