// Shared helpers for the benchmark harness: the paper's validated
// configurations (Table 1), the paper-scale rank-model source, and the
// small functional dataset used by the MDD benches.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tlrwse/common/table.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/wse/machine.hpp"

namespace tlrwse::bench {

/// One of the paper's validated (nb, acc) configurations with the stack
/// width used on six CS-2 systems (Table 1).
struct PaperConfig {
  index_t nb;
  double acc;
  index_t stack_width;
};

/// The five "green" configurations of Fig. 12 / Table 1.
inline std::vector<PaperConfig> green_configs() {
  return {{25, 1e-4, 64},
          {50, 1e-4, 32},
          {70, 1e-4, 23},
          {50, 3e-4, 18},
          {70, 3e-4, 14}};
}

/// RankSource adapter over the paper-scale analytic rank model.
class RankModelSource final : public wse::RankSource {
 public:
  explicit RankModelSource(const seismic::RankModelConfig& cfg) : model_(cfg) {}
  explicit RankModelSource(index_t nb, double acc) : model_(make_config(nb, acc)) {}

  [[nodiscard]] index_t num_freqs() const override {
    return model_.config().num_freqs;
  }
  [[nodiscard]] const tlr::TileGrid& grid() const override {
    return model_.grid();
  }
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
    return model_.tile_ranks(q);
  }
  [[nodiscard]] const seismic::RankModel& model() const noexcept {
    return model_;
  }

 private:
  static seismic::RankModelConfig make_config(index_t nb, double acc) {
    seismic::RankModelConfig cfg;
    cfg.nb = nb;
    cfg.acc = acc;
    return cfg;
  }
  seismic::RankModel model_;
};

/// Formats an accuracy like the paper's tables (0.0001 / 0.0003).
inline std::string acc_cell(double acc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", acc);
  return buf;
}

/// A cluster simulation with a flight recorder attached: the paper-table
/// benches derive every number from the recorder's aggregation rather than
/// re-deriving accounting from the ClusterReport.
struct RecordedRun {
  wse::ClusterReport report;
  obs::FlightReport flight;
};

inline RecordedRun recorded_cluster_run(const wse::RankSource& source,
                                        wse::ClusterConfig cfg) {
  obs::FlightRecorder recorder(wse::flight_config_for(cfg.spec));
  cfg.recorder = &recorder;
  RecordedRun out;
  out.report = wse::simulate_cluster(source, cfg);
  out.flight = recorder.report();
  if (out.flight.launches == 0 && out.report.pes_used > 0) {
    // -DTLRWSE_TRACING=OFF compiles the recording hooks away. Backfill the
    // aggregate view from the cluster report so the tables still print in
    // that build shape (per-PE detail and heatmaps stay empty).
    auto& fused =
        out.flight.phases[static_cast<std::size_t>(obs::Phase::kFusedColumn)];
    fused.samples = static_cast<std::uint64_t>(out.report.pes_used);
    fused.max_cycles = out.report.worst_cycles;
    fused.relative_bytes = out.report.relative_bytes;
    fused.absolute_bytes = out.report.absolute_bytes;
    fused.flops = out.report.flops;
    out.flight.pes = out.report.pes_used;
  }
  return out;
}

///// v2 bench-JSON header fields shared by every JSON-emitting bench:
/// schema version plus run metadata (git sha from TLRWSE_GIT_SHA — CI
/// exports it; "unknown" otherwise — compiler, and thread count). Returned
/// WITHOUT surrounding braces so benches splice it into their header line.
inline std::string json_meta_fields() {
  const char* sha = std::getenv("TLRWSE_GIT_SHA");
  std::string out = "\"schema_version\":2,\"meta\":{\"git_sha\":\"";
  out += (sha != nullptr && sha[0] != '\0') ? sha : "unknown";
  out += "\",\"compiler\":\"";
#if defined(__clang__)
  out += "clang " __clang_version__;
#elif defined(__GNUC__)
  out += "gcc " __VERSION__;
#else
  out += "unknown";
#endif
  out += "\",\"threads\":";
  out += std::to_string(std::thread::hardware_concurrency());
  out += "}";
  return out;
}

/// The small functional dataset shared by the Fig. 11-13 benches:
/// full physics (free-surface multiples, Hilbert ordering) at a scale a
/// single core inverts in seconds.
inline seismic::DatasetConfig bench_dataset_config() {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(16, 12, 12, 9);
  // 2.05 s of data: long enough to hold the deepest primary (~1.2 s) and
  // its first free-surface multiples without circular-FFT wraparound.
  cfg.nt = 512;
  cfg.dt = 0.004;
  cfg.f_min = 3.0;
  cfg.f_max = 30.0;
  cfg.water_multiples = 2;
  return cfg;
}

}  // namespace tlrwse::bench
