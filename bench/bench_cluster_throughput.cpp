// Cluster serving throughput sweep over solver-worker counts.
//
// Builds a small synthetic survey, archives it, then for each worker count
// stands up a fresh in-process fleet (ShardWorkers behind LocalChannels, so
// every request still rides the real wire encode/decode path) fronted by a
// ClusterService, and hammers it with closed-loop adjoint clients. The
// placement is made resident by a warm-up request, so the timed region
// measures the sharded serving path — gather, per-shard RPC fan-out,
// scatter — not the one-time archive load. One JSON line per worker count
// carries requests/s and the speedup over the single-worker point. Usage:
//
//   ./bench_cluster_throughput [max_workers] [requests_per_client] [--check]
//
// --check enforces the distributed-serving acceptance bar: every response
// kOk, finite positive throughput, and >=2.5x scaling from 1 to 4 workers.
// The scaling bar needs real cores to mean anything, so it is only enforced
// when hardware_concurrency() >= 4; below that it prints an informational
// skip instead.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/cluster/frontend.hpp"
#include "tlrwse/cluster/transport.hpp"
#include "tlrwse/cluster/worker.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/serve/solve_service.hpp"

namespace {

using namespace tlrwse;

constexpr int kClients = 4;

seismic::SeismicDataset build_data() {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
  cfg.nt = 128;
  cfg.f_min = 4.0;
  cfg.f_max = 40.0;
  return seismic::build_dataset(cfg);
}

/// An in-process fleet: each WorkerClient speaks to its own ShardWorker
/// over a LocalChannel, so shard applies across workers run on the
/// clients' dispatcher threads — the same concurrency shape as real
/// worker processes, minus the kernel socket hop.
struct LocalFleet {
  std::vector<std::unique_ptr<cluster::ShardWorker>> workers;
  std::vector<std::unique_ptr<cluster::WorkerClient>> clients;
};

LocalFleet make_fleet(int n) {
  LocalFleet fleet;
  for (int i = 0; i < n; ++i) {
    fleet.workers.push_back(std::make_unique<cluster::ShardWorker>());
    cluster::ShardWorker* worker = fleet.workers.back().get();
    auto chan = std::make_unique<cluster::LocalChannel>(
        [worker](const cluster::Frame& f) { return worker->handle(f); });
    std::string name = "w";
    name += std::to_string(i);
    fleet.clients.push_back(std::make_unique<cluster::WorkerClient>(
        std::move(chan), std::move(name)));
  }
  return fleet;
}

struct SweepPoint {
  int workers = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double wall_s = 0.0;
  double requests_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

SweepPoint run_point(const serve::OperatorKey& key,
                     const seismic::SeismicDataset& data, int workers,
                     int per_client) {
  auto fleet = make_fleet(workers);
  cluster::ClusterConfig cfg;
  cfg.frontend_workers = kClients;
  cfg.queue_capacity = static_cast<std::size_t>(kClients) * 2;
  cluster::ClusterService service(cfg, std::move(fleet.clients));

  const index_t nvsrc = std::min<index_t>(4, data.num_receivers());
  std::vector<std::vector<float>> rhs;
  for (index_t v = 0; v < nvsrc; ++v) {
    rhs.push_back(mdd::virtual_source_rhs(data, v));
  }
  const auto request = [&](int j) {
    cluster::ClusterRequest req;
    req.op = key;
    req.kind = serve::RequestKind::kAdjoint;
    req.vsrc = j % nvsrc;
    req.rhs = rhs[static_cast<std::size_t>(req.vsrc)];
    return req;
  };

  // Warm-up: the first request plans the placement and loads the shards,
  // so the timed region measures serving, not the one-time archive load.
  (void)service.submit(request(0)).response.get();

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        const auto resp =
            service.submit(request(c * per_client + r)).response.get();
        if (resp.status == cluster::ClusterStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  SweepPoint p;
  p.workers = workers;
  p.wall_s = timer.seconds();
  p.completed = ok.load();
  p.failed = failed.load();
  p.requests_per_sec =
      p.wall_s > 0.0 ? static_cast<double>(p.completed) / p.wall_s : 0.0;
  return p;
}

void print_point(const SweepPoint& p) {
  std::cout << "{\"workers\":" << p.workers << ",\"completed\":" << p.completed
            << ",\"failed\":" << p.failed << ",\"wall_s\":" << p.wall_s
            << ",\"requests_per_sec\":" << p.requests_per_sec
            << ",\"speedup_vs_1\":" << p.speedup_vs_1 << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int max_workers = 4;
  int per_client = 4;
  bool check = false;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (pos == 0) {
      max_workers = std::atoi(argv[i]);
      ++pos;
    } else {
      per_client = std::atoi(argv[i]);
      ++pos;
    }
  }
  if (max_workers < 1) max_workers = 1;
  if (per_client < 1) per_client = 1;

  const auto data = build_data();
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  const std::string archive =
      (std::filesystem::temp_directory_path() / "tlrwse_bench_cluster.tlra")
          .string();
  io::save_archive(archive, io::build_archive(data, cc));
  const serve::OperatorKey key{archive, cc.nb, cc.acc};

  std::cout << "{\"bench\":\"cluster_throughput\",\"nt\":" << data.config.nt
            << ",\"num_freq\":" << data.num_freqs()
            << ",\"ns\":" << data.num_sources()
            << ",\"nr\":" << data.num_receivers() << ",\"clients\":" << kClients
            << ",\"mode\":\"adjoint\",\"requests_per_client\":" << per_client
            << "," << bench::json_meta_fields() << "}\n";

  std::vector<int> sweep{1};
  for (int w = 2; w <= max_workers; w *= 2) sweep.push_back(w);
  if (sweep.back() != max_workers) sweep.push_back(max_workers);

  std::vector<SweepPoint> points;
  double rps_1 = 0.0;
  for (int workers : sweep) {
    SweepPoint p = run_point(key, data, workers, per_client);
    if (workers == 1) rps_1 = p.requests_per_sec;
    p.speedup_vs_1 = rps_1 > 0.0 ? p.requests_per_sec / rps_1 : 0.0;
    print_point(p);
    points.push_back(p);
  }

  std::remove(archive.c_str());

  if (!check) return 0;

  int rc = 0;
  for (const auto& p : points) {
    if (p.failed != 0 || p.completed == 0) {
      std::cerr << "cluster_throughput: " << p.failed << " failed / "
                << p.completed << " ok at " << p.workers << " workers\n";
      rc = 1;
    }
    if (!(p.requests_per_sec > 0.0) || !std::isfinite(p.requests_per_sec)) {
      std::cerr << "cluster_throughput: non-finite throughput at " << p.workers
                << " workers\n";
      rc = 1;
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  bool scaling_checked = false;
  for (const auto& p : points) {
    if (p.workers != 4) continue;
    scaling_checked = true;
    if (cores >= 4) {
      if (p.speedup_vs_1 < 2.5) {
        std::cerr << "cluster_throughput: 1->4 worker speedup "
                  << p.speedup_vs_1 << " below the 2.5x bar\n";
        rc = 1;
      }
    } else {
      std::cerr << "cluster_throughput: " << cores
                << " hardware threads — 2.5x scaling bar skipped "
                   "(informational: speedup_vs_1="
                << p.speedup_vs_1 << ")\n";
    }
  }
  if (!scaling_checked && max_workers >= 4) {
    std::cerr << "cluster_throughput: sweep missing the 4-worker point\n";
    rc = 1;
  }
  return rc;
}
