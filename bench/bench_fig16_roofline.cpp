// Fig. 16: roofline of the 48-CS-2 Condor Galaxy run against the top-5
// supercomputers, including the constant-rank TLR-MVM upper bounds the
// paper estimates for Fugaku (95.38 PB/s) and Frontier (69.01 PB/s).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/roofline/roofline.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 16: roofline, 48-shard configuration vs top-5 "
               "supercomputers ===\n";
  TablePrinter roofs({"Machine", "Peak bw (PB/s)", "Peak FP32"});
  for (const auto& m : roofline::fig16_machines()) {
    roofs.add_row({m.name, cell(bytes_to_pb(m.peak_bw())),
                   format_flops(m.peak_flops())});
  }
  roofs.print(std::cout);

  // Measured point: 48-shard strategy-2 run, nb=70, acc=1e-4 (the 92.58
  // PB/s title configuration).
  bench::RankModelSource source(70, 1e-4);
  wse::ClusterConfig cfg;
  cfg.stack_width = 23;
  cfg.strategy = wse::Strategy::kScatterRealMvms;
  const auto run = bench::recorded_cluster_run(source, cfg);
  std::cout << "\nTLR-MVM on 48 Cerebras CS-2 (nb=70, acc=1e-4):\n"
            << "  relative sustained bw: "
            << format_bandwidth(run.flight.relative_bw())
            << " (paper: 92.58 PB/s)\n"
            << "  absolute sustained bw: "
            << format_bandwidth(run.flight.absolute_bw())
            << " (paper: 245.59 PB/s)\n";

  // Constant-rank upper bounds on cache-based systems: single-device
  // sustained fraction of theoretical bandwidth measured by the paper's
  // authors for TLR-MVM with constant ranks (A64FX ~58.6%, MI250X ~56.9%),
  // extrapolated to machine scale.
  const auto machines = roofline::fig16_machines();
  const double fugaku_bound = machines[1].peak_bw() * 0.586;
  const double frontier_bound = machines[2].peak_bw() * 0.569;
  std::cout << "\nConstant-rank TLR-MVM upper bounds (extrapolated):\n"
            << "  Fugaku:   " << format_bandwidth(fugaku_bound)
            << " (paper: 95.38 PB/s)\n"
            << "  Frontier: " << format_bandwidth(frontier_bound)
            << " (paper: 69.01 PB/s)\n";

  // The headline comparisons of Sec. 7.5.
  std::cout << "\nRelative sustained vs theoretical peaks:\n"
            << "  vs Leonardo: "
            << cell(run.flight.relative_bw() / machines[4].peak_bw(), 2)
            << "x\n"
            << "  vs Summit:   "
            << cell(run.flight.relative_bw() / machines[5].peak_bw(), 2)
            << "x\n";
  std::cout << "(paper: >3x faster than the aggregated theoretical bandwidth "
               "of Leonardo or Summit)\n";
  return 0;
}
