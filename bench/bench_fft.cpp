// Microbenchmarks of the FFT substrate (radix-2, Bluestein, batched rFFT).
#include <benchmark/benchmark.h>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/fft/fft.hpp"

namespace {

using namespace tlrwse;

void BM_FftPow2(benchmark::State& bst) {
  const auto n = static_cast<index_t>(bst.range(0));
  fft::FftPlan plan(n);
  Rng rng(1);
  std::vector<cf64> x(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  for (auto _ : bst) {
    plan.forward(std::span<cf64>(x));
    benchmark::DoNotOptimize(x.data());
  }
  bst.SetItemsProcessed(static_cast<int64_t>(bst.iterations()) * n);
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftBluestein(benchmark::State& bst) {
  const auto n = static_cast<index_t>(bst.range(0));
  fft::FftPlan plan(n);
  Rng rng(2);
  std::vector<cf64> x(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  for (auto _ : bst) {
    plan.forward(std::span<cf64>(x));
    benchmark::DoNotOptimize(x.data());
  }
  bst.SetItemsProcessed(static_cast<int64_t>(bst.iterations()) * n);
}
// 1125 = the paper's 4.5 s at 4 ms sampling; 230 and 997 stress odd sizes.
BENCHMARK(BM_FftBluestein)->Arg(230)->Arg(997)->Arg(1125);

void BM_RfftBatch(benchmark::State& bst) {
  const index_t nt = 256;
  const auto ntraces = static_cast<index_t>(bst.range(0));
  Rng rng(3);
  std::vector<float> page(static_cast<std::size_t>(nt * ntraces));
  for (auto& v : page) v = static_cast<float>(rng.normal());
  std::vector<cf32> freq(static_cast<std::size_t>((nt / 2 + 1) * ntraces));
  for (auto _ : bst) {
    fft::rfft_batch(std::span<const float>(page), nt, ntraces,
                    std::span<cf32>(freq));
    benchmark::DoNotOptimize(freq.data());
  }
  bst.SetItemsProcessed(static_cast<int64_t>(bst.iterations()) * nt * ntraces);
}
BENCHMARK(BM_RfftBatch)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
