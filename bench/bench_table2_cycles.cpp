// Table 2: worst cycle count and total relative/absolute memory accesses
// (bytes) of the five green configurations on six CS-2 systems, derived
// from the flight recorder's per-phase profile of the simulated run (the
// fused column phase is the only one on the CS-2 layout).
//
// Paper reference values: cycles {21350, 19214, 19131, 12275, 12999},
// relative accesses {2.94e11, 2.60e11, 2.60e11, 1.64e11, 1.64e11},
// absolute accesses {6.85e11, 6.71e11, 6.89e11, 3.89e11, 4.06e11}.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Table 2: worst cycle count / memory accesses (bytes) ===\n";
  TablePrinter table({"nb", "acc", "Worst cycle cnt", "Relative accesses",
                      "Absolute accesses", "Imbalance"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);
    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.systems = 6;
    const auto run = bench::recorded_cluster_run(source, cfg);
    const auto& fused = run.flight.phases[static_cast<std::size_t>(
        obs::Phase::kFusedColumn)];
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc),
                   cell(static_cast<long long>(fused.max_cycles)),
                   cell_sci(fused.relative_bytes),
                   cell_sci(fused.absolute_bytes),
                   cell(fused.imbalance(), 2)});
  }
  table.print(std::cout);
  std::cout << "(paper: 21350/2.94e11/6.85e11, 19214/2.60e11/6.71e11, "
               "19131/2.60e11/6.89e11, 12275/1.64e11/3.89e11, "
               "12999/1.64e11/4.06e11)\n";
  return 0;
}
