// Table 1: "Configurations delivering proper MDD accuracy" — stack width,
// PEs used, and occupancy of the five green configurations mapped onto six
// CS-2 systems with strong-scaling strategy 1.
//
// Paper reference values: 4417690 PEs / 99%, 4330150 / 97%, 4416383 / 98%,
// 4445947 / 99%, 4252877 / 95%.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Table 1: stack width, PEs used, occupancy (6 CS-2s) ===\n";
  TablePrinter table({"nb", "acc", "stack width", "PEs used", "Occupancy"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);
    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.systems = 6;
    const auto rep = wse::simulate_cluster(source, cfg);
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc),
                   cell(pc.stack_width), cell(rep.pes_used),
                   cell(100.0 * rep.occupancy, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "(paper: 4417690/99%, 4330150/97%, 4416383/98%, 4445947/99%, "
               "4252877/95%)\n";
  return 0;
}
