// Solve-service throughput/latency sweep over closed-loop client counts.
//
// Builds a small synthetic survey, archives it, then for each client count
// runs a fresh SolveService and hammers it with closed-loop clients (each
// waits for its response before sending the next request). The operator is
// made resident by a warm-up request, so the sweep measures the serving
// path — admission, batching, solve — not the one-time archive load. One
// JSON line per client count carries requests/s plus the p50/p95/p99
// latency digest straight from the service metrics. Usage:
//
//   ./bench_serve_throughput [max_clients] [requests_per_client]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/serve/solve_service.hpp"

namespace {

using namespace tlrwse;

seismic::SeismicDataset build_data() {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
  cfg.nt = 128;
  cfg.f_min = 4.0;
  cfg.f_max = 40.0;
  return seismic::build_dataset(cfg);
}

struct SweepPoint {
  int clients = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double wall_s = 0.0;
  serve::ServiceMetrics metrics;
};

SweepPoint run_point(const serve::OperatorKey& key,
                     const seismic::SeismicDataset& data, int clients,
                     int per_client) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = static_cast<std::size_t>(clients) * 2;
  serve::SolveService service(cfg);

  const index_t nvsrc = std::min<index_t>(4, data.num_receivers());
  std::vector<std::vector<float>> rhs;
  for (index_t v = 0; v < nvsrc; ++v) {
    rhs.push_back(mdd::virtual_source_rhs(data, v));
  }
  const auto request = [&](int j) {
    serve::SolveRequest req;
    req.op = key;
    req.kind = serve::RequestKind::kLsqr;
    req.vsrc = j % nvsrc;
    req.rhs = rhs[static_cast<std::size_t>(req.vsrc)];
    req.lsqr.max_iters = 10;
    return req;
  };

  // Warm-up: one request makes the operator resident so the timed region
  // measures serving, not the archive load.
  (void)service.submit(request(0)).get();

  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        (void)service.submit(request(c * per_client + r)).get();
      }
    });
  }
  for (auto& t : threads) t.join();

  SweepPoint p;
  p.clients = clients;
  p.wall_s = timer.seconds();
  p.metrics = service.metrics();
  p.completed = p.metrics.counters.completed - 1;  // minus the warm-up
  p.rejected = p.metrics.counters.rejected_queue_full +
               p.metrics.counters.rejected_deadline;
  return p;
}

void print_point(const SweepPoint& p) {
  const auto& m = p.metrics;
  const double rps =
      p.wall_s > 0.0 ? static_cast<double>(p.completed) / p.wall_s : 0.0;
  std::cout << "{\"clients\":" << p.clients << ",\"completed\":" << p.completed
            << ",\"rejected\":" << p.rejected << ",\"wall_s\":" << p.wall_s
            << ",\"requests_per_sec\":" << rps
            << ",\"batches\":" << m.counters.batches
            << ",\"coalesced_requests\":" << m.counters.coalesced
            << ",\"cache_hit_rate\":" << m.cache.hit_rate()
            << ",\"latency_p50_s\":" << m.latency.p50
            << ",\"latency_p95_s\":" << m.latency.p95
            << ",\"latency_p99_s\":" << m.latency.p99
            << ",\"latency_mean_s\":" << m.latency.mean
            << ",\"queue_wait_p95_s\":" << m.queue_wait.p95 << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int max_clients = argc > 1 ? std::atoi(argv[1]) : 16;
  int per_client = argc > 2 ? std::atoi(argv[2]) : 4;
  if (max_clients < 1) max_clients = 1;
  if (per_client < 1) per_client = 1;

  const auto data = build_data();
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  const std::string archive =
      (std::filesystem::temp_directory_path() / "tlrwse_bench_serve.tlra")
          .string();
  io::save_archive(archive, io::build_archive(data, cc));
  const serve::OperatorKey key{archive, cc.nb, cc.acc};

  std::cout << "{\"bench\":\"serve_throughput\",\"nt\":" << data.config.nt
            << ",\"num_freq\":" << data.num_freqs()
            << ",\"ns\":" << data.num_sources() << ",\"nr\":" << data.num_receivers()
            << ",\"workers\":4,\"lsqr_iters\":10,\"requests_per_client\":"
            << per_client << "," << bench::json_meta_fields() << "}\n";

  std::vector<int> sweep{1};
  for (int c = 2; c <= max_clients; c *= 2) sweep.push_back(c);
  if (sweep.back() != max_clients) sweep.push_back(max_clients);

  for (int clients : sweep) {
    print_point(run_point(key, data, clients, per_client));
  }

  std::remove(archive.c_str());
  return 0;
}
