// Observability overhead proof: the instrumented MDC apply path must cost
// < 2% more with tracing enabled than with tracing runtime-disabled.
//
// Uses bench_mdc_throughput's exact operator configuration (nt=256, 64
// frequencies, 96x96 kernels, nb=16 fused TLR) and times forward+adjoint
// apply pairs in three modes:
//   baseline -- tracing disabled (the production default: every span site
//               is one relaxed atomic load; registry counters still run);
//   traced   -- Tracer enabled, so every span/counter site records into the
//               per-thread ring, including the per-frequency MVM events.
//   detail   -- Tracer enabled with the detail tier too (per-frequency MVM
//               spans, ~64x more events); reported for information, not
//               held to the 2% bar -- detail is an opt-in deep-dive mode.
// The decision statistic is the median of PAIRED per-trial overheads:
// each trial times the modes back to back, so slow drift (thermal,
// scheduler) cancels within the pair, and the median over trials discards
// bursts hit by one-sided spikes. JSON (one object per line) so CI can
// schema-check and archive the result.
//
// The same paired protocol also gates the flight recorder on the
// simulated apply path: the functional (value-exact) WSE execution of a
// compressed kernel, recorder attached vs. detached, with its own < 2% bar.
// The recorder's cost on the pure cost-model sweep (no data moves, ~50 ns
// per chunk, so per-launch recording is a large fraction by construction)
// is reported as an informational number like the detail tier.
//
// A third paired gate covers the always-on per-request bookkeeping the
// serving tiers added for latency attribution: every request pays a
// StageBreakdown fill (wall-clock reads around each stage), a
// StageRecorder publish (9 histogram records), and an SloTracker record
// (one mutex + octave bucketing). The "request" mode charges exactly that
// per apply pair against the bare pair, with its own < 2% bar.
// Usage:
//
//   ./bench_obs_overhead [reps] [trials] [--check]
//
// Exit code: without --check, nonzero when the long-standing tracer/
// recorder gates fail (unchanged); with --check the request-tracking gate
// is enforced too.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/slo_tracker.hpp"
#include "tlrwse/obs/stage_breakdown.hpp"
#include "tlrwse/obs/trace_context.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/wse/functional.hpp"

namespace {

using namespace tlrwse;

constexpr index_t kNt = 256;
constexpr index_t kNumFreq = 64;
constexpr index_t kNs = 96;
constexpr index_t kNr = 96;

la::MatrixCF oscillatory_kernel(index_t m, index_t n, double omega) {
  la::MatrixCF k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = cf32{static_cast<float>(amp * std::cos(omega * d)),
                     static_cast<float>(amp * std::sin(omega * d))};
    }
  }
  return k;
}

std::unique_ptr<mdc::MdcOperator> build_operator() {
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  std::vector<index_t> bins;
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  bins.reserve(kNumFreq);
  for (index_t q = 0; q < kNumFreq; ++q) {
    bins.push_back(1 + q);
    const auto k =
        oscillatory_kernel(kNs, kNr, 3.0 + 0.4 * static_cast<double>(q));
    kernels.push_back(std::make_unique<mdc::TlrMvm>(
        tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)),
        mdc::TlrKernel::kFused));
  }
  return std::make_unique<mdc::MdcOperator>(kNt, std::move(bins),
                                            std::move(kernels));
}

/// Seconds per forward+adjoint pair for one timed trial.
double time_trial(const mdc::MdcOperator& op, std::span<const float> x,
                  std::span<float> y, std::span<const float> yb,
                  std::span<float> xt, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    op.apply(x, y);
    op.apply_adjoint(yb, xt);
  }
  return timer.seconds() / reps;
}

/// Seconds per forward+adjoint pair with the serving tiers' always-on
/// per-request bookkeeping charged to every pair: stage timing via the
/// shared steady clock, a StageBreakdown publish into the stage
/// histograms, and an SLO window record.
double time_request_trial(const mdc::MdcOperator& op, std::span<const float> x,
                          std::span<float> y, std::span<const float> yb,
                          std::span<float> xt, obs::StageRecorder& stages,
                          obs::SloTracker& slo, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t t0 = obs::steady_now_ns();
    op.apply(x, y);
    const std::uint64_t mid = obs::steady_now_ns();
    op.apply_adjoint(yb, xt);
    const std::uint64_t end = obs::steady_now_ns();
    obs::StageBreakdown st;
    st.mvm_s = 1e-9 * static_cast<double>(mid - t0);
    st.lsqr_s = 1e-9 * static_cast<double>(end - t0);
    stages.record(st);
    slo.record(st.lsqr_s, /*ok=*/true);
  }
  return timer.seconds() / reps;
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

/// Median of the per-trial paired overheads 100*(with[i]-base[i])/base[i].
double paired_overhead_pct(const std::vector<double>& base,
                           const std::vector<double>& with) {
  std::vector<double> pct(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    pct[i] = base[i] > 0.0 ? 100.0 * (with[i] - base[i]) / base[i] : 0.0;
  }
  std::sort(pct.begin(), pct.end());
  const std::size_t n = pct.size();
  return n % 2 == 1 ? pct[n / 2] : 0.5 * (pct[n / 2 - 1] + pct[n / 2]);
}

/// Seconds per simulated cluster apply, optionally flight-recorded.
double time_sim_trial(const wse::RankSource& source, wse::ClusterConfig cfg,
                      obs::FlightRecorder* recorder, int reps) {
  cfg.recorder = recorder;
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    if (recorder != nullptr) recorder->clear();
    const auto rep = wse::simulate_cluster(source, cfg);
    // Keep the result live so the simulation cannot be optimised away.
    if (rep.worst_cycles < 0.0) std::abort();
  }
  return timer.seconds() / reps;
}

/// Stack width of the functional-apply overhead workload: PE-sized chunks
/// big enough to carry real arithmetic (microseconds per launch).
constexpr index_t kFuncStackWidth = 128;

/// Seconds per functional (value-exact) WSE apply, optionally recorded.
double time_functional_trial(const tlr::StackedTlr<cf32>& A,
                             std::span<const cf32> x,
                             obs::FlightRecorder* recorder, int reps) {
  WallTimer timer;
  float keep = 0.0f;
  for (int r = 0; r < reps; ++r) {
    if (recorder != nullptr) recorder->clear();
    const auto y = wse::functional_wse_mvm(A, kFuncStackWidth, x, recorder);
    keep += y[0].real();
  }
  if (std::isnan(keep)) std::abort();
  return timer.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  // Many short bursts beat few long ones under min-of-trials: a 3-rep
  // burst is likely to land in a quiet scheduling window, and the min over
  // 21 bursts discards every burst that didn't.
  int reps = 3;
  int trials = 21;
  bool check = false;
  {
    int pos = 0;
    for (int a = 1; a < argc; ++a) {
      if (std::string_view(argv[a]) == "--check") {
        check = true;
      } else if (pos == 0) {
        reps = std::max(1, std::atoi(argv[a]));
        ++pos;
      } else if (pos == 1) {
        trials = std::max(1, std::atoi(argv[a]));
        ++pos;
      }
    }
  }

  const auto op = build_operator();
  Rng rng(7);
  std::vector<float> x(static_cast<std::size_t>(op->cols()));
  std::vector<float> yb(static_cast<std::size_t>(op->rows()));
  fill_normal(rng, x.data(), x.size());
  fill_normal(rng, yb.data(), yb.size());
  std::vector<float> y(static_cast<std::size_t>(op->rows()));
  std::vector<float> xt(static_cast<std::size_t>(op->cols()));

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();

  // Warm-up: fill workspace pools and fault in the code paths.
  time_trial(*op, x, y, yb, xt, 2);

  // Interleave the modes so frequency scaling and scheduler drift hit all
  // of them equally instead of biasing whichever runs last.
  std::vector<double> base_trials, traced_trials, detail_trials,
      request_trials;
  base_trials.reserve(static_cast<std::size_t>(trials));
  traced_trials.reserve(static_cast<std::size_t>(trials));
  detail_trials.reserve(static_cast<std::size_t>(trials));
  request_trials.reserve(static_cast<std::size_t>(trials));
  std::size_t traced_events = 0;
  obs::MetricsRegistry request_reg;
  obs::StageRecorder stage_recorder(request_reg, "bench");
  obs::SloTracker slo;
  // One untimed settle pair after every mode switch: enabling the tracer
  // (re)allocates and faults in the ring buffers, a one-time cost that
  // would otherwise be billed to the first timed apply of the burst.
  for (int t = 0; t < trials; ++t) {
    tracer.disable();
    time_trial(*op, x, y, yb, xt, 1);
    base_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    tracer.enable();
    time_trial(*op, x, y, yb, xt, 1);
    traced_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    traced_events = tracer.event_count();
    tracer.enable(obs::Tracer::kDefaultCapacity, /*detail=*/true);
    time_trial(*op, x, y, yb, xt, 1);
    detail_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    tracer.disable();
    // Request bookkeeping rides the tracer-disabled production default —
    // it is what serve/cluster pay on every request regardless of tracing.
    time_request_trial(*op, x, y, yb, xt, stage_recorder, slo, 1);
    request_trials.push_back(
        time_request_trial(*op, x, y, yb, xt, stage_recorder, slo, reps));
  }

  const double base_s = min_of(base_trials);
  const double traced_s = min_of(traced_trials);
  const double overhead_pct = paired_overhead_pct(base_trials, traced_trials);
  const double detail_pct = paired_overhead_pct(base_trials, detail_trials);
  const bool pass = overhead_pct < 2.0;
  const double request_s = min_of(request_trials);
  const double request_pct = paired_overhead_pct(base_trials, request_trials);
  const bool request_pass = request_pct < 2.0;

  // Flight-recorder overhead on the simulated apply path: the functional
  // (value-exact) WSE execution of a compressed 2048x2048 kernel — each
  // chunk launch does its real eight-MVM arithmetic (microseconds), and
  // the recorder adds one cost-model sample per launch (nanoseconds).
  const auto fkernel = oscillatory_kernel(2048, 2048, 5.0);
  tlr::CompressionConfig fcc;
  fcc.nb = 128;
  fcc.acc = 1e-4;
  const tlr::StackedTlr<cf32> fstacked(tlr::compress_tlr(fkernel, fcc));
  std::vector<cf32> fx(2048);
  for (std::size_t i = 0; i < fx.size(); ++i) {
    fx[i] = cf32{1.0f / (1.0f + static_cast<float>(i % 13)), 0.25f};
  }
  obs::FlightRecorder recorder(wse::flight_config_for(wse::WseSpec{}));
  // A functional apply is sub-millisecond, so stretch the bursts to keep
  // each one above the noise floor of the wall timer.
  const int sim_reps = std::max(reps, 8);
  time_functional_trial(fstacked, fx, &recorder, 1);  // warm-up
  std::vector<double> sim_base_trials, sim_rec_trials;
  for (int t = 0; t < trials; ++t) {
    time_functional_trial(fstacked, fx, nullptr, 1);  // settle
    sim_base_trials.push_back(
        time_functional_trial(fstacked, fx, nullptr, sim_reps));
    time_functional_trial(fstacked, fx, &recorder, 1);  // settle
    sim_rec_trials.push_back(
        time_functional_trial(fstacked, fx, &recorder, sim_reps));
  }
  const double sim_base_s = min_of(sim_base_trials);
  const double sim_rec_s = min_of(sim_rec_trials);
  double sim_pct = paired_overhead_pct(sim_base_trials, sim_rec_trials);
  if (!obs::FlightRecorder::compiled_in()) sim_pct = 0.0;  // hooks are no-ops
  const bool sim_pass = sim_pct < 2.0;
  const std::uint64_t sim_chunks = recorder.samples();

  // Informational: the recorder against the pure cost-model sweep, where a
  // chunk is a few dozen nanoseconds of arithmetic and per-launch
  // recording is a large relative cost by construction.
  seismic::RankModelConfig cm_cfg;
  cm_cfg.num_freqs = 14;
  cm_cfg.nb = 70;
  cm_cfg.acc = 1e-4;
  const bench::RankModelSource cm_source(cm_cfg);
  wse::ClusterConfig cluster;
  cluster.stack_width = 23;
  cluster.strategy = wse::Strategy::kScatterRealMvms;
  cluster.systems = 0;
  obs::FlightRecorder cm_recorder(wse::flight_config_for(cluster.spec));
  const int cm_reps = std::max(1, reps / 3);
  time_sim_trial(cm_source, cluster, &cm_recorder, 1);  // warm-up
  std::vector<double> cm_base_trials, cm_rec_trials;
  for (int t = 0; t < trials; ++t) {
    cm_base_trials.push_back(
        time_sim_trial(cm_source, cluster, nullptr, cm_reps));
    cm_rec_trials.push_back(
        time_sim_trial(cm_source, cluster, &cm_recorder, cm_reps));
  }
  double cm_pct = paired_overhead_pct(cm_base_trials, cm_rec_trials);
  if (!obs::FlightRecorder::compiled_in()) cm_pct = 0.0;

  std::cout << "{\"bench\":\"obs_overhead\"," << bench::json_meta_fields()
            << ",\"nt\":" << kNt << ",\"num_freq\":" << kNumFreq
            << ",\"ns\":" << kNs << ",\"nr\":" << kNr << ",\"reps\":" << reps
            << ",\"trials\":" << trials << "}\n";
  std::cout << "{\"min_baseline_s\":" << base_s
            << ",\"min_traced_s\":" << traced_s
            << ",\"overhead_pct\":" << overhead_pct
            << ",\"detail_overhead_pct\":" << detail_pct
            << ",\"events_recorded\":" << traced_events
            << ",\"pass_lt_2pct\":" << (pass ? "true" : "false")
            << ",\"min_sim_baseline_s\":" << sim_base_s
            << ",\"min_sim_recorded_s\":" << sim_rec_s
            << ",\"sim_overhead_pct\":" << sim_pct
            << ",\"sim_chunks\":" << sim_chunks
            << ",\"sim_pass_lt_2pct\":" << (sim_pass ? "true" : "false")
            << ",\"costmodel_overhead_pct\":" << cm_pct
            << ",\"min_request_s\":" << request_s
            << ",\"request_overhead_pct\":" << request_pct
            << ",\"request_pass_lt_2pct\":" << (request_pass ? "true" : "false")
            << "}\n";
  if (check && !request_pass) return 1;
  return (pass && sim_pass) ? 0 : 1;
}
