// Observability overhead proof: the instrumented MDC apply path must cost
// < 2% more with tracing enabled than with tracing runtime-disabled.
//
// Uses bench_mdc_throughput's exact operator configuration (nt=256, 64
// frequencies, 96x96 kernels, nb=16 fused TLR) and times forward+adjoint
// apply pairs in three modes:
//   baseline -- tracing disabled (the production default: every span site
//               is one relaxed atomic load; registry counters still run);
//   traced   -- Tracer enabled, so every span/counter site records into the
//               per-thread ring, including the per-frequency MVM events.
//   detail   -- Tracer enabled with the detail tier too (per-frequency MVM
//               spans, ~64x more events); reported for information, not
//               held to the 2% bar -- detail is an opt-in deep-dive mode.
// The median over `trials` trials decides; JSON (one object per line) so CI
// can schema-check and archive the result. Usage:
//
//   ./bench_obs_overhead [reps] [trials]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace {

using namespace tlrwse;

constexpr index_t kNt = 256;
constexpr index_t kNumFreq = 64;
constexpr index_t kNs = 96;
constexpr index_t kNr = 96;

la::MatrixCF oscillatory_kernel(index_t m, index_t n, double omega) {
  la::MatrixCF k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = cf32{static_cast<float>(amp * std::cos(omega * d)),
                     static_cast<float>(amp * std::sin(omega * d))};
    }
  }
  return k;
}

std::unique_ptr<mdc::MdcOperator> build_operator() {
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  std::vector<index_t> bins;
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  bins.reserve(kNumFreq);
  for (index_t q = 0; q < kNumFreq; ++q) {
    bins.push_back(1 + q);
    const auto k =
        oscillatory_kernel(kNs, kNr, 3.0 + 0.4 * static_cast<double>(q));
    kernels.push_back(std::make_unique<mdc::TlrMvm>(
        tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)),
        mdc::TlrKernel::kFused));
  }
  return std::make_unique<mdc::MdcOperator>(kNt, std::move(bins),
                                            std::move(kernels));
}

/// Seconds per forward+adjoint pair for one timed trial.
double time_trial(const mdc::MdcOperator& op, std::span<const float> x,
                  std::span<float> y, std::span<const float> yb,
                  std::span<float> xt, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    op.apply(x, y);
    op.apply_adjoint(yb, xt);
  }
  return timer.seconds() / reps;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 10;
  int trials = 7;
  if (argc > 1) reps = std::max(1, std::atoi(argv[1]));
  if (argc > 2) trials = std::max(1, std::atoi(argv[2]));

  const auto op = build_operator();
  Rng rng(7);
  std::vector<float> x(static_cast<std::size_t>(op->cols()));
  std::vector<float> yb(static_cast<std::size_t>(op->rows()));
  fill_normal(rng, x.data(), x.size());
  fill_normal(rng, yb.data(), yb.size());
  std::vector<float> y(static_cast<std::size_t>(op->rows()));
  std::vector<float> xt(static_cast<std::size_t>(op->cols()));

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();

  // Warm-up: fill workspace pools and fault in the code paths.
  time_trial(*op, x, y, yb, xt, 2);

  // Interleave the modes so frequency scaling and scheduler drift hit all
  // of them equally instead of biasing whichever runs last.
  std::vector<double> base_trials, traced_trials, detail_trials;
  base_trials.reserve(static_cast<std::size_t>(trials));
  traced_trials.reserve(static_cast<std::size_t>(trials));
  detail_trials.reserve(static_cast<std::size_t>(trials));
  std::size_t traced_events = 0;
  for (int t = 0; t < trials; ++t) {
    tracer.disable();
    base_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    tracer.enable();
    traced_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    traced_events = tracer.event_count();
    tracer.enable(obs::Tracer::kDefaultCapacity, /*detail=*/true);
    detail_trials.push_back(time_trial(*op, x, y, yb, xt, reps));
    tracer.disable();
  }

  const double base_s = median(base_trials);
  const double traced_s = median(traced_trials);
  const double detail_s = median(detail_trials);
  const double overhead_pct =
      base_s > 0.0 ? 100.0 * (traced_s - base_s) / base_s : 0.0;
  const double detail_pct =
      base_s > 0.0 ? 100.0 * (detail_s - base_s) / base_s : 0.0;
  const bool pass = overhead_pct < 2.0;

  std::cout << "{\"bench\":\"obs_overhead\",\"nt\":" << kNt
            << ",\"num_freq\":" << kNumFreq << ",\"ns\":" << kNs
            << ",\"nr\":" << kNr << ",\"reps\":" << reps
            << ",\"trials\":" << trials << "}\n";
  std::cout << "{\"median_baseline_s\":" << base_s
            << ",\"median_traced_s\":" << traced_s
            << ",\"overhead_pct\":" << overhead_pct
            << ",\"detail_overhead_pct\":" << detail_pct
            << ",\"events_recorded\":" << traced_events
            << ",\"pass_lt_2pct\":" << (pass ? "true" : "false") << "}\n";
  return pass ? 0 : 1;
}
