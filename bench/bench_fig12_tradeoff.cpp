// Fig. 12 (top): effect of the compression accuracy on MDD quality —
// percentage NMSE change of each solution against the benchmark solution
// (tightest accuracy, largest tile size) and percentage compression of each
// approximation relative to the dense operator.
//
// Paper behaviour: two opposite trends — loosening acc gains compression
// but degrades the solution; nb plays a secondary role. The acc sweep is
// rescaled to this dataset's compression regime (paper: 1e-4 .. 7e-4).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 12 (top): accuracy vs compression trade-off ===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);

  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;

  // Benchmark solution: largest nb, tightest acc (paper: nb=70, acc=1e-4).
  tlr::CompressionConfig bench_cfg;
  bench_cfg.nb = 32;
  bench_cfg.acc = 1e-4;
  const auto bench_op =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, bench_cfg);
  const auto bench_sol = mdd::solve_mdd(*bench_op, rhs, lsqr);
  const double bench_nmse = mdd::nmse(bench_sol.x, truth);

  TablePrinter table({"nb", "acc", "% NMSE change", "% compression",
                      "NMSE vs truth"});
  for (index_t nb : {12, 24, 32}) {              // analogue of 25/50/70
    for (double acc : {1e-3, 1e-2, 5e-2, 1.5e-1}) {  // analogue of 1e-4..7e-4
      tlr::CompressionConfig cc;
      cc.nb = nb;
      cc.acc = acc;
      const auto stats = mdd::kernel_compression_stats(data, cc);
      const auto op =
          mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);
      const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
      const double n = mdd::nmse(sol.x, truth);
      table.add_row(
          {cell(nb), bench::acc_cell(acc),
           cell(mdd::nmse_change_percent(n, bench_nmse), 2),
           cell(100.0 * stats.compressed_bytes / stats.dense_bytes, 1),
           cell(n, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "(paper: NMSE change grows and compression %% shrinks as acc "
               "loosens — green/orange/red regions)\n";
  return 0;
}
