// Table 3: aggregate relative/absolute bandwidth (PB/s) and PFlop/s of the
// five green configurations on six shards / six CS-2 systems.
//
// Paper reference values: relative {11.24, 11.70, 11.92, 12.26, 11.60},
// absolute {26.19, 30.15, 31.62, 29.05, 28.79},
// PFlop/s {3.77, 4.60, 4.89, 4.16, 4.23}.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Table 3: aggregate bandwidth metrics on six shards ===\n";
  TablePrinter table(
      {"nb", "acc", "Agg. relative bw (PB/s)", "Agg. absolute bw (PB/s)",
       "PFlop/s"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);
    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.systems = 6;
    const auto rep = wse::simulate_cluster(source, cfg);
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc),
                   cell(bytes_to_pb(rep.relative_bw)),
                   cell(bytes_to_pb(rep.absolute_bw)),
                   cell(rep.flops_rate / 1e15)});
  }
  table.print(std::cout);
  std::cout << "(paper: 11.24/26.19/3.77, 11.70/30.15/4.60, 11.92/31.62/4.89, "
               "12.26/29.05/4.16, 11.60/28.79/4.23)\n";
  return 0;
}
