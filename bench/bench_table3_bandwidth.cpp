// Table 3: aggregate relative/absolute bandwidth (PB/s) and PFlop/s of the
// five green configurations on six shards, plus the paper's 48-system
// strategy-2 headline run (nb = 70, acc = 1e-4) — all derived from the
// flight recorder's aggregation, not bespoke accounting. The headline
// section checks the recorder-derived sustained bandwidths against the
// paper's 92.58 PB/s relative / 245.59 PB/s absolute and fails (exit 1)
// when either deviates by more than 1%.
//
// Paper reference values (six shards): relative {11.24, 11.70, 11.92,
// 12.26, 11.60}, absolute {26.19, 30.15, 31.62, 29.05, 28.79},
// PFlop/s {3.77, 4.60, 4.89, 4.16, 4.23}.
//
// Usage: bench_table3_bandwidth [--json] [--heatmap FILE]
//   --json     emit v2 JSON-lines (deterministic: the CI perf gate diffs
//              this output against the committed baseline)
//   --heatmap  write the headline run's per-phase PE-grid heatmaps
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"

namespace {

constexpr double kPaperRelativePbs = 92.58;
constexpr double kPaperAbsolutePbs = 245.59;

double pct_err(double got, double want) {
  return 100.0 * (got - want) / want;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tlrwse;
  bool json = false;
  std::string heatmap_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--heatmap") == 0 && i + 1 < argc) {
      heatmap_path = argv[++i];
    } else {
      std::cerr << "usage: bench_table3_bandwidth [--json] [--heatmap FILE]\n";
      return 2;
    }
  }

  if (json) {
    std::cout << "{\"bench\":\"table3_bandwidth\"," << bench::json_meta_fields()
              << "}\n";
  } else {
    std::cout << "=== Table 3: aggregate bandwidth metrics on six shards ===\n";
  }

  TablePrinter table(
      {"nb", "acc", "Agg. relative bw (PB/s)", "Agg. absolute bw (PB/s)",
       "PFlop/s"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);
    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.systems = 6;
    const auto run = bench::recorded_cluster_run(source, cfg);
    const double rel_pbs = bytes_to_pb(run.flight.relative_bw());
    const double abs_pbs = bytes_to_pb(run.flight.absolute_bw());
    const double pflops = run.flight.flops_rate() / 1e15;
    if (json) {
      std::cout << "{\"row\":\"six_shard\",\"nb\":" << pc.nb
                << ",\"acc\":" << pc.acc
                << ",\"stack_width\":" << pc.stack_width
                << ",\"systems\":" << run.report.systems
                << ",\"relative_pbs\":" << rel_pbs
                << ",\"absolute_pbs\":" << abs_pbs
                << ",\"pflops\":" << pflops << "}\n";
    } else {
      table.add_row({cell(pc.nb), bench::acc_cell(pc.acc), cell(rel_pbs),
                     cell(abs_pbs), cell(pflops)});
    }
  }
  if (!json) {
    table.print(std::cout);
    std::cout << "(paper: 11.24/26.19/3.77, 11.70/30.15/4.60, "
                 "11.92/31.62/4.89, 12.26/29.05/4.16, 11.60/28.79/4.23)\n";
  }

  // The title run: nb = 70, acc = 1e-4 scattered over eight PEs per chunk
  // (strategy 2) across the full Condor Galaxy machine.
  bench::RankModelSource source(70, 1e-4);
  wse::ClusterConfig cfg;
  cfg.stack_width = 23;
  cfg.strategy = wse::Strategy::kScatterRealMvms;
  cfg.systems = 0;  // derive the shard count from the PE demand
  const auto run = bench::recorded_cluster_run(source, cfg);
  const double rel_pbs = bytes_to_pb(run.flight.relative_bw());
  const double abs_pbs = bytes_to_pb(run.flight.absolute_bw());
  const double rel_err = pct_err(rel_pbs, kPaperRelativePbs);
  const double abs_err = pct_err(abs_pbs, kPaperAbsolutePbs);
  const bool within =
      std::abs(rel_err) <= 1.0 && std::abs(abs_err) <= 1.0;

  // Per-system sustained bandwidth spread from the recorder's system
  // profiles (every system holds structurally identical worst chunks, so
  // the spread is narrow; the paper reports only the aggregate).
  double sys_rel_min = 0.0, sys_rel_max = 0.0;
  for (const auto& s : run.flight.systems) {
    const double bw = bytes_to_pb(s.relative_bw(run.flight.clock_hz));
    if (sys_rel_min == 0.0 || bw < sys_rel_min) sys_rel_min = bw;
    if (bw > sys_rel_max) sys_rel_max = bw;
  }

  if (json) {
    std::cout << "{\"row\":\"headline48\",\"nb\":70,\"acc\":1e-4"
              << ",\"stack_width\":23,\"systems\":" << run.report.systems
              << ",\"relative_pbs\":" << rel_pbs
              << ",\"absolute_pbs\":" << abs_pbs
              << ",\"pflops\":" << run.flight.flops_rate() / 1e15
              << ",\"rel_err_pct\":" << rel_err
              << ",\"abs_err_pct\":" << abs_err << ",\"within_1pct\":"
              << (within ? "true" : "false") << "}\n";
  } else {
    std::cout << "\nHeadline: nb=70 acc=1e-4, strategy 2 over "
              << run.report.systems << " shards ("
              << run.flight.pes << " PEs recorded)\n"
              << "  relative sustained bw: " << cell(rel_pbs) << " PB/s "
              << "(paper 92.58, " << cell(rel_err, 2) << "%)\n"
              << "  absolute sustained bw: " << cell(abs_pbs) << " PB/s "
              << "(paper 245.59, " << cell(abs_err, 2) << "%)\n"
              << "  per-system relative bw: " << cell(sys_rel_min) << " - "
              << cell(sys_rel_max) << " PB/s over "
              << run.flight.systems.size() << " systems\n"
              << "  headline within 1%: " << (within ? "yes" : "NO") << "\n";
  }

  if (!heatmap_path.empty()) {
    std::ofstream out(heatmap_path, std::ios::binary);
    out << run.flight.heatmaps_json() << "\n";
    if (!out) {
      std::cerr << "cannot write " << heatmap_path << "\n";
      return 2;
    }
  }
  return within ? 0 : 1;
}
