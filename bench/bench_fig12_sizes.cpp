// Fig. 12 (bottom): aggregated size of the U and V bases as a function of
// frequency for the 12 (nb, acc) combinations, at the paper's full scale
// (26040 x 15930, 230 frequency matrices) via the calibrated rank model.
//
// Paper reference totals (GB): nb=25 {110, 67, 59, 57}, nb=50 {109, 63,
// 47, 39}, nb=70 {112, 66, 49, 40}; dense dataset 763 GB (~7x compression
// at acc = 1e-4).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 12 (bottom): size per frequency matrix, paper scale "
               "===\n";
  TablePrinter table({"nb", "acc", "size @ 5 Hz (GB)", "size @ 25 Hz (GB)",
                      "size @ 50 Hz (GB)", "total (GB)", "vs dense"});
  for (index_t nb : {index_t{25}, index_t{50}, index_t{70}}) {
    for (double acc : {1e-4, 3e-4, 5e-4, 7e-4}) {
      seismic::RankModelConfig cfg;
      cfg.nb = nb;
      cfg.acc = acc;
      const seismic::RankModel model(cfg);
      // Representative frequencies: bins nearest 5/25/50 Hz.
      const index_t q5 = 230 * 5 / 50 - 1;
      const index_t q25 = 230 * 25 / 50 - 1;
      const index_t q50 = 229;
      double total = 0.0;
      for (index_t q = 0; q < cfg.num_freqs; ++q) {
        total += model.size_per_matrix_bytes(q);
      }
      table.add_row(
          {cell(nb), bench::acc_cell(acc),
           cell(bytes_to_gb(model.size_per_matrix_bytes(q5))),
           cell(bytes_to_gb(model.size_per_matrix_bytes(q25))),
           cell(bytes_to_gb(model.size_per_matrix_bytes(q50))),
           cell(bytes_to_gb(total), 0),
           cell(model.dense_total_bytes() / total, 1) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "(paper totals: 110/67/59/57, 109/63/47/39, 112/66/49/40 GB; "
               "dense 763 GB)\n";
  return 0;
}
