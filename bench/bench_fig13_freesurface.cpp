// Fig. 13: MDD removes free-surface related effects. The paper shows
// zero-offset sections of the full data, upgoing data, and MDD output
// along a crossline of virtual sources; downgoing events and free-surface
// multiples visible in the first two panels vanish after MDD.
//
// Functional-scale proxy: for a line of virtual sources we compare the
// fraction of trace energy arriving in the late "multiple" window (after
// the deepest primary) for the upgoing data, the MDD estimate, and the
// ground-truth reflectivity. MDD should push the late-energy fraction down
// to the truth's level.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace {

/// Energy fraction of the trace page (nt x ntraces) after time `t_late`.
double late_energy_fraction(const std::vector<float>& page,
                            tlrwse::index_t nt, double dt, double t_late) {
  const auto ntr = static_cast<tlrwse::index_t>(page.size()) / nt;
  const auto t0 = static_cast<tlrwse::index_t>(t_late / dt);
  double late = 0.0, total = 0.0;
  for (tlrwse::index_t tr = 0; tr < ntr; ++tr) {
    for (tlrwse::index_t t = 0; t < nt; ++t) {
      const double v = page[static_cast<std::size_t>(tr * nt + t)];
      total += v * v;
      if (t >= t0) late += v * v;
    }
  }
  return total > 0.0 ? late / total : 0.0;
}

}  // namespace

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 13: free-surface removal along a virtual-source line "
               "===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  const auto& model = data.config.model;
  // Deepest primary two-way time below the datum, plus margin: everything
  // after this in the LOCAL reflectivity should be (nearly) silent, while
  // the upgoing data still carries free-surface multiples there.
  const double z_max = model.interfaces.back().depth - model.water_depth;
  const double t_late = 2.0 * (z_max + 150.0) / model.sediment_velocity;

  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  const auto op = mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;

  // A crossline of virtual sources through the middle of the receiver grid.
  const index_t line = data.num_receivers() / 2;
  const index_t nline = std::min<index_t>(8, data.num_receivers() - line);
  double up_frac = 0.0, mdd_frac = 0.0, true_frac = 0.0;
  for (index_t k = 0; k < nline; ++k) {
    const index_t v = line + k;
    const auto rhs = mdd::virtual_source_rhs(data, v);
    const auto truth = mdd::true_reflectivity_traces(data, v);
    const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
    up_frac += late_energy_fraction(rhs, data.config.nt, data.config.dt, t_late);
    mdd_frac +=
        late_energy_fraction(sol.x, data.config.nt, data.config.dt, t_late);
    true_frac +=
        late_energy_fraction(truth, data.config.nt, data.config.dt, t_late);
  }
  up_frac /= static_cast<double>(nline);
  mdd_frac /= static_cast<double>(nline);
  true_frac /= static_cast<double>(nline);

  TablePrinter table({"Dataset", "late-window energy fraction"});
  table.add_row({"Upgoing data (with free-surface multiples)",
                 cell(up_frac, 4)});
  table.add_row({"MDD estimate", cell(mdd_frac, 4)});
  table.add_row({"True local reflectivity", cell(true_frac, 4)});
  table.print(std::cout);
  std::cout << "(paper: free-surface multiples present in the upgoing data "
               "are suppressed after MDD)\n"
            << "late window starts at t = " << t_late << " s over " << nline
            << " virtual sources\n";
  return 0;
}
