// Microbenchmarks of the MVM kernels: dense reference vs 3-phase TLR-MVM
// vs the communication-avoiding fused variant vs the split-real path —
// on a seismic-like frequency matrix (google-benchmark).
#include <benchmark/benchmark.h>

#include <cmath>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace {

using namespace tlrwse;

la::MatrixCF make_kernel(index_t m, index_t n) {
  la::MatrixCF k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = cf32{static_cast<float>(amp * std::cos(14.0 * d)),
                     static_cast<float>(amp * std::sin(14.0 * d))};
    }
  }
  return k;
}

constexpr index_t kRows = 560;
constexpr index_t kCols = 420;

struct State {
  la::MatrixCF dense = make_kernel(kRows, kCols);
  tlr::TlrMatrix<cf32> tlr_mat;
  tlr::StackedTlr<cf32> stacks;
  tlr::RealSplitStacks<float> split;
  std::vector<cf32> x, y;
  tlr::MvmWorkspace<cf32> ws;

  explicit State(index_t nb)
      : tlr_mat(compress(dense, nb)), stacks(tlr_mat), split(stacks) {
    Rng rng(1);
    x.resize(static_cast<std::size_t>(kCols));
    y.resize(static_cast<std::size_t>(kRows));
    fill_normal(rng, x.data(), x.size());
  }
  static tlr::TlrMatrix<cf32> compress(const la::MatrixCF& a, index_t nb) {
    tlr::CompressionConfig cfg;
    cfg.nb = nb;
    cfg.acc = 1e-4;
    return tlr::compress_tlr(a, cfg);
  }
};

State& state_for(index_t nb) {
  static State s70(70);
  static State s35(35);
  return nb == 70 ? s70 : s35;
}

void BM_DenseMvm(benchmark::State& bst) {
  State& s = state_for(70);
  for (auto _ : bst) {
    la::gemv(s.dense, std::span<const cf32>(s.x), std::span<cf32>(s.y));
    benchmark::DoNotOptimize(s.y.data());
  }
  bst.SetBytesProcessed(static_cast<int64_t>(bst.iterations()) * kRows * kCols *
                        sizeof(cf32));
}
BENCHMARK(BM_DenseMvm);

void BM_Tlr3Phase(benchmark::State& bst) {
  State& s = state_for(static_cast<index_t>(bst.range(0)));
  for (auto _ : bst) {
    tlr::tlr_mvm_3phase(s.stacks, std::span<const cf32>(s.x),
                        std::span<cf32>(s.y), s.ws);
    benchmark::DoNotOptimize(s.y.data());
  }
  bst.SetBytesProcessed(
      static_cast<int64_t>(bst.iterations()) *
      static_cast<int64_t>(s.tlr_mat.compressed_bytes()));
}
BENCHMARK(BM_Tlr3Phase)->Arg(35)->Arg(70);

void BM_TlrFused(benchmark::State& bst) {
  State& s = state_for(static_cast<index_t>(bst.range(0)));
  for (auto _ : bst) {
    tlr::tlr_mvm_fused(s.stacks, std::span<const cf32>(s.x),
                       std::span<cf32>(s.y), s.ws);
    benchmark::DoNotOptimize(s.y.data());
  }
  bst.SetBytesProcessed(
      static_cast<int64_t>(bst.iterations()) *
      static_cast<int64_t>(s.tlr_mat.compressed_bytes()));
}
BENCHMARK(BM_TlrFused)->Arg(35)->Arg(70);

void BM_TlrRealSplit(benchmark::State& bst) {
  State& s = state_for(static_cast<index_t>(bst.range(0)));
  for (auto _ : bst) {
    tlr::tlr_mvm_real_split(s.split, std::span<const cf32>(s.x),
                            std::span<cf32>(s.y));
    benchmark::DoNotOptimize(s.y.data());
  }
}
BENCHMARK(BM_TlrRealSplit)->Arg(35)->Arg(70);

void BM_TlrAdjoint(benchmark::State& bst) {
  State& s = state_for(70);
  std::vector<cf32> ya(static_cast<std::size_t>(kRows));
  Rng rng(5);
  fill_normal(rng, ya.data(), ya.size());
  std::vector<cf32> out(static_cast<std::size_t>(kCols));
  for (auto _ : bst) {
    tlr::tlr_mvm_adjoint(s.stacks, std::span<const cf32>(ya),
                         std::span<cf32>(out), s.ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TlrAdjoint);

}  // namespace

BENCHMARK_MAIN();
