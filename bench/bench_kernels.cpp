// Microbenchmarks of the SIMD microkernel engine against the scalar
// la::gemv paths the TLR-MVM used before the engine existed, the
// single-RHS vs multi-RHS panel kernels, and the precompiled MvmPlan vs
// the portable 3-phase kernel on a compressed seismic-like matrix — the
// speedups the SIMD work is accountable for. Emits JSON lines (header +
// one object per row) with GFLOP/s and the fraction of a measured
// in-cache peak, so the CI perf gate can track the ratios across commits:
//
//   {"bench":"kernels","simd_level":"avx512","peak_gflops":...,...}
//   {"row":"sgemv_split","m":512,"n":512,"nrhs":1,"gflops":...,
//    "pct_of_peak":...,"speedup":...,"speedup_8rhs":...}
//
// `speedup` is GFLOP/s over the scalar baseline of the same row family
// and shape (1.0 on the baseline rows themselves); `speedup_8rhs` is the
// per-RHS gain of the 8-RHS panel kernel over the single-RHS SIMD kernel
// (0.0 where it does not apply). With --check the bench enforces the
// acceptance bars (>= 2x split-complex speedup and >= 1.5x additional
// from 8-RHS batching, each on at least one shape) whenever the active
// dispatch tier is not scalar.
//
//   ./bench_kernels [--check]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/half.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/mvm_plan.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace {

using namespace tlrwse;
namespace simd = la::simd;

/// Best-of-three GFLOP/s of `fn`, with reps calibrated to ~20 ms trials.
template <typename F>
double time_gflops(F&& fn, double flops_per_call) {
  fn();  // warm-up (page faults, caches, dispatch, workspace growth)
  WallTimer probe;
  fn();
  const double once = std::max(probe.seconds(), 1e-9);
  const int reps = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    WallTimer timer;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, timer.seconds() / reps);
  }
  return flops_per_call / best * 1e-9;
}

struct Row {
  const char* row;
  index_t m, n, nrhs;
  double gflops;
  double speedup;       // vs the scalar baseline of the same row family
  double speedup_8rhs;  // per-RHS gain of the 8-RHS kernel (0 = n/a)
};

void emit(const Row& r, double peak) {
  std::printf(
      "{\"row\":\"%s\",\"m\":%lld,\"n\":%lld,\"nrhs\":%lld,"
      "\"gflops\":%.4f,\"pct_of_peak\":%.2f,\"speedup\":%.4f,"
      "\"speedup_8rhs\":%.4f}\n",
      r.row, static_cast<long long>(r.m), static_cast<long long>(r.n),
      static_cast<long long>(r.nrhs), r.gflops,
      peak > 0.0 ? 100.0 * r.gflops / peak : 0.0, r.speedup, r.speedup_8rhs);
}

/// Measured peak: the 8-RHS split kernel on an L1-resident panel — the
/// most register/cache-friendly configuration the engine has. pct_of_peak
/// is relative to this, not to a theoretical FMA rate.
double measure_peak(const simd::KernelTable& kt) {
  constexpr index_t m = 64, n = 64, nrhs = 8;
  Rng rng(3);
  std::vector<float> Ar(static_cast<std::size_t>(m * n)),
      Ai(static_cast<std::size_t>(m * n)),
      Xr(static_cast<std::size_t>(n * nrhs)),
      Xi(static_cast<std::size_t>(n * nrhs)),
      Yr(static_cast<std::size_t>(m * nrhs)),
      Yi(static_cast<std::size_t>(m * nrhs));
  for (auto* v : {&Ar, &Ai, &Xr, &Xi}) fill_normal(rng, v->data(), v->size());
  return time_gflops(
      [&] {
        kt.sgemv_split_multi(m, n, Ar.data(), Ai.data(), m, Xr.data(),
                             Xi.data(), n, Yr.data(), Yi.data(), m, nrhs,
                             false);
      },
      8.0 * m * n * nrhs);
}

/// All kernel rows for one (m, n) shape. Returns the split speedup and
/// the 8-RHS gain so main() can enforce the acceptance bars.
std::pair<double, double> bench_shape(index_t m, index_t n,
                                      const simd::KernelTable& kt,
                                      std::vector<Row>& rows) {
  constexpr index_t kRhs = 8;
  Rng rng(17);
  la::MatrixCF A(m, n);
  fill_normal(rng, A.data(), static_cast<std::size_t>(A.size()));
  std::vector<cf32> x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(m)), w(static_cast<std::size_t>(m)),
      a(static_cast<std::size_t>(n));
  fill_normal(rng, x.data(), x.size());
  fill_normal(rng, w.data(), w.size());

  // Planar copies of the same operator for the split kernels.
  std::vector<float> Ar(static_cast<std::size_t>(m * n)),
      Ai(static_cast<std::size_t>(m * n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      Ar[static_cast<std::size_t>(j * m + i)] = A(i, j).real();
      Ai[static_cast<std::size_t>(j * m + i)] = A(i, j).imag();
    }
  }
  std::vector<float> xr(static_cast<std::size_t>(n * kRhs)),
      xi(static_cast<std::size_t>(n * kRhs)),
      yr(static_cast<std::size_t>(m * kRhs)),
      yi(static_cast<std::size_t>(m * kRhs));
  fill_normal(rng, xr.data(), xr.size());
  fill_normal(rng, xi.data(), xi.size());

  const double cflops = 8.0 * m * n;  // complex MVM: 4 mul + 4 add per elem

  // Scalar baseline: the pre-SIMD hot path, la::gemv on the interleaved
  // complex matrix (what tlr_mvm_3phase runs per stack).
  const double g_base = time_gflops(
      [&] { la::gemv(A, std::span<const cf32>(x), std::span<cf32>(y)); },
      cflops);
  rows.push_back({"gemv_complex_scalar", m, n, 1, g_base, 1.0, 0.0});

  const double g_split = time_gflops(
      [&] {
        kt.sgemv_split(m, n, Ar.data(), Ai.data(), m, xr.data(), xi.data(),
                       yr.data(), yi.data(), false);
      },
      cflops);
  rows.push_back({"sgemv_split", m, n, 1, g_split, g_split / g_base, 0.0});

  const double g_multi = time_gflops(
      [&] {
        kt.sgemv_split_multi(m, n, Ar.data(), Ai.data(), m, xr.data(),
                             xi.data(), n, yr.data(), yi.data(), m, kRhs,
                             false);
      },
      cflops * kRhs);
  rows.push_back({"sgemv_split_multi", m, n, kRhs, g_multi, g_multi / g_base,
                  g_multi / g_split});

  // Adjoint pair: scalar la::gemv_adjoint vs the dot-form split kernel.
  const double g_adj_base = time_gflops(
      [&] {
        la::gemv_adjoint(A, std::span<const cf32>(w), std::span<cf32>(a));
      },
      cflops);
  rows.push_back(
      {"gemv_adjoint_complex_scalar", m, n, 1, g_adj_base, 1.0, 0.0});
  const double g_adj = time_gflops(
      [&] {
        kt.sgemv_split_adjoint(m, n, Ar.data(), Ai.data(), m, yr.data(),
                               yi.data(), xr.data(), xi.data(), false);
      },
      cflops);
  rows.push_back(
      {"sgemv_split_adjoint", m, n, 1, g_adj, g_adj / g_adj_base, 0.0});

  // Packed 16-bit factor kernels (fp32 accumulation): same operator with
  // its planes pre-rounded and packed through la/half.hpp, the MvmPlan
  // arena layout. Speedup is vs the same scalar complex baseline, so the
  // fp16-vs-fp32 gain is this row's speedup over sgemv_split_multi's.
  for (const la::HalfFormat fmt :
       {la::HalfFormat::kFp16, la::HalfFormat::kBf16}) {
    std::vector<std::uint16_t> Hr(Ar.size()), Hi(Ai.size());
    for (std::size_t k = 0; k < Ar.size(); ++k) {
      Hr[k] = la::f32_to_half_bits(Ar[k], fmt);
      Hi[k] = la::f32_to_half_bits(Ai[k], fmt);
    }
    const char* one = fmt == la::HalfFormat::kFp16 ? "hgemv_split_fp16"
                                                   : "hgemv_split_bf16";
    const char* multi = fmt == la::HalfFormat::kFp16
                            ? "hgemv_split_multi_fp16"
                            : "hgemv_split_multi_bf16";
    const double g_h = time_gflops(
        [&] {
          kt.hgemv_split_multi(fmt, m, n, Hr.data(), Hi.data(), m, xr.data(),
                               xi.data(), n, yr.data(), yi.data(), m, 1,
                               false);
        },
        cflops);
    rows.push_back({one, m, n, 1, g_h, g_h / g_base, 0.0});
    const double g_h_multi = time_gflops(
        [&] {
          kt.hgemv_split_multi(fmt, m, n, Hr.data(), Hi.data(), m, xr.data(),
                               xi.data(), n, yr.data(), yi.data(), m, kRhs,
                               false);
        },
        cflops * kRhs);
    rows.push_back(
        {multi, m, n, kRhs, g_h_multi, g_h_multi / g_base, g_h_multi / g_h});
  }

  // Real kernels (the U/V panels after splitting are real sgemvs).
  la::Matrix<float> R(m, n);
  std::memcpy(R.data(), Ar.data(), Ar.size() * sizeof(float));
  std::vector<float> fx(static_cast<std::size_t>(n * kRhs)),
      fy(static_cast<std::size_t>(m * kRhs));
  fill_normal(rng, fx.data(), fx.size());
  const double rflops = 2.0 * m * n;
  const double g_real_base = time_gflops(
      [&] {
        la::gemv(R,
                 std::span<const float>(fx.data(), static_cast<std::size_t>(n)),
                 std::span<float>(fy.data(), static_cast<std::size_t>(m)));
      },
      rflops);
  rows.push_back({"gemv_real_scalar", m, n, 1, g_real_base, 1.0, 0.0});
  const double g_real = time_gflops(
      [&] { kt.sgemv(m, n, R.data(), m, fx.data(), fy.data(), false); },
      rflops);
  rows.push_back({"sgemv", m, n, 1, g_real, g_real / g_real_base, 0.0});
  const double g_real_multi = time_gflops(
      [&] {
        kt.sgemv_multi(m, n, R.data(), m, fx.data(), n, fy.data(), m, kRhs,
                       false);
      },
      rflops * kRhs);
  rows.push_back({"sgemv_multi", m, n, kRhs, g_real_multi,
                  g_real_multi / g_real_base, g_real_multi / g_real});

  return {g_split / g_base, g_multi / g_split};
}

/// End-to-end row: precompiled MvmPlan vs portable tlr_mvm_3phase on a
/// compressed seismic-like matrix (the TLR-MVM hot path itself).
la::MatrixCF make_kernel(index_t m, index_t n) {
  la::MatrixCF k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = cf32{static_cast<float>(amp * std::cos(14.0 * d)),
                     static_cast<float>(amp * std::sin(14.0 * d))};
    }
  }
  return k;
}

void bench_plan(const simd::KernelTable& kt, std::vector<Row>& rows) {
  constexpr index_t kRows = 560, kCols = 420, kNb = 70, kRhs = 8;
  const la::MatrixCF dense = make_kernel(kRows, kCols);
  tlr::CompressionConfig cfg;
  cfg.nb = kNb;
  cfg.acc = 1e-4;
  const tlr::TlrMatrix<cf32> mat = tlr::compress_tlr(dense, cfg);
  const tlr::StackedTlr<cf32> stacks(mat);
  const tlr::MvmPlan plan(stacks, &kt);

  Rng rng(5);
  std::vector<cf32> x(static_cast<std::size_t>(kCols)),
      y(static_cast<std::size_t>(kRows));
  fill_normal(rng, x.data(), x.size());
  std::vector<cf32> X(static_cast<std::size_t>(kCols * kRhs)),
      Y(static_cast<std::size_t>(kRows * kRhs));
  fill_normal(rng, X.data(), X.size());

  // Effective flops of the compressed MVM: 8 per complex fma over the
  // rank-sum volume, both phases.
  double flops = 0.0;
  const auto& g = stacks.grid();
  for (index_t j = 0; j < g.nt(); ++j) {
    flops += 8.0 * static_cast<double>(stacks.col_rank_sum(j)) *
             static_cast<double>(g.tile_cols(j));
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    flops += 8.0 * static_cast<double>(stacks.row_rank_sum(i)) *
             static_cast<double>(g.tile_rows(i));
  }

  tlr::MvmWorkspace<cf32> ws3;
  const double g_3phase = time_gflops(
      [&] {
        tlr::tlr_mvm_3phase(stacks, std::span<const cf32>(x), std::span<cf32>(y),
                            ws3);
      },
      flops);
  rows.push_back(
      {"tlr_mvm_3phase_scalar", kRows, kCols, 1, g_3phase, 1.0, 0.0});

  tlr::PlanWorkspace pws;
  const double g_plan = time_gflops(
      [&] { plan.apply(std::span<const cf32>(x), std::span<cf32>(y), pws); },
      flops);
  rows.push_back({"mvm_plan_apply", kRows, kCols, 1, g_plan,
                  g_plan / g_3phase, 0.0});

  const double g_plan_multi = time_gflops(
      [&] {
        plan.apply_multi(std::span<const cf32>(X), std::span<cf32>(Y), kRhs,
                         pws);
      },
      flops * kRhs);
  rows.push_back({"mvm_plan_apply_multi", kRows, kCols, kRhs, g_plan_multi,
                  g_plan_multi / g_3phase, g_plan_multi / g_plan});
}

/// Memory-bound plan rows: a 6144x6144 rank-64 TLR operator whose fp32
/// factor arena (~150 MB) spills every cache level, streamed once per
/// apply. Packing the arena to 16 bits halves the bytes the apply must
/// move, which is where the fp16/bf16 storage earns its throughput (the
/// flop count is unchanged — the win is pure bandwidth). Returns the
/// best packed-vs-fp32 apply speedup for the --check bar.
double bench_plan_big(const simd::KernelTable& kt, std::vector<Row>& rows) {
  constexpr index_t kDim = 6144, kNb = 256, kRank = 64;
  const tlr::TileGrid grid(kDim, kDim, kNb);
  Rng rng(11);
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(grid.num_tiles()));
  for (index_t j = 0; j < grid.nt(); ++j) {
    for (index_t i = 0; i < grid.mt(); ++i) {
      la::LowRankFactors<cf32> t;
      t.U = la::MatrixCF(grid.tile_rows(i), kRank);
      t.Vh = la::MatrixCF(kRank, grid.tile_cols(j));
      fill_normal(rng, t.U.data(), static_cast<std::size_t>(t.U.size()));
      fill_normal(rng, t.Vh.data(), static_cast<std::size_t>(t.Vh.size()));
      tiles[static_cast<std::size_t>(grid.tile_index(i, j))] = std::move(t);
    }
  }
  const tlr::TlrMatrix<cf32> mat(grid, std::move(tiles));

  Rng xrng(7);
  std::vector<cf32> x(static_cast<std::size_t>(kDim)),
      y(static_cast<std::size_t>(kDim));
  fill_normal(xrng, x.data(), x.size());

  double flops = 0.0;
  {
    const tlr::StackedTlr<cf32> probe(mat);
    const auto& g = probe.grid();
    for (index_t j = 0; j < g.nt(); ++j) {
      flops += 8.0 * static_cast<double>(probe.col_rank_sum(j)) *
               static_cast<double>(g.tile_cols(j));
    }
    for (index_t i = 0; i < g.mt(); ++i) {
      flops += 8.0 * static_cast<double>(probe.row_rank_sum(i)) *
               static_cast<double>(g.tile_rows(i));
    }
  }

  tlr::PlanWorkspace pws;
  double g_fp32 = 0.0, best = 0.0;
  const struct {
    const char* row;
    tlr::MixedPrecisionPolicy policy;  // all-or-nothing per variant
  } variants[] = {
      {"mvm_plan_big", {0.0, 0.0}},
      {"mvm_plan_big_fp16", {2.0, 0.0}},
      {"mvm_plan_big_bf16", {2.0, 2.0}},
  };
  for (const auto& v : variants) {
    const tlr::MixedTlrResult q = tlr::quantize_tlr(mat, v.policy);
    const tlr::StackedTlr<cf32> stacks(q.matrix);
    const tlr::MvmPlan plan(stacks, &kt);
    const double g = time_gflops(
        [&] { plan.apply(std::span<const cf32>(x), std::span<cf32>(y), pws); },
        flops);
    if (g_fp32 == 0.0) g_fp32 = g;  // first variant is the fp32 baseline
    const double speedup = g / g_fp32;
    rows.push_back({v.row, kDim, kDim, 1, g, speedup, 0.0});
    if (q.tiles_fp32 == 0) best = std::max(best, speedup);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const simd::KernelTable& kt = simd::dispatch();
  const char* level = simd::level_name(simd::active_level());
  const double peak = measure_peak(kt);

  std::printf(
      "{\"bench\":\"kernels\",\"simd_compiled\":%s,\"simd_level\":\"%s\","
      "\"peak_gflops\":%.4f,%s}\n",
      simd::compiled_in() ? "true" : "false", level, peak,
      bench::json_meta_fields().c_str());

  // A stack-like tall panel (rank-sum x nb), an L2-resident square, and a
  // larger square where the 8-RHS panels earn their keep on bandwidth.
  const std::pair<index_t, index_t> shapes[] = {
      {512, 64}, {512, 512}, {2048, 512}};
  double best_split = 0.0, best_8rhs = 0.0;
  std::vector<Row> rows;
  for (const auto& [m, n] : shapes) {
    const auto [s_split, s_8rhs] = bench_shape(m, n, kt, rows);
    best_split = std::max(best_split, s_split);
    best_8rhs = std::max(best_8rhs, s_8rhs);
  }
  bench_plan(kt, rows);
  const double best_half_plan = bench_plan_big(kt, rows);
  for (const Row& r : rows) emit(r, peak);

  if (check) {
    if (std::strcmp(level, "scalar") == 0) {
      std::cerr << "check: active tier is scalar, speedup bars skipped\n";
      return 0;
    }
    const bool ok_split = best_split >= 2.0;
    const bool ok_8rhs = best_8rhs >= 1.5;
    // The packed-factor bar measures the bandwidth win of 16-bit storage
    // at a memory-bound shape; it needs hardware widening (F16C/AVX-512/
    // NEON) — the bit-exact scalar conversion trades that win for parity.
    const bool gate_half = simd::half_hw_convert();
    const bool ok_half = !gate_half || best_half_plan >= 1.5;
    std::cerr << "check: split speedup " << best_split
              << (ok_split ? " >= 2 ok" : " < 2 FAIL") << ", 8-RHS gain "
              << best_8rhs << (ok_8rhs ? " >= 1.5 ok" : " < 1.5 FAIL")
              << ", packed plan speedup " << best_half_plan
              << (gate_half ? (ok_half ? " >= 1.5 ok" : " < 1.5 FAIL")
                            : " (no hw widening, bar skipped)")
              << "\n";
    return ok_split && ok_8rhs && ok_half ? 0 : 1;
  }
  return 0;
}
