// Table 4: strong scaling of the nb = 25, acc = 1e-4 configuration.
// Strategy 1 splits the stack width (64 -> 32 -> 24 -> 19) to expose more
// concurrency over 6/12/16/20 shards; the 48-shard row uses strategy 2
// (the eight real MVMs scattered over eight PEs at stack width 64).
//
// Paper reference values (relative bw PB/s): 11.24, 22.13, 29.28, 35.77,
// 87.73; parallel efficiency 95% at 20 shards, 97% at 48.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Table 4: strong scaling, nb=25 acc=1e-4 ===\n";
  bench::RankModelSource source(25, 1e-4);

  struct Row {
    index_t shards;
    index_t stack_width;
    wse::Strategy strategy;
  };
  const std::vector<Row> rows = {
      {6, 64, wse::Strategy::kSplitStackWidth},
      {12, 32, wse::Strategy::kSplitStackWidth},
      {16, 24, wse::Strategy::kSplitStackWidth},
      {20, 19, wse::Strategy::kSplitStackWidth},
      {48, 64, wse::Strategy::kScatterRealMvms},
  };

  TablePrinter table({"Shards", "Stack width", "Agg. relative bw (PB/s)",
                      "Agg. absolute bw (PB/s)", "PFlop/s", "Par. eff."});
  double baseline_bw_per_shard = 0.0;
  for (const auto& row : rows) {
    wse::ClusterConfig cfg;
    cfg.stack_width = row.stack_width;
    cfg.strategy = row.strategy;
    cfg.systems = row.shards;
    const auto run = bench::recorded_cluster_run(source, cfg);
    const double rel_bw = run.flight.relative_bw();
    if (row.shards == 6) baseline_bw_per_shard = rel_bw / 6.0;
    const double eff =
        rel_bw / (static_cast<double>(row.shards) * baseline_bw_per_shard);
    table.add_row({cell(row.shards), cell(row.stack_width),
                   cell(bytes_to_pb(rel_bw)),
                   cell(bytes_to_pb(run.flight.absolute_bw())),
                   cell(run.flight.flops_rate() / 1e15),
                   cell(100.0 * eff, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "(paper relative bw: 11.24, 22.13, 29.28, 35.77, 87.73 PB/s; "
               "95% par. eff. at 20 shards)\n";
  return 0;
}
