// What if you have FEWER than six CS-2 systems? Sec. 6.5 sizes the single-
// pass deployment at six; an undersized machine must time-share PEs across
// chunks (bases streamed from the host between passes). This bench packs
// the nb = 70, acc = 1e-4 dataset onto 1..6 systems with an LPT schedule
// and reports the makespan scaling.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Undersized deployments: 1..6 CS-2 systems (nb=70, "
               "acc=1e-4, sw=23) ===\n";
  bench::RankModelSource source(70, 1e-4);
  wse::ClusterConfig cfg;
  cfg.stack_width = 23;

  TablePrinter table({"systems", "PEs", "chunks/PE", "makespan (cycles)",
                      "imbalance", "rel bw (PB/s)", "slowdown vs 6"});
  double six_cycles = 0.0;
  for (index_t systems : {index_t{6}, index_t{4}, index_t{2}, index_t{1}}) {
    const auto rep = wse::simulate_packed_cluster(source, cfg, systems);
    if (systems == 6) six_cycles = rep.worst_pe_cycles;
    table.add_row(
        {cell(systems), cell(rep.pes),
         cell(static_cast<double>(rep.chunks) / static_cast<double>(rep.pes),
              2),
         cell(rep.worst_pe_cycles, 0), cell(rep.imbalance, 3),
         cell(bytes_to_pb(rep.relative_bw)),
         cell(rep.worst_pe_cycles / six_cycles, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "(time-sharing scales the makespan ~linearly with the system "
               "deficit — the single-pass regime of the paper needs all "
               "six)\n";
  return 0;
}
