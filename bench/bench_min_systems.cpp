// Sec. 6.5's sizing claim: "accommodating the full compressed matrix in
// CS-2 SRAM requires a minimum of six CS-2 systems". For each validated
// configuration we compute the SRAM-limited maximum stack width (worst
// chunk footprint <= 48 kB) and the resulting minimum system count.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Sec. 6.5: minimum CS-2 systems to host the dataset ===\n";
  const wse::WseSpec spec;
  TablePrinter table({"nb", "acc", "SRAM-max stack width",
                      "paper stack width", "min systems (S1)"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);
    const index_t sw_max = wse::max_stack_width_for_sram(
        source, spec, wse::Strategy::kSplitStackWidth);
    const index_t min_sys = wse::minimum_systems(
        source, spec, wse::Strategy::kSplitStackWidth);
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc), cell(sw_max),
                   cell(pc.stack_width), cell(min_sys)});
  }
  table.print(std::cout);
  std::cout << "(paper: a minimum of SIX CS-2 systems and Table 1's stack "
               "widths; our model lands within one system — the residual "
               "gap is per-PE runtime overhead the model cannot observe)\n";
  return 0;
}
