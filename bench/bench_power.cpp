// Sec. 7.6: power consumption of one CS-2 running the worst-case
// load-balanced shard of the nb = 25, acc = 1e-4 configuration.
//
// Paper reference: a steady 16 kW (vs ~23 kW for fabric-heavy stencil
// workloads), i.e. 36.50 GFlop/s/W — compared with ~52 GFlop/s/W for
// Frontier/LUMI on the HPL-dominated Top500/Green500 workload.
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/wse/power.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Sec. 7.6: power consumption, nb=25 acc=1e-4 on one shard "
               "===\n";
  const wse::PowerModel power;
  const wse::WseSpec spec;

  bench::RankModelSource source(25, 1e-4);
  wse::ClusterConfig cfg;
  cfg.stack_width = 64;
  cfg.systems = 6;
  const auto rep = wse::simulate_cluster(source, cfg);
  const index_t pes_per_system = rep.pes_used / rep.systems;
  const double flops_per_system =
      rep.flops_rate / static_cast<double>(rep.systems);

  TablePrinter table({"Workload", "Power (kW)", "GFlop/s/W"});
  const double tlr_kw = power.system_power_kw(pes_per_system, false);
  table.add_row({"TLR-MVM (communication-avoiding)", cell(tlr_kw, 1),
                 cell(power.efficiency_gflops_per_watt(
                          flops_per_system, 1, pes_per_system, false),
                      2)});
  const double stencil_kw = power.system_power_kw(spec.usable_pes(), true);
  table.add_row({"High-order stencil (fabric-heavy) [25]", cell(stencil_kw, 1),
                 "-"});
  table.print(std::cout);
  std::cout << "(paper: 16 kW and 36.50 GFlop/s/W for TLR-MVM; ~23 kW for "
               "stencils; Frontier/LUMI ~52 GFlop/s/W on HPL)\n";
  return 0;
}
