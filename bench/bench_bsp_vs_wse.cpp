// Sec. 5.3 made quantitative: the BSP (Graphcore IPU) 3-phase execution vs
// the communication-avoiding CS-2 layout, on the paper-scale dataset.
// The BSP run pays a global exchange + barriers for the V->U shuffle every
// pass; the fused CS-2 kernel pays only local SRAM partial-y traffic.
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/wse/bsp.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Sec. 5.3: BSP (IPU) 3-phase vs CS-2 fused layout ===\n";
  const wse::WseSpec cs2;
  const wse::IpuSpec ipu;

  TablePrinter table({"nb", "acc", "IPUs", "BSP pass (us)", "sync share",
                      "CS-2 pass (us)", "CS-2 systems", "speedup"});
  for (const auto& pc : bench::green_configs()) {
    bench::RankModelSource source(pc.nb, pc.acc);

    const auto bsp = wse::simulate_bsp_3phase(source, ipu);

    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.systems = 6;
    const auto wse_rep = wse::simulate_cluster(source, cfg);

    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc), cell(bsp.devices),
                   cell(bsp.total_sec * 1e6, 2),
                   cell(100.0 * bsp.sync_fraction(), 1) + "%",
                   cell(wse_rep.time_us, 2), cell(wse_rep.systems),
                   cell(bsp.total_sec * 1e6 / wse_rep.time_us, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "(the paper reports higher IPU throughput than conventional "
               "hardware but identifies the BSP shuffle as the bottleneck "
               "the CS-2 layout removes)\n";
  return 0;
}
