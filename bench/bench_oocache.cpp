// Out-of-core streaming throughput sweep over operator cache budgets.
//
// Builds a small synthetic survey, archives it as TLRA, then measures
// apply+adjoint pairs per second at four budget points: fully resident
// (io::make_operator, the reference), 1/2 payload, 1/4 payload, and the
// minimum feasible budget (one double-buffer window). Each streamed point
// runs twice — background prefetch on, then the synchronous no-prefetch
// path — so the row carries both the cost of streaming relative to
// resident and the overlap won back by the prefetcher. Every streamed
// solve is checked bitwise against the resident operator: streaming moves
// bytes, never bits. One JSON line per budget point. Usage:
//
//   ./bench_oocache [pairs] [--check]
//
// --check enforces the out-of-core acceptance bars: every row bitwise
// identical to resident, and at the 1/4-payload point the prefetching
// stream sustains >=70% of resident applies/s. The throughput bar needs
// the prefetch thread to actually overlap, so it is only enforced when
// hardware_concurrency() >= 2; below that it prints an informational
// skip instead.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/oocache/streamed_operator.hpp"
#include "tlrwse/seismic/modeling.hpp"

namespace {

using namespace tlrwse;

seismic::SeismicDataset build_data() {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(8, 6, 6, 5);
  cfg.nt = 128;
  cfg.f_min = 4.0;
  cfg.f_max = 40.0;
  return seismic::build_dataset(cfg);
}

struct BudgetPoint {
  std::string name;         // "resident" | "half" | "quarter" | "window"
  double budget_mb = 0.0;   // effective budget actually used
  index_t shards = 1;
  double window_mb = 0.0;
  double applies_per_sec = 0.0;
  double no_prefetch_applies_per_sec = 0.0;
  double pct_of_resident = 100.0;
  double prefetch_speedup = 1.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t loads = 0;
  std::uint64_t evictions = 0;
  double bytes_streamed_mb = 0.0;
  double stall_s = 0.0;
  bool bitwise = true;
};

// The applies ride the multi-RHS panel path: one sweep over the operator
// data serves kNrhs wavefields, which is how a streamed archive is worth
// its I/O — the amortization a real inversion (many virtual sources per
// sweep) gets for free.
constexpr index_t kNrhs = 8;

/// Timed batched apply+adjoint pairs; each RHS in each direction counts
/// as one apply.
double measure_applies_per_sec(mdc::MdcOperator& op, int pairs,
                               const std::vector<float>& x,
                               std::vector<float>& y,
                               std::vector<float>& xt) {
  // Warm-up pair: fills the initial stream window so the timed region
  // measures steady-state streaming, not the cold first sweep.
  op.apply_batch(x, std::span<float>(y), kNrhs);
  op.apply_adjoint_batch(y, std::span<float>(xt), kNrhs);
  WallTimer timer;
  for (int r = 0; r < pairs; ++r) {
    op.apply_batch(x, std::span<float>(y), kNrhs);
    op.apply_adjoint_batch(y, std::span<float>(xt), kNrhs);
  }
  const double wall = timer.seconds();
  return wall > 0.0
             ? 2.0 * static_cast<double>(kNrhs) * static_cast<double>(pairs) /
                   wall
             : 0.0;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void print_point(const BudgetPoint& p) {
  std::cout << "{\"budget\":\"" << p.name << "\",\"budget_mb\":" << p.budget_mb
            << ",\"shards\":" << p.shards << ",\"window_mb\":" << p.window_mb
            << ",\"applies_per_sec\":" << p.applies_per_sec
            << ",\"no_prefetch_applies_per_sec\":"
            << p.no_prefetch_applies_per_sec
            << ",\"pct_of_resident\":" << p.pct_of_resident
            << ",\"prefetch_speedup\":" << p.prefetch_speedup
            << ",\"hits\":" << p.hits << ",\"misses\":" << p.misses
            << ",\"loads\":" << p.loads << ",\"evictions\":" << p.evictions
            << ",\"bytes_streamed_mb\":" << p.bytes_streamed_mb
            << ",\"stall_s\":" << p.stall_s
            << ",\"bitwise\":" << (p.bitwise ? "true" : "false") << "}\n";
}

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

int main(int argc, char** argv) {
  int pairs = 6;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      pairs = std::atoi(argv[i]);
    }
  }
  if (pairs < 1) pairs = 1;

  const auto data = build_data();
  tlr::CompressionConfig cc;
  cc.nb = 12;
  cc.acc = 1e-4;
  const std::string path =
      (std::filesystem::temp_directory_path() / "tlrwse_bench_oocache.tlra")
          .string();
  io::save_archive(path, io::build_archive(data, cc));

  const auto archive = io::load_archive(path);
  const double payload = archive.compressed_bytes();
  auto resident_op = io::make_operator(archive);
  resident_op->set_inner_threads(1);

  std::cout << "{\"bench\":\"oocache\",\"nt\":" << data.config.nt
            << ",\"num_freq\":" << data.num_freqs()
            << ",\"ns\":" << data.num_sources()
            << ",\"nr\":" << data.num_receivers()
            << ",\"payload_mb\":" << payload / kMiB << ",\"pairs\":" << pairs
            << ",\"nrhs\":" << kNrhs << "," << bench::json_meta_fields()
            << "}\n";

  std::vector<float> x(
      static_cast<std::size_t>(resident_op->cols() * kNrhs), 0.0F);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0F + 0.25F * static_cast<float>(i % 7);
  }
  std::vector<float> y(static_cast<std::size_t>(resident_op->rows() * kNrhs));
  std::vector<float> xt(static_cast<std::size_t>(resident_op->cols() * kNrhs));
  std::vector<float> ref_y(y.size());
  std::vector<float> ref_xt(xt.size());

  BudgetPoint resident;
  resident.name = "resident";
  resident.budget_mb = payload / kMiB;
  resident.applies_per_sec =
      measure_applies_per_sec(*resident_op, pairs, x, ref_y, ref_xt);
  resident.no_prefetch_applies_per_sec = resident.applies_per_sec;
  print_point(resident);

  std::vector<BudgetPoint> points{resident};
  const std::vector<std::pair<std::string, double>> budgets = {
      {"half", payload / 2.0}, {"quarter", payload / 4.0}, {"window", 1.0}};
  for (const auto& [name, budget] : budgets) {
    oocache::StreamConfig scfg;
    scfg.budget_bytes = budget;
    scfg.grow_to_window = true;  // "window" asks for the minimum feasible
    auto streamed = oocache::make_streamed_operator(path, scfg);
    streamed.op->set_inner_threads(1);

    BudgetPoint p;
    p.name = name;
    p.budget_mb = streamed.streamer->budget_bytes() / kMiB;
    p.shards = streamed.streamer->plan().num_shards();
    p.window_mb = streamed.streamer->plan().window_bytes() / kMiB;
    p.applies_per_sec = measure_applies_per_sec(*streamed.op, pairs, x, y, xt);
    p.bitwise = bitwise_equal(y, ref_y) && bitwise_equal(xt, ref_xt);
    const auto st = streamed.streamer->stats();
    p.hits = st.hits;
    p.misses = st.misses;
    p.loads = st.loads;
    p.evictions = st.evictions;
    p.bytes_streamed_mb = st.bytes_streamed / kMiB;
    p.stall_s = st.stall_s;
    p.pct_of_resident = resident.applies_per_sec > 0.0
                            ? 100.0 * p.applies_per_sec /
                                  resident.applies_per_sec
                            : 0.0;

    scfg.prefetch = false;
    auto sync = oocache::make_streamed_operator(path, scfg);
    sync.op->set_inner_threads(1);
    p.no_prefetch_applies_per_sec =
        measure_applies_per_sec(*sync.op, pairs, x, y, xt);
    p.bitwise = p.bitwise && bitwise_equal(y, ref_y) && bitwise_equal(xt, ref_xt);
    p.prefetch_speedup = p.no_prefetch_applies_per_sec > 0.0
                             ? p.applies_per_sec / p.no_prefetch_applies_per_sec
                             : 0.0;
    print_point(p);
    points.push_back(p);
  }

  std::remove(path.c_str());

  if (!check) return 0;

  int rc = 0;
  for (const auto& p : points) {
    if (!p.bitwise) {
      std::cerr << "oocache: " << p.name
                << " streamed solve is NOT bitwise identical to resident\n";
      rc = 1;
    }
    if (!(p.applies_per_sec > 0.0) || !std::isfinite(p.applies_per_sec)) {
      std::cerr << "oocache: non-finite throughput at " << p.name << "\n";
      rc = 1;
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  for (const auto& p : points) {
    if (p.name != "quarter") continue;
    if (cores >= 2) {
      if (p.pct_of_resident < 70.0) {
        std::cerr << "oocache: quarter-budget prefetching stream at "
                  << p.pct_of_resident
                  << "% of resident applies/s, below the 70% bar\n";
        rc = 1;
      }
    } else {
      std::cerr << "oocache: " << cores
                << " hardware threads — 70% overlap bar skipped "
                   "(informational: pct_of_resident="
                << p.pct_of_resident << ")\n";
    }
  }
  return rc;
}
