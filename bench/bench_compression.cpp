// Microbenchmarks of the compression backends on a paper-sized tile
// (70 x 70, the nb = 70 configuration) and a full small frequency matrix.
#include <benchmark/benchmark.h>

#include <cmath>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/gk_svd.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace {

using namespace tlrwse;

la::MatrixCF make_tile(index_t n) {
  la::MatrixCF k(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double d = std::abs(static_cast<double>(i - j)) /
                           static_cast<double>(n) +
                       0.03;
      k(i, j) = cf32{static_cast<float>(std::cos(10.0 * d) / (1.0 + 6.0 * d)),
                     static_cast<float>(std::sin(10.0 * d) / (1.0 + 6.0 * d))};
    }
  }
  return k;
}

template <tlr::CompressionBackend B>
void BM_CompressTile(benchmark::State& bst) {
  const auto tile = make_tile(70);
  tlr::CompressionConfig cfg;
  cfg.nb = 70;
  cfg.acc = 1e-4;
  cfg.backend = B;
  Rng rng(7);
  for (auto _ : bst) {
    auto f = tlr::compress_tile(tile, cfg, rng);
    benchmark::DoNotOptimize(f.U.data());
  }
}
BENCHMARK(BM_CompressTile<tlr::CompressionBackend::kSvd>);
BENCHMARK(BM_CompressTile<tlr::CompressionBackend::kRrqr>);
BENCHMARK(BM_CompressTile<tlr::CompressionBackend::kRsvd>);
BENCHMARK(BM_CompressTile<tlr::CompressionBackend::kAca>);

void BM_CompressMatrix(benchmark::State& bst) {
  const auto a = make_tile(static_cast<index_t>(bst.range(0)));
  tlr::CompressionConfig cfg;
  cfg.nb = 70;
  cfg.acc = 1e-4;
  for (auto _ : bst) {
    auto t = tlr::compress_tlr(a, cfg);
    benchmark::DoNotOptimize(t.compressed_bytes());
  }
}
BENCHMARK(BM_CompressMatrix)->Arg(140)->Arg(280);

/// SVD algorithm face-off on a real 70 x 70 tile (the split-real planes a
/// PE stores): Golub-Kahan vs one-sided Jacobi.
void BM_SvdJacobiReal(benchmark::State& bst) {
  Rng rng(3);
  la::MatrixD a(70, 70);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  for (auto _ : bst) {
    auto f = la::svd_jacobi(a);
    benchmark::DoNotOptimize(f.S.data());
  }
}
BENCHMARK(BM_SvdJacobiReal);

void BM_SvdGolubKahan(benchmark::State& bst) {
  Rng rng(3);
  la::MatrixD a(70, 70);
  fill_normal(rng, a.data(), static_cast<std::size_t>(a.size()));
  for (auto _ : bst) {
    auto f = la::svd_golub_kahan(a);
    benchmark::DoNotOptimize(f.S.data());
  }
}
BENCHMARK(BM_SvdGolubKahan);

}  // namespace

BENCHMARK_MAIN();
