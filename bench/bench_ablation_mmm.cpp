// Ablation: TLR-MMM (multi-shot, the paper's Sec. 8 outlook) vs repeated
// TLR-MVM. Wall-clock on the CPU reference kernels plus the memory-traffic
// model showing why MMM "re-exacerbates the memory wall": base reads
// amortise across the shot panel but the partial-Y traffic does not.
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/tlr/tlr_mmm.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Ablation: TLR-MMM vs repeated TLR-MVM ===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;
  const auto tlr_mat = tlr::compress_tlr(
      data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)], cc);
  tlr::StackedTlr<cf32> stacks(tlr_mat);
  const index_t n = stacks.grid().cols();
  const index_t m = stacks.grid().rows();

  TablePrinter table({"shots s", "s x MVM (ms)", "MMM (ms)", "speedup",
                      "traffic saving (model)"});
  Rng rng(5);
  for (index_t s : {index_t{1}, index_t{4}, index_t{16}, index_t{64}}) {
    la::MatrixCF X(n, s);
    fill_normal(rng, X.data(), static_cast<std::size_t>(X.size()));

    const int reps = 20;
    WallTimer t_mvm;
    tlr::MvmWorkspace<cf32> ws;
    std::vector<cf32> y(static_cast<std::size_t>(m));
    for (int r = 0; r < reps; ++r) {
      for (index_t c = 0; c < s; ++c) {
        tlr::tlr_mvm_fused(
            stacks,
            std::span<const cf32>(X.col(c), static_cast<std::size_t>(n)),
            std::span<cf32>(y), ws);
      }
    }
    const double mvm_ms = t_mvm.millis() / reps;

    la::MatrixCF Y(m, s);
    WallTimer t_mmm;
    for (int r = 0; r < reps; ++r) {
      tlr::tlr_mmm_fused(stacks, X, Y);
    }
    const double mmm_ms = t_mmm.millis() / reps;

    const auto traffic = tlr::tlr_mmm_traffic(stacks, s);
    table.add_row({cell(s), cell(mvm_ms, 3), cell(mmm_ms, 3),
                   cell(mvm_ms / mmm_ms, 2) + "x",
                   cell(traffic.saving(), 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "(Sec. 8: recasting TLR-MVM into TLR-MMM amortises base reads "
               "across shots but partial-Y traffic scales with the panel)\n";
  return 0;
}
