// Ablation: station ordering vs TLR compression (the claim of Sec. 4 /
// refs [23][24]: Hilbert sorting beats Morton beats the natural acquisition
// order because it minimises intra-tile spatial spread).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Ablation: station ordering vs compression ===\n";
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;

  TablePrinter table({"Ordering", "Compressed", "Dense", "Ratio",
                      "Mean tile rank"});
  for (const auto& [name, ordering] :
       {std::pair{"Natural (acquisition)", reorder::Ordering::kNatural},
        std::pair{"Morton (Z-order)", reorder::Ordering::kMorton},
        std::pair{"Hilbert", reorder::Ordering::kHilbert}}) {
    auto cfg = bench::bench_dataset_config();
    cfg.ordering = ordering;
    const auto data = seismic::build_dataset(cfg);
    double comp = 0.0, dense = 0.0, rank_sum = 0.0;
    index_t nmat = 0;
    for (index_t q = 0; q < data.num_freqs(); q += 4) {
      const auto t =
          tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], cc);
      comp += t.compressed_bytes();
      dense += t.dense_bytes();
      rank_sum += t.rank_stats().mean;
      ++nmat;
    }
    table.add_row({name, format_bytes(comp), format_bytes(dense),
                   cell(dense / comp, 2) + "x",
                   cell(rank_sum / static_cast<double>(nmat), 1)});
  }
  table.print(std::cout);
  std::cout << "(paper: Hilbert provides the best compression, enabling the "
               "7x factor at acc=1e-4)\n";
  return 0;
}
