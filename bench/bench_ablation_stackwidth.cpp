// Ablation: the stack-width tuning knob (Sec. 5.3/6.7) at paper scale.
// Splitting the stack width exposes concurrency (more PEs, fewer worst-case
// cycles, higher aggregate bandwidth) at the price of lower arithmetic
// intensity per PE; the occupancy of a fixed six-system allocation peaks at
// the paper's chosen width. Also contrasts the two strong-scaling
// strategies and the fused-vs-3-phase traffic trade (local partial-y
// accumulation instead of cross-fabric shuffle).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Ablation: stack width sweep, nb=70 acc=1e-4 ===\n";
  bench::RankModelSource source(70, 1e-4);

  TablePrinter table({"Stack width", "PEs (S1)", "Systems", "Occup. @6",
                      "Worst cycles", "Rel bw (PB/s)", "AI (flop/rel byte)"});
  for (index_t sw : {index_t{8}, index_t{12}, index_t{16}, index_t{23},
                     index_t{32}, index_t{46}, index_t{64}}) {
    wse::ClusterConfig cfg;
    cfg.stack_width = sw;
    const auto rep = wse::simulate_cluster(source, cfg);
    const double occ6 =
        static_cast<double>(rep.pes_used) / (6.0 * cfg.spec.usable_pes());
    table.add_row({cell(sw), cell(rep.pes_used), cell(rep.systems),
                   cell(100.0 * occ6, 0) + "%",
                   cell(static_cast<long long>(rep.worst_cycles)),
                   cell(bytes_to_pb(rep.relative_bw)),
                   cell(rep.flops / rep.relative_bytes, 3)});
  }
  table.print(std::cout);
  std::cout << "(sw=23 is the paper's choice: the largest width that still "
               "fills six systems)\n\n";

  // Strategy contrast at the paper's width.
  std::cout << "=== Ablation: strategy 1 vs strategy 2 at sw=23 ===\n";
  TablePrinter strat({"Strategy", "PEs", "Worst cycles", "Rel bw (PB/s)",
                      "Max SRAM/PE"});
  for (const auto& [name, s] :
       {std::pair{"1: split stack width", wse::Strategy::kSplitStackWidth},
        std::pair{"2: scatter 8 real MVMs", wse::Strategy::kScatterRealMvms}}) {
    wse::ClusterConfig cfg;
    cfg.stack_width = 23;
    cfg.strategy = s;
    const auto rep = wse::simulate_cluster(source, cfg);
    strat.add_row({name, cell(rep.pes_used),
                   cell(static_cast<long long>(rep.worst_cycles)),
                   cell(bytes_to_pb(rep.relative_bw)),
                   format_bytes(rep.max_sram_bytes)});
  }
  strat.print(std::cout);

  // Fused vs 3-phase traffic model: the shuffle the fused layout avoids
  // would move every V-batch output across the fabric (8 bytes per rank row
  // per matrix); the fused layout instead re-reads/writes partial y vectors
  // inside local SRAM.
  std::cout << "\n=== Ablation: communication-avoiding layout traffic ===\n";
  double shuffle_bytes = 0.0;
  const auto& g = source.grid();
  for (index_t q = 0; q < source.num_freqs(); ++q) {
    const auto ranks = source.tile_ranks(q);
    for (index_t t = 0; t < g.num_tiles(); ++t) {
      shuffle_bytes += 8.0 * static_cast<double>(ranks[static_cast<std::size_t>(t)]);
    }
  }
  std::cout << "3-phase cross-fabric shuffle traffic avoided: "
            << format_bytes(shuffle_bytes)
            << " per full TLR-MVM pass (all 230 matrices)\n"
            << "fused local partial-y traffic is already counted in the "
               "absolute access totals above\n";
  return 0;
}
