// MDC apply/apply_adjoint throughput across an OpenMP thread sweep.
//
// The per-frequency kernel loop in MdcOperator is embarrassingly parallel
// (each frequency owns its own rFFT bin) and, with the pooled workspaces,
// allocation-free in steady state — so applies should scale with threads
// until the batched FFTs dominate. This bench builds a 64-frequency TLR
// operator, sweeps OMP thread counts and reports applies/s plus the speedup
// over the single-thread baseline, as JSON (one object per line) for the
// scaling plot. Usage:
//
//   OMP_NUM_THREADS is ignored; the sweep sets thread counts explicitly.
//   ./bench_mdc_throughput [max_threads]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace {

using namespace tlrwse;

constexpr index_t kNt = 256;   // power of two: in-place FFT path
constexpr index_t kNumFreq = 64;
constexpr index_t kNs = 96;
constexpr index_t kNr = 96;

/// Oscillatory kernel with distance decay — numerically low-rank tiles,
/// the same structure as the paper's frequency matrices.
la::MatrixCF oscillatory_kernel(index_t m, index_t n, double omega) {
  la::MatrixCF k(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const double u = static_cast<double>(i) / static_cast<double>(m);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      const double d = std::abs(u - v) + 0.05;
      const double amp = 1.0 / (1.0 + 8.0 * d);
      k(i, j) = cf32{static_cast<float>(amp * std::cos(omega * d)),
                     static_cast<float>(amp * std::sin(omega * d))};
    }
  }
  return k;
}

std::vector<float> random_traces(Rng& rng, index_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  fill_normal(rng, v.data(), v.size());
  return v;
}

std::unique_ptr<mdc::MdcOperator> build_operator() {
  tlr::CompressionConfig cc;
  cc.nb = 16;
  cc.acc = 1e-4;
  std::vector<index_t> bins;
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  bins.reserve(kNumFreq);
  for (index_t q = 0; q < kNumFreq; ++q) {
    bins.push_back(1 + q);  // distinct bins in (0, nt/2)
    const auto k =
        oscillatory_kernel(kNs, kNr, 3.0 + 0.4 * static_cast<double>(q));
    kernels.push_back(std::make_unique<mdc::TlrMvm>(
        tlr::StackedTlr<cf32>(tlr::compress_tlr(k, cc)),
        mdc::TlrKernel::kFused));
  }
  return std::make_unique<mdc::MdcOperator>(kNt, std::move(bins),
                                            std::move(kernels));
}

/// Times `reps` forward+adjoint pairs at a given thread count; returns
/// seconds per pair (best of three trials to shed scheduler noise).
double time_pair(const mdc::MdcOperator& op, std::span<const float> x,
                 std::span<float> y, std::span<const float> yb,
                 std::span<float> xt, int threads, int reps) {
#ifdef _OPENMP
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  // Warm-up fills the per-thread workspace pools at this team size.
  op.apply(x, y);
  op.apply_adjoint(yb, xt);
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    WallTimer timer;
    for (int r = 0; r < reps; ++r) {
      op.apply(x, y);
      op.apply_adjoint(yb, xt);
    }
    best = std::min(best, timer.seconds() / reps);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int max_threads = 8;
#ifdef _OPENMP
  max_threads = omp_get_max_threads();
#endif
  if (argc > 1) max_threads = std::atoi(argv[1]);
  if (max_threads < 1) max_threads = 1;

  const auto op = build_operator();
  Rng rng(7);
  const auto x = random_traces(rng, op->cols());
  const auto yb = random_traces(rng, op->rows());
  std::vector<float> y(static_cast<std::size_t>(op->rows()));
  std::vector<float> xt(static_cast<std::size_t>(op->cols()));

  std::vector<int> sweep{1};
  for (int t = 2; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);

  const int reps = 10;
  const double t1 = time_pair(*op, x, y, yb, xt, 1, reps);

  std::cout << "{\"bench\":\"mdc_throughput\",\"nt\":" << kNt
            << ",\"num_freq\":" << kNumFreq << ",\"ns\":" << kNs
            << ",\"nr\":" << kNr << ",\"kernel\":\"tlr_fused\","
            << bench::json_meta_fields() << "}\n";
  for (int t : sweep) {
    const double sec = (t == 1) ? t1 : time_pair(*op, x, y, yb, xt, t, reps);
    std::cout << "{\"threads\":" << t << ",\"sec_per_apply_pair\":" << sec
              << ",\"applies_per_sec\":" << (sec > 0.0 ? 2.0 / sec : 0.0)
              << ",\"speedup_vs_1\":" << (sec > 0.0 ? t1 / sec : 0.0)
              << "}\n";
  }
  return 0;
}
