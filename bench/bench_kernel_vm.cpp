// Validation bench: the instruction-level PE VM vs the calibrated analytic
// cost model, on real compressed chunks. The VM prices the hardware bound
// (dual-issue fmac under the 2R+1W/banking rules of Sec. 6.5); the analytic
// model adds the measured software-pipeline inefficiency. Their ratio is
// the "kernel quality" headroom a CSL implementation has on real silicon.
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/wse/functional.hpp"
#include "tlrwse/wse/kernel_vm.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== PE kernel VM vs analytic cost model ===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  const wse::WseSpec spec;

  TablePrinter table({"nb", "sw", "chunks", "VM worst cycles",
                      "analytic worst", "SW factor", "bank conflicts",
                      "VM bytes / abs bytes"});
  for (index_t nb : {index_t{16}, index_t{24}}) {
    tlr::CompressionConfig cc;
    cc.nb = nb;
    cc.acc = 1e-4;
    std::vector<tlr::TlrMatrix<cf32>> mats;
    mats.push_back(tlr::compress_tlr(
        data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)], cc));
    wse::TlrRankSource source(mats);
    tlr::StackedTlr<cf32> stacks(mats[0]);

    Rng rng(1);
    std::vector<cf32> x(static_cast<std::size_t>(data.num_receivers()));
    fill_normal(rng, x.data(), x.size());

    for (index_t sw : {index_t{8}, index_t{16}, index_t{32}}) {
      double vm_worst = 0.0, vm_bytes = 0.0, conflicts = 0.0, abs_bytes = 0.0;
      index_t chunks = 0;
      wse::for_each_chunk(source, sw, [&](const wse::Chunk& c) {
        ++chunks;
        auto assembled = wse::assemble_chunk(
            spec, stacks, c,
            std::span<const cf32>(
                x.data() + stacks.grid().col_offset(c.tile_col),
                static_cast<std::size_t>(c.nb)));
        wse::PeSimulator sim(assembled.memory);
        const auto stats = sim.run(assembled.program);
        vm_worst = std::max(vm_worst, stats.cycles);
        vm_bytes += stats.bytes_accessed;
        conflicts += stats.bank_conflicts;
        for (const auto& s : wse::chunk_mvm_shapes(c)) {
          abs_bytes += s.absolute_bytes();
        }
      });
      wse::ClusterConfig cfg;
      cfg.stack_width = sw;
      const auto analytic = wse::simulate_cluster(source, cfg);
      table.add_row({cell(nb), cell(sw), cell(chunks), cell(vm_worst, 0),
                     cell(analytic.worst_cycles, 0),
                     cell(analytic.worst_cycles / vm_worst, 2) + "x",
                     cell(conflicts, 0), cell(vm_bytes / abs_bytes, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "(VM = hardware bound under the dual-read/banking rules; the "
               "analytic model's calibrated software factor sits on top)\n";
  return 0;
}
