// Ablation: what the communication-avoiding layout (Fig. 9) actually
// avoids. Maps the classic 3-phase layout onto the wafer at paper scale
// and prices its V->U shuffle (mesh flit-hops, cross-system bytes), then
// contrasts the host-IO picture of Sec. 6.6 (ethernet vs CXL, double
// buffering).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/wse/fabric.hpp"
#include "tlrwse/wse/host_io.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Ablation: the shuffle the fused layout removes (paper "
               "scale) ===\n";
  const wse::WseSpec spec;

  TablePrinter table({"nb", "acc", "shuffle traffic", "on-wafer flit-hops",
                      "cross-system", "mean hops", "worst router cycles"});
  for (const auto& pc : bench::green_configs()) {
    // One representative frequency (the mid one) keeps the mapping cheap;
    // traffic scales linearly with the retained band.
    seismic::RankModelConfig rcfg;
    rcfg.nb = pc.nb;
    rcfg.acc = pc.acc;
    rcfg.num_freqs = 4;  // sample of the 230, scaled in the printout
    bench::RankModelSource source(rcfg);
    const auto rep =
        wse::estimate_3phase_shuffle(source, spec, pc.stack_width);
    const double scale = 230.0 / 4.0;
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc),
                   format_bytes(rep.shuffle_bytes * scale),
                   cell_sci(rep.local_flit_hops * scale, 2),
                   format_bytes(rep.cross_system_bytes * scale),
                   cell(rep.mean_hops, 1),
                   cell(rep.worst_router_cycles(spec) * scale, 0)});
  }
  table.print(std::cout);
  std::cout << "(the fused layout of Fig. 9 reduces ALL of this to local "
               "SRAM partial-y traffic, already priced in the absolute "
               "access totals)\n\n";

  std::cout << "=== Sec. 6.6: host-transfer overheads and mitigation ===\n";
  const wse::HostIoModel io;
  const double shard_bytes = 112e9 / 6.0;  // nb=70 shard on one CS-2
  const double kernel_sec = 19592.0 / spec.clock_hz;  // Table 2 pass
  TablePrinter iotab({"Link", "full-shard load", "per-batch IO",
                      "overlap efficiency", "IO bound?"});
  for (const auto& [name, link] :
       {std::pair{"Ethernet (12x100GbE)", wse::HostLink::kEthernet},
        std::pair{"CXL-attached", wse::HostLink::kCxl}}) {
    const auto rep =
        wse::double_buffer_overlap(io, link, shard_bytes, 230, kernel_sec);
    iotab.add_row({name, cell(rep.load_sec, 3) + " s",
                   cell(rep.batch_io_sec * 1e3, 3) + " ms",
                   cell(100.0 * rep.steady_efficiency, 2) + "%",
                   rep.io_bound ? "yes" : "no"});
  }
  iotab.print(std::cout);
  std::cout << "(the paper excludes transfers from its timed region: the "
               "~23 us kernel cannot amortise an ethernet ingress — double "
               "buffering or CXL is required for streaming use)\n";
  return 0;
}
