// Benchmark of the shared-basis stacked TLR band against the per-frequency
// plan path: memory footprint (the format's reason to exist) and MVM
// throughput (the price it is NOT allowed to pay). A coherent synthetic
// band of 8 frequency kernels — one shared low-rank structure modulated by
// smoothly varying per-frequency cores plus a small coherent drift, the
// regime Sec. 2 of the paper targets — is fit at band widths 1/2/4/8 and
// each width reports, as JSON lines:
//
//   {"bench":"shared_basis","simd_compiled":true,"simd_level":"avx2",...}
//   {"row":"band","band_width":8,"shared_mb":...,"per_freq_mb":...,
//    "storage_ratio":...,"max_rel_err":...,"per_freq_rel_err":...,
//    "shared_apply_s":...,"per_freq_apply_s":...,"throughput_ratio":...}
//
// storage_ratio is per-frequency TLR bytes over shared-basis bytes for the
// same band at the same tolerance (width 1 is the degenerate no-sharing
// case, ratio <= 1 by construction overheads). throughput_ratio is
// per-frequency plan wall time over shared plan wall time for one full
// sweep of the band (> 1 = shared faster). With --check the acceptance
// bars of the shared-basis work are enforced at width 8:
//   storage_ratio >= 3, accuracy no worse than the per-frequency path
//   (within 2x at the same tolerance), throughput_ratio >= 0.9.
//
//   ./bench_shared_basis [--check]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/tlr/mvm_plan.hpp"
#include "tlrwse/tlr/shared_basis.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace {

using namespace tlrwse;
namespace simd = la::simd;

constexpr index_t kRows = 560;
constexpr index_t kCols = 420;
constexpr index_t kNb = 70;
constexpr index_t kNf = 8;
constexpr double kAcc = 1e-4;

/// Coherent synthetic band: a shared seismic-like low-rank structure whose
/// modes are rescaled per frequency (the dominant, fully coherent part)
/// plus a small per-frequency drift of the phase velocity (the part that
/// makes the fit earn its tolerance rather than hit an exact subspace).
std::vector<la::MatrixCF> make_band() {
  constexpr index_t kModes = 20;
  Rng rng(71);
  la::MatrixCF u0(kRows, kModes), v0h(kModes, kCols);
  fill_normal(rng, u0.data(), static_cast<std::size_t>(u0.size()));
  fill_normal(rng, v0h.data(), static_cast<std::size_t>(v0h.size()));

  std::vector<la::MatrixCF> band;
  band.reserve(kNf);
  for (index_t f = 0; f < kNf; ++f) {
    la::MatrixCF d(kModes, kModes, cf32{});
    for (index_t l = 0; l < kModes; ++l) {
      // Smoothly varying mode weights with a mild frequency-dependent
      // decay, mimicking kernels at neighbouring frequency bins.
      const double w = 1.0 / (1.0 + 0.35 * l) *
                       (1.0 + 0.06 * std::cos(0.4 * f + 0.9 * l));
      const double ph = 0.05 * f * (l + 1);
      d(l, l) = cf32(static_cast<float>(w * std::cos(ph)),
                     static_cast<float>(w * std::sin(ph)));
    }
    la::MatrixCF k = la::matmul(la::matmul(u0, d), v0h);
    // Coherent drift: a smooth rank-2 perturbation scaled with f.
    la::MatrixCF pu(kRows, 2), pvh(2, kCols);
    Rng prng(5);  // same drift directions at every f, amplitude varies
    fill_normal(prng, pu.data(), static_cast<std::size_t>(pu.size()));
    fill_normal(prng, pvh.data(), static_cast<std::size_t>(pvh.size()));
    const auto pert = la::matmul(pu, pvh);
    const float eps = 0.02f * static_cast<float>(f);
    for (index_t j = 0; j < kCols; ++j) {
      for (index_t i = 0; i < kRows; ++i) k(i, j) += eps * pert(i, j);
    }
    band.push_back(std::move(k));
  }
  return band;
}

/// Best-of-three seconds for one call of `fn`, reps calibrated to ~20 ms.
template <typename F>
double time_seconds(F&& fn) {
  fn();
  WallTimer probe;
  fn();
  const double once = std::max(probe.seconds(), 1e-9);
  const int reps = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    WallTimer timer;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, timer.seconds() / reps);
  }
  return best;
}

double rel_err(std::span<const cf32> est, std::span<const cf32> ref) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    num += std::norm(est[i] - ref[i]);
    den += std::norm(ref[i]);
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

struct WidthResult {
  index_t band_width;
  double shared_mb, per_freq_mb, storage_ratio;
  double max_rel_err, per_freq_rel_err;
  double shared_apply_s, per_freq_apply_s, throughput_ratio;
};

WidthResult bench_width(const std::vector<la::MatrixCF>& band,
                        index_t band_width, const simd::KernelTable& kt) {
  tlr::SharedBasisConfig cfg;
  cfg.nb = kNb;
  cfg.acc = kAcc;

  // Shared fits over consecutive sub-bands of `band_width` frequencies.
  std::vector<tlr::SharedBasisStackedTlr<cf32>> fits;
  std::vector<std::pair<index_t, index_t>> spans;  // (start, len)
  for (index_t s = 0; s < kNf; s += band_width) {
    const index_t len = std::min(band_width, kNf - s);
    fits.push_back(tlr::SharedBasisStackedTlr<cf32>::fit(
        std::span<const la::MatrixCF>(band).subspan(
            static_cast<std::size_t>(s), static_cast<std::size_t>(len)),
        cfg));
    spans.emplace_back(s, len);
  }

  // Per-frequency reference: one TLR + plan per frequency, same tolerance.
  tlr::CompressionConfig cc;
  cc.nb = kNb;
  cc.acc = kAcc;
  std::vector<tlr::StackedTlr<cf32>> stacks;
  std::vector<std::unique_ptr<tlr::MvmPlan>> plans;
  double per_freq_bytes = 0.0;
  for (const auto& k : band) {
    const auto t = tlr::compress_tlr(k, cc);
    per_freq_bytes += t.compressed_bytes();
    stacks.emplace_back(t);
    plans.push_back(std::make_unique<tlr::MvmPlan>(stacks.back(), &kt));
  }

  WidthResult r{};
  r.band_width = band_width;
  double shared_bytes = 0.0;
  for (const auto& f : fits) shared_bytes += f.shared_bytes();
  r.shared_mb = shared_bytes / 1.0e6;
  r.per_freq_mb = per_freq_bytes / 1.0e6;
  r.storage_ratio = shared_bytes > 0.0 ? per_freq_bytes / shared_bytes : 0.0;

  // Accuracy of both paths against the exact dense kernels.
  Rng rng(11);
  std::vector<cf32> x(static_cast<std::size_t>(kCols));
  fill_normal(rng, x.data(), x.size());
  std::vector<cf32> ref(static_cast<std::size_t>(kRows));
  std::vector<cf32> y(static_cast<std::size_t>(kRows));
  tlr::SharedBasisWorkspace<cf32> sws;
  tlr::MvmWorkspace<cf32> mws;
  for (std::size_t bi = 0; bi < fits.size(); ++bi) {
    for (index_t lf = 0; lf < spans[bi].second; ++lf) {
      const index_t f = spans[bi].first + lf;
      la::gemv(band[static_cast<std::size_t>(f)], std::span<const cf32>(x),
               std::span<cf32>(ref));
      fits[bi].apply(lf, std::span<const cf32>(x), std::span<cf32>(y), sws);
      r.max_rel_err = std::max(
          r.max_rel_err,
          rel_err(std::span<const cf32>(y), std::span<const cf32>(ref)));
      tlr::tlr_mvm_fused(stacks[static_cast<std::size_t>(f)],
                         std::span<const cf32>(x), std::span<cf32>(y), mws);
      r.per_freq_rel_err = std::max(
          r.per_freq_rel_err,
          rel_err(std::span<const cf32>(y), std::span<const cf32>(ref)));
    }
  }

  // Throughput: one full sweep over the band (the MDC frequency loop's
  // shape — the shared arena stays hot across frequencies).
  std::vector<tlr::SharedBasisMvmPlan> splans;
  splans.reserve(fits.size());
  for (const auto& f : fits) splans.emplace_back(f, &kt);
  tlr::PlanWorkspace pws;
  r.shared_apply_s = time_seconds([&] {
    for (std::size_t bi = 0; bi < splans.size(); ++bi) {
      for (index_t lf = 0; lf < spans[bi].second; ++lf) {
        splans[bi].apply(lf, std::span<const cf32>(x), std::span<cf32>(y),
                         pws);
      }
    }
  });
  r.per_freq_apply_s = time_seconds([&] {
    for (const auto& p : plans) {
      p->apply(std::span<const cf32>(x), std::span<cf32>(y), pws);
    }
  });
  r.throughput_ratio =
      r.shared_apply_s > 0.0 ? r.per_freq_apply_s / r.shared_apply_s : 0.0;
  return r;
}

void emit(const WidthResult& r) {
  std::printf(
      "{\"row\":\"band\",\"band_width\":%lld,\"shared_mb\":%.4f,"
      "\"per_freq_mb\":%.4f,\"storage_ratio\":%.4f,\"max_rel_err\":%.3e,"
      "\"per_freq_rel_err\":%.3e,\"shared_apply_s\":%.6e,"
      "\"per_freq_apply_s\":%.6e,\"throughput_ratio\":%.4f}\n",
      static_cast<long long>(r.band_width), r.shared_mb, r.per_freq_mb,
      r.storage_ratio, r.max_rel_err, r.per_freq_rel_err, r.shared_apply_s,
      r.per_freq_apply_s, r.throughput_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const simd::KernelTable& kt = simd::dispatch();
  std::printf(
      "{\"bench\":\"shared_basis\",\"simd_compiled\":%s,"
      "\"simd_level\":\"%s\",\"m\":%lld,\"n\":%lld,\"nb\":%lld,"
      "\"num_freq\":%lld,\"acc\":%.1e,%s}\n",
      simd::compiled_in() ? "true" : "false",
      simd::level_name(simd::active_level()), static_cast<long long>(kRows),
      static_cast<long long>(kCols), static_cast<long long>(kNb),
      static_cast<long long>(kNf), kAcc, bench::json_meta_fields().c_str());

  const auto band = make_band();
  const index_t widths[] = {1, 2, 4, 8};
  WidthResult full{};
  for (index_t w : widths) {
    const auto r = bench_width(band, w, kt);
    emit(r);
    if (w == 8) full = r;
  }

  if (check) {
    const bool ok_ratio = full.storage_ratio >= 3.0;
    // "Equal accuracy": the shared path may not lose more than 2x the
    // per-frequency error at the same tolerance (both are O(acc)).
    const bool ok_acc =
        full.max_rel_err <= std::max(2.0 * full.per_freq_rel_err, 10.0 * kAcc);
    const bool ok_tput = full.throughput_ratio >= 0.9;
    std::cerr << "check: storage ratio " << full.storage_ratio
              << (ok_ratio ? " >= 3 ok" : " < 3 FAIL") << ", rel err "
              << full.max_rel_err << " (per-freq " << full.per_freq_rel_err
              << ")" << (ok_acc ? " ok" : " FAIL") << ", throughput ratio "
              << full.throughput_ratio << (ok_tput ? " >= 0.9 ok" : " < 0.9 FAIL")
              << "\n";
    return ok_ratio && ok_acc && ok_tput ? 0 : 1;
  }
  return 0;
}
