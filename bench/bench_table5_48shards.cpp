// Table 5: the 48-shard strategy-2 runs for nb = 25/50/70 at acc = 1e-4.
// The shard count is derived from the PE demand (8 PEs per chunk): nb = 50
// needs only 47 systems, the other two need 48 — exactly as in the paper.
//
// Paper reference values (relative bw PB/s): 87.73, 91.15, 92.58 —
// the 92.58 PB/s headline of the title run.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Table 5: 48-shard runs (strategy 2), acc=1e-4 ===\n";
  TablePrinter table({"nb", "acc", "Stack width", "Shards",
                      "Agg. rel bw (PB/s)", "Agg. abs bw (PB/s)", "PFlop/s"});
  const std::vector<bench::PaperConfig> configs = {
      {25, 1e-4, 64}, {50, 1e-4, 32}, {70, 1e-4, 23}};
  for (const auto& pc : configs) {
    bench::RankModelSource source(pc.nb, pc.acc);
    wse::ClusterConfig cfg;
    cfg.stack_width = pc.stack_width;
    cfg.strategy = wse::Strategy::kScatterRealMvms;
    cfg.systems = 0;  // derive the shard count from the PE demand
    const auto run = bench::recorded_cluster_run(source, cfg);
    table.add_row({cell(pc.nb), bench::acc_cell(pc.acc), cell(pc.stack_width),
                   cell(run.report.systems),
                   cell(bytes_to_pb(run.flight.relative_bw())),
                   cell(bytes_to_pb(run.flight.absolute_bw())),
                   cell(run.flight.flops_rate() / 1e15)});
  }
  table.print(std::cout);
  std::cout << "(paper: 48 shards 87.73/204.51/29.40, 47 shards "
               "91.15/235.04/35.86, 48 shards 92.58/245.59/37.95)\n";
  return 0;
}
