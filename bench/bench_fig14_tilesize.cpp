// Fig. 14: impact of the tile size on relative and absolute memory
// bandwidth for a single-precision batched MVM with constant matrix size N
// on every PE of one CS-2.
//
// Paper behaviour: relative bandwidth saturates to ~2 PB/s as N grows
// (transitioning the batch from memory- to compute-bound) and the absolute
// bandwidth is ~3x the relative one.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 14: bandwidth vs tile size N (one CS-2, 750x994 PEs) "
               "===\n";
  const wse::WseSpec spec;
  const wse::CostModelParams cost;
  TablePrinter table({"N", "Relative bw (PB/s)", "Absolute bw (PB/s)",
                      "Abs/Rel"});
  for (index_t n : {2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}) {
    const auto pt = wse::simulate_constant_batch(spec, cost, n);
    table.add_row({cell(n), cell(bytes_to_pb(pt.relative_bw)),
                   cell(bytes_to_pb(pt.absolute_bw)),
                   cell(pt.absolute_bw / pt.relative_bw, 2)});
  }
  table.print(std::cout);
  std::cout << "(paper: relative saturates ~2 PB/s; absolute ~3x relative)\n";
  return 0;
}
