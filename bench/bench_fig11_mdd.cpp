// Fig. 11: MDD results for a single virtual source — a) cross-correlation
// (adjoint), b) LSQR inversion with tight compression accuracy, c) inversion
// with loose accuracy, all scored against d) the exact local reflectivity.
//
// Paper behaviour: the inversion removes the free-surface effects visible
// in the adjoint and closely resembles the ground truth; loosening the
// accuracy introduces noise. At this functional scale we report NMSE and
// correlation against the truth instead of wiggle plots; accuracies are
// rescaled to this dataset's compression regime (see EXPERIMENTS.md).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 11: MDD adjoint vs inversion vs ground truth ===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  const index_t v = data.num_receivers() / 2;  // central virtual source
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);

  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;  // the paper's iteration budget

  tlr::CompressionConfig tight;
  tight.nb = 24;
  tight.acc = 1e-4;
  tlr::CompressionConfig loose = tight;
  loose.acc = 1.5e-1;  // this dataset's analogue of the paper's 7e-4

  TablePrinter table({"Panel", "nb", "acc", "NMSE vs truth", "Correlation"});

  const auto op_tight =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, tight);
  const auto adj = mdd::adjoint_reflectivity(*op_tight, rhs);
  table.add_row({"a) Adjoint (cross-corr.)", cell(tight.nb),
                 bench::acc_cell(tight.acc), "(unscaled)",
                 cell(mdd::correlation(adj, truth), 3)});

  const auto inv_tight = mdd::solve_mdd(*op_tight, rhs, lsqr);
  table.add_row({"b) Inverse, tight acc", cell(tight.nb),
                 bench::acc_cell(tight.acc),
                 cell(mdd::nmse(inv_tight.x, truth), 4),
                 cell(mdd::correlation(inv_tight.x, truth), 3)});

  const auto op_loose =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, loose);
  const auto inv_loose = mdd::solve_mdd(*op_loose, rhs, lsqr);
  table.add_row({"c) Inverse, loose acc", cell(loose.nb),
                 bench::acc_cell(loose.acc),
                 cell(mdd::nmse(inv_loose.x, truth), 4),
                 cell(mdd::correlation(inv_loose.x, truth), 3)});

  table.add_row({"d) True local reflectivity", "-", "-", "0", "1.000"});
  table.print(std::cout);
  std::cout << "(paper: inversion ~ truth with free-surface effects removed; "
               "loose acc adds noise)\n";
  return 0;
}
