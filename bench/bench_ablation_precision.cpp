// Ablation: mixed-precision TLR storage (refs [23][24]) — per-tile FP16/
// BF16 bases for the weak tiles. Emits JSON lines (header + one row per
// policy) with the storage saving, tile precision census, and MDD
// solution quality, so CI can pin both numbers across commits:
//
//   {"bench":"ablation_precision","nb":24,"acc":...,...}
//   {"row":"all_fp32","saving":1.0,"stored_mb":...,"tiles_fp32":...,
//    "tiles_fp16":...,"tiles_bf16":...,"nmse":...}
//
// With --check the bench enforces the acceptance bars: the all-BF16
// policy must save >= 1.9x storage, and no half-precision policy may
// degrade the MDD NMSE past 2x the FP32 solve's (the quality pin of the
// packed-storage work — rounding the weak tiles is an accuracy choice the
// compression tolerance already dominates).
//
//   ./bench_ablation_precision [--check]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace {

using namespace tlrwse;

/// MDC operator over pre-quantized kernels.
std::unique_ptr<mdc::MdcOperator> quantized_operator(
    const seismic::SeismicDataset& data, const tlr::CompressionConfig& cc,
    const tlr::MixedPrecisionPolicy& policy) {
  const auto dA = static_cast<float>(data.surface_element());
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    auto t = tlr::compress_tlr(K, cc);
    auto quant = tlr::quantize_tlr(t, policy);
    kernels.push_back(std::make_unique<mdc::TlrMvm>(
        tlr::StackedTlr<cf32>(quant.matrix), mdc::TlrKernel::kFused));
  }
  return std::make_unique<mdc::MdcOperator>(data.config.nt, data.freq_bins,
                                            std::move(kernels));
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;

  std::printf(
      "{\"bench\":\"ablation_precision\",\"nt\":%lld,\"num_freq\":%lld,"
      "\"ns\":%lld,\"nr\":%lld,\"nb\":%lld,\"acc\":%.0e,%s}\n",
      static_cast<long long>(data.config.nt),
      static_cast<long long>(data.num_freqs()),
      static_cast<long long>(data.num_sources()),
      static_cast<long long>(data.num_receivers()),
      static_cast<long long>(cc.nb), cc.acc,
      bench::json_meta_fields().c_str());

  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;

  struct Policy {
    const char* name;
    tlr::MixedPrecisionPolicy p;
  };
  // Thresholds sized for this dataset's (narrow) tile-norm spread; the
  // paper-scale Hilbert-sorted matrices spread much wider, so production
  // policies would use the defaults.
  const std::vector<Policy> policies = {
      {"all_fp32", {0.0, 0.0}},
      {"weak_fp16", {0.7, 0.0}},
      {"weak_fp16_weakest_bf16", {0.7, 0.45}},
      {"all_bf16", {2.0, 2.0}},
  };

  // Storage stats from one representative kernel.
  const auto mid = tlr::compress_tlr(
      data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)], cc);

  double nmse_fp32 = 0.0, worst_half_nmse = 0.0, bf16_saving = 0.0;
  for (const auto& pol : policies) {
    const auto q = tlr::quantize_tlr(mid, pol.p);
    const auto op = quantized_operator(data, cc, pol.p);
    const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
    const double nmse = mdd::nmse(sol.x, truth);
    std::printf(
        "{\"row\":\"%s\",\"saving\":%.4f,\"stored_mb\":%.4f,"
        "\"fp32_mb\":%.4f,\"tiles_fp32\":%lld,\"tiles_fp16\":%lld,"
        "\"tiles_bf16\":%lld,\"nmse\":%.6f}\n",
        pol.name, q.saving(), q.stored_bytes / 1.0e6, q.fp32_bytes / 1.0e6,
        static_cast<long long>(q.tiles_fp32),
        static_cast<long long>(q.tiles_fp16),
        static_cast<long long>(q.tiles_bf16), nmse);
    if (std::strcmp(pol.name, "all_fp32") == 0) {
      nmse_fp32 = nmse;
    } else {
      worst_half_nmse = std::max(worst_half_nmse, nmse);
    }
    if (std::strcmp(pol.name, "all_bf16") == 0) bf16_saving = q.saving();
  }

  if (check) {
    const bool ok_saving = bf16_saving >= 1.9;
    const bool ok_quality = worst_half_nmse <= 2.0 * nmse_fp32;
    std::cerr << "check: all-bf16 saving " << bf16_saving
              << (ok_saving ? " >= 1.9 ok" : " < 1.9 FAIL")
              << ", worst half-policy NMSE " << worst_half_nmse << " vs fp32 "
              << nmse_fp32
              << (ok_quality ? " within 2x ok" : " past 2x FAIL") << "\n";
    return ok_saving && ok_quality ? 0 : 1;
  }
  return 0;
}
