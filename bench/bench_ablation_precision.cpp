// Ablation: mixed-precision TLR storage (refs [23][24]) — per-tile FP16/
// BF16 bases for the weak tiles. Reports storage saving, kernel error, and
// MDD solution quality across policies.
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace {

using namespace tlrwse;

/// MDC operator over pre-quantized kernels.
std::unique_ptr<mdc::MdcOperator> quantized_operator(
    const seismic::SeismicDataset& data, const tlr::CompressionConfig& cc,
    const tlr::MixedPrecisionPolicy& policy) {
  const auto dA = static_cast<float>(data.surface_element());
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    auto t = tlr::compress_tlr(K, cc);
    auto quant = tlr::quantize_tlr(t, policy);
    kernels.push_back(std::make_unique<mdc::TlrMvm>(
        tlr::StackedTlr<cf32>(quant.matrix), mdc::TlrKernel::kFused));
  }
  return std::make_unique<mdc::MdcOperator>(data.config.nt, data.freq_bins,
                                            std::move(kernels));
}

}  // namespace

int main() {
  std::cout << "=== Ablation: mixed-precision TLR base storage ===\n";
  const auto data = seismic::build_dataset(bench::bench_dataset_config());
  tlr::CompressionConfig cc;
  cc.nb = 24;
  cc.acc = 1e-4;

  const index_t v = data.num_receivers() / 2;
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = 30;

  struct Policy {
    const char* name;
    tlr::MixedPrecisionPolicy p;
  };
  // Thresholds sized for this dataset's (narrow) tile-norm spread; the
  // paper-scale Hilbert-sorted matrices spread much wider, so production
  // policies would use the defaults.
  const std::vector<Policy> policies = {
      {"all FP32", {0.0, 0.0}},
      {"weak tiles FP16", {0.7, 0.0}},
      {"weak FP16 + weakest BF16", {0.7, 0.45}},
      {"all BF16", {2.0, 2.0}},
  };

  // Storage stats from one representative kernel.
  const auto mid = tlr::compress_tlr(
      data.p_down[static_cast<std::size_t>(data.num_freqs() / 2)], cc);

  TablePrinter table({"Policy", "storage saving", "tiles 32/16/b16",
                      "MDD NMSE vs truth"});
  for (const auto& pol : policies) {
    const auto q = tlr::quantize_tlr(mid, pol.p);
    const auto op = quantized_operator(data, cc, pol.p);
    const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
    table.add_row({pol.name, cell(q.saving(), 2) + "x",
                   cell(q.tiles_fp32) + "/" + cell(q.tiles_fp16) + "/" +
                       cell(q.tiles_bf16),
                   cell(mdd::nmse(sol.x, truth), 4)});
  }
  table.print(std::cout);
  std::cout << "(mixed precision trades up to 2x base storage for a "
               "controlled accuracy loss — refs [23][24])\n";
  return 0;
}
