// Fig. 15: roofline of the six-CS-2 configuration against the minimum
// vendor configurations able to host the compressed dataset. The TLR-MVM
// data point is the optimal six-shard configuration (nb = 50, acc = 3e-4,
// 12.26 PB/s relative in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "tlrwse/roofline/roofline.hpp"

int main() {
  using namespace tlrwse;
  std::cout << "=== Fig. 15: roofline, 6-shard configuration vs vendor "
               "hardware ===\n";
  TablePrinter roofs({"Machine", "Peak bw", "Peak FP32",
                      "Attainable @ AI=0.5 (GFlop/s)"});
  for (const auto& m : roofline::fig15_machines()) {
    roofs.add_row({m.name, format_bandwidth(m.peak_bw()),
                   format_flops(m.peak_flops()),
                   cell(m.attainable_flops(0.5) / 1e9, 0)});
  }
  roofs.print(std::cout);

  // Measured TLR-MVM point: optimal 6-shard configuration nb=50 acc=3e-4.
  bench::RankModelSource source(50, 3e-4);
  wse::ClusterConfig cfg;
  cfg.stack_width = 18;
  cfg.systems = 6;
  const auto run = bench::recorded_cluster_run(source, cfg);
  const double ai_rel =
      run.flight.total_flops() / run.flight.total_relative_bytes();
  std::cout << "\nTLR-MVM on six Cerebras CS-2 (nb=50, acc=3e-4):\n"
            << "  relative bandwidth: "
            << format_bandwidth(run.flight.relative_bw())
            << " (paper: 12.26 PB/s)\n"
            << "  arithmetic intensity (relative): " << cell(ai_rel, 3)
            << " flop/byte\n"
            << "  sustained: " << format_flops(run.flight.flops_rate()) << "\n";
  std::cout << "(paper: CS-2 point sits >3 orders of magnitude above the "
               "MI250X bandwidth roof)\n";
  return 0;
}
