# Empty dependencies file for timelapse_monitoring.
# This may be replaced when dependencies are built.
