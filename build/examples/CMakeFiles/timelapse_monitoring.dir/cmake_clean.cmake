file(REMOVE_RECURSE
  "CMakeFiles/timelapse_monitoring.dir/timelapse_monitoring.cpp.o"
  "CMakeFiles/timelapse_monitoring.dir/timelapse_monitoring.cpp.o.d"
  "timelapse_monitoring"
  "timelapse_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timelapse_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
