file(REMOVE_RECURSE
  "CMakeFiles/mdd_overthrust.dir/mdd_overthrust.cpp.o"
  "CMakeFiles/mdd_overthrust.dir/mdd_overthrust.cpp.o.d"
  "mdd_overthrust"
  "mdd_overthrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdd_overthrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
