# Empty compiler generated dependencies file for mdd_overthrust.
# This may be replaced when dependencies are built.
