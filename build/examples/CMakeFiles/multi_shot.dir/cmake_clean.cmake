file(REMOVE_RECURSE
  "CMakeFiles/multi_shot.dir/multi_shot.cpp.o"
  "CMakeFiles/multi_shot.dir/multi_shot.cpp.o.d"
  "multi_shot"
  "multi_shot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_shot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
