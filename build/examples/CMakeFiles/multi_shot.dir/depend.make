# Empty dependencies file for multi_shot.
# This may be replaced when dependencies are built.
