# Empty dependencies file for ordering_study.
# This may be replaced when dependencies are built.
