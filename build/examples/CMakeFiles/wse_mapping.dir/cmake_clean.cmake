file(REMOVE_RECURSE
  "CMakeFiles/wse_mapping.dir/wse_mapping.cpp.o"
  "CMakeFiles/wse_mapping.dir/wse_mapping.cpp.o.d"
  "wse_mapping"
  "wse_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wse_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
