# Empty compiler generated dependencies file for wse_mapping.
# This may be replaced when dependencies are built.
