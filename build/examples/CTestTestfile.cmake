# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdd_overthrust "/root/repo/build/examples/mdd_overthrust")
set_tests_properties(example_mdd_overthrust PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wse_mapping "/root/repo/build/examples/wse_mapping")
set_tests_properties(example_wse_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ordering_study "/root/repo/build/examples/ordering_study")
set_tests_properties(example_ordering_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_shot "/root/repo/build/examples/multi_shot")
set_tests_properties(example_multi_shot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timelapse_monitoring "/root/repo/build/examples/timelapse_monitoring")
set_tests_properties(example_timelapse_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
