file(REMOVE_RECURSE
  "CMakeFiles/bench_undersized.dir/bench_undersized.cpp.o"
  "CMakeFiles/bench_undersized.dir/bench_undersized.cpp.o.d"
  "bench_undersized"
  "bench_undersized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_undersized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
