# Empty compiler generated dependencies file for bench_undersized.
# This may be replaced when dependencies are built.
