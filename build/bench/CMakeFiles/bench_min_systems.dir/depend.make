# Empty dependencies file for bench_min_systems.
# This may be replaced when dependencies are built.
