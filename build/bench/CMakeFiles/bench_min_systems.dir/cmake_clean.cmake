file(REMOVE_RECURSE
  "CMakeFiles/bench_min_systems.dir/bench_min_systems.cpp.o"
  "CMakeFiles/bench_min_systems.dir/bench_min_systems.cpp.o.d"
  "bench_min_systems"
  "bench_min_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_min_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
