# Empty dependencies file for bench_fig16_roofline.
# This may be replaced when dependencies are built.
