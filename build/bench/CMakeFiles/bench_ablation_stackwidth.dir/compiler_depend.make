# Empty compiler generated dependencies file for bench_ablation_stackwidth.
# This may be replaced when dependencies are built.
