file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stackwidth.dir/bench_ablation_stackwidth.cpp.o"
  "CMakeFiles/bench_ablation_stackwidth.dir/bench_ablation_stackwidth.cpp.o.d"
  "bench_ablation_stackwidth"
  "bench_ablation_stackwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stackwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
