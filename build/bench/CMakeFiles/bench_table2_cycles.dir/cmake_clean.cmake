file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cycles.dir/bench_table2_cycles.cpp.o"
  "CMakeFiles/bench_table2_cycles.dir/bench_table2_cycles.cpp.o.d"
  "bench_table2_cycles"
  "bench_table2_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
