# Empty dependencies file for bench_table5_48shards.
# This may be replaced when dependencies are built.
