file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_48shards.dir/bench_table5_48shards.cpp.o"
  "CMakeFiles/bench_table5_48shards.dir/bench_table5_48shards.cpp.o.d"
  "bench_table5_48shards"
  "bench_table5_48shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_48shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
