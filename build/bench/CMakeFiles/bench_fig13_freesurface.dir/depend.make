# Empty dependencies file for bench_fig13_freesurface.
# This may be replaced when dependencies are built.
