file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_freesurface.dir/bench_fig13_freesurface.cpp.o"
  "CMakeFiles/bench_fig13_freesurface.dir/bench_fig13_freesurface.cpp.o.d"
  "bench_fig13_freesurface"
  "bench_fig13_freesurface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_freesurface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
