file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tilesize.dir/bench_fig14_tilesize.cpp.o"
  "CMakeFiles/bench_fig14_tilesize.dir/bench_fig14_tilesize.cpp.o.d"
  "bench_fig14_tilesize"
  "bench_fig14_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
