file(REMOVE_RECURSE
  "CMakeFiles/bench_fft.dir/bench_fft.cpp.o"
  "CMakeFiles/bench_fft.dir/bench_fft.cpp.o.d"
  "bench_fft"
  "bench_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
