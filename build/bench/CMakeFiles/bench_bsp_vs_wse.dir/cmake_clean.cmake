file(REMOVE_RECURSE
  "CMakeFiles/bench_bsp_vs_wse.dir/bench_bsp_vs_wse.cpp.o"
  "CMakeFiles/bench_bsp_vs_wse.dir/bench_bsp_vs_wse.cpp.o.d"
  "bench_bsp_vs_wse"
  "bench_bsp_vs_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bsp_vs_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
