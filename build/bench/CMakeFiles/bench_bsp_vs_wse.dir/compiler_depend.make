# Empty compiler generated dependencies file for bench_bsp_vs_wse.
# This may be replaced when dependencies are built.
