file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_occupancy.dir/bench_table1_occupancy.cpp.o"
  "CMakeFiles/bench_table1_occupancy.dir/bench_table1_occupancy.cpp.o.d"
  "bench_table1_occupancy"
  "bench_table1_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
