file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mdd.dir/bench_fig11_mdd.cpp.o"
  "CMakeFiles/bench_fig11_mdd.dir/bench_fig11_mdd.cpp.o.d"
  "bench_fig11_mdd"
  "bench_fig11_mdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
