file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_vm.dir/bench_kernel_vm.cpp.o"
  "CMakeFiles/bench_kernel_vm.dir/bench_kernel_vm.cpp.o.d"
  "bench_kernel_vm"
  "bench_kernel_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
