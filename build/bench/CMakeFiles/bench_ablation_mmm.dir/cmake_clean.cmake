file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mmm.dir/bench_ablation_mmm.cpp.o"
  "CMakeFiles/bench_ablation_mmm.dir/bench_ablation_mmm.cpp.o.d"
  "bench_ablation_mmm"
  "bench_ablation_mmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
