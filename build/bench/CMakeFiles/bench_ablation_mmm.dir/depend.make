# Empty dependencies file for bench_ablation_mmm.
# This may be replaced when dependencies are built.
