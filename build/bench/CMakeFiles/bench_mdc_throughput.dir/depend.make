# Empty dependencies file for bench_mdc_throughput.
# This may be replaced when dependencies are built.
