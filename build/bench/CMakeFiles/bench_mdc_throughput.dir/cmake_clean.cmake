file(REMOVE_RECURSE
  "CMakeFiles/bench_mdc_throughput.dir/bench_mdc_throughput.cpp.o"
  "CMakeFiles/bench_mdc_throughput.dir/bench_mdc_throughput.cpp.o.d"
  "bench_mdc_throughput"
  "bench_mdc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
